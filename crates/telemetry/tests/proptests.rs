//! Property tests for the telemetry primitives: the merge operation on
//! log-linear histograms must be order-independent (per-replica shards from
//! parallel sweep workers combine to identical quantiles), quantiles must
//! stay within the bucket scheme's relative-error bound, and windowed
//! time-series shards must recombine byte-identically in any order.

use proptest::prelude::*;
use telemetry::{LogLinearHistogram, Registry, TimeseriesSampler, SUB_BITS};

fn shards_from(values: &[u64], shards: usize) -> Vec<LogLinearHistogram> {
    let mut out: Vec<LogLinearHistogram> = (0..shards).map(|_| LogLinearHistogram::new()).collect();
    for (i, &v) in values.iter().enumerate() {
        out[i % shards].record(v);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_order_does_not_change_quantiles(
        values in prop::collection::vec(0u64..5_000_000, 1..400),
        perm_seed in 0u64..1_000,
    ) {
        let shards = shards_from(&values, 5);

        let mut forward = LogLinearHistogram::new();
        for s in &shards {
            forward.merge(s);
        }

        // A deterministic permutation of the shard order derived from the seed.
        let mut order: Vec<usize> = (0..shards.len()).collect();
        let mut s = perm_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut permuted = LogLinearHistogram::new();
        for &i in &order {
            permuted.merge(&shards[i]);
        }

        prop_assert_eq!(&forward, &permuted);
        prop_assert_eq!(forward.p50(), permuted.p50());
        prop_assert_eq!(forward.p99(), permuted.p99());
        prop_assert_eq!(forward.p999(), permuted.p999());

        // Merged shards equal one histogram that saw every value directly.
        let mut single = LogLinearHistogram::new();
        for &v in &values {
            single.record(v);
        }
        prop_assert_eq!(&forward, &single);
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_bucket_error(
        values in prop::collection::vec(1u64..10_000_000, 10..300),
    ) {
        let mut h = LogLinearHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let tol = 1.0 / (1u64 << SUB_BITS) as f64;
        for q in [0.5, 0.9, 0.99] {
            let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let got = h.quantile(q) as f64;
            prop_assert!(
                (got - exact).abs() <= exact * tol + 1.0,
                "q={}: got {}, exact {}", q, got, exact
            );
        }
    }

    #[test]
    fn registry_merge_is_order_independent(
        values in prop::collection::vec(0u64..100_000, 1..200),
    ) {
        let mk = |chunk: &[u64]| {
            let mut r = Registry::new();
            for &v in chunk {
                r.counter_add("t.prop.count", None, 1);
                r.observe("t.prop.lat_us", Some((v % 4) as usize), v);
                r.gauge_max("t.prop.peak", None, v as f64);
            }
            r
        };
        let mid = values.len() / 2;
        let (a, b) = (mk(&values[..mid]), mk(&values[mid..]));
        let mut ab = Registry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Registry::new();
        ba.merge(&b);
        ba.merge(&a);
        prop_assert_eq!(ab.prometheus_text(), ba.prometheus_text());
    }

    /// Timeseries shards merged in any permutation render byte-identical
    /// `series()` and timestamped Prometheus text — the property the lab's
    /// `--threads` byte-identity guarantee rests on.
    #[test]
    fn timeseries_merge_is_order_independent(
        events in prop::collection::vec((0u64..8_000_000, 0u64..500, 0u64..100_000), 1..200),
        perm_seed in 0u64..1_000,
    ) {
        // Shard the (timestamp, counter delta, histogram value) events
        // round-robin; each shard replays its slice in time order through
        // its own registry + sampler, ticking at every event.
        let mk = |chunk: &[(u64, u64, u64)]| {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            let mut reg = Registry::new();
            let mut s = TimeseriesSampler::new(1_000_000);
            for &(ts, delta, v) in &sorted {
                s.tick(ts, &reg);
                reg.counter_add("p.ops", None, delta);
                reg.observe("p.lat_us", Some((v % 3) as usize), v);
                reg.gauge_set("p.depth", None, (delta % 17) as f64);
            }
            s.tick(8_000_000, &reg);
            s.finish()
        };
        let shards: Vec<telemetry::Timeseries> = (0..4)
            .map(|i| mk(&events.iter().copied().skip(i).step_by(4).collect::<Vec<_>>()))
            .collect();

        let mut forward = telemetry::Timeseries::new(1_000_000);
        for s in &shards {
            forward.merge(s);
        }

        let mut order: Vec<usize> = (0..shards.len()).collect();
        let mut s = perm_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut permuted = telemetry::Timeseries::new(1_000_000);
        for &i in &order {
            permuted.merge(&shards[i]);
        }

        prop_assert_eq!(&forward, &permuted);
        prop_assert_eq!(forward.series(), permuted.series());
        prop_assert_eq!(forward.prometheus_text(), permuted.prometheus_text());

        // Counter mass is conserved: window deltas sum to the total offered.
        let total: u64 = events.iter().map(|&(_, d, _)| d).sum();
        let windowed: f64 = forward.series().get("ts.p.ops.delta")
            .map(|pts| pts.iter().map(|&(_, v)| v).sum())
            .unwrap_or(0.0);
        prop_assert_eq!(windowed as u64, total);
    }
}
