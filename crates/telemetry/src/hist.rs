//! Mergeable log-linear histograms: p50/p99/p999 without raw samples.
//!
//! Values (non-negative integers — microseconds, bytes, depths) land in
//! buckets that subdivide each power of two into 2^[`SUB_BITS`] linear
//! sub-ranges, so the relative quantile error is bounded by `2^-SUB_BITS`
//! (≈ 6%) while storage is bounded by the number of *occupied* buckets, not
//! by the sample count. Merging is bucket-count addition — commutative and
//! associative — so per-replica histograms can be combined in any order and
//! yield bit-identical quantiles (the property test pins this).

use std::collections::BTreeMap;

/// Linear sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// buckets.
pub const SUB_BITS: u32 = 4;

const SUB: u64 = 1 << SUB_BITS;

/// A mergeable log-linear histogram over `u64` values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogLinearHistogram {
    /// Occupied buckets: index → count.
    counts: BTreeMap<u32, u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index of a value. Indices are contiguous and monotone in `v`.
fn bucket_of(v: u64) -> u32 {
    if v < SUB {
        v as u32
    } else {
        let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as u32;
        ((msb - SUB_BITS + 1) << SUB_BITS) + sub
    }
}

/// Smallest value mapping to bucket `idx` (inverse of [`bucket_of`]).
/// Saturates at `u64::MAX` one past the top bucket, so `bucket_mid` of the
/// final bucket never overflows.
fn bucket_low(idx: u32) -> u64 {
    if idx < SUB as u32 {
        idx as u64
    } else {
        let exp = (idx >> SUB_BITS) as u128 + SUB_BITS as u128 - 1;
        if exp >= 64 {
            return u64::MAX;
        }
        let sub = (idx & (SUB as u32 - 1)) as u128;
        let v = (1u128 << exp) | (sub << (exp - SUB_BITS as u128));
        u64::try_from(v).unwrap_or(u64::MAX)
    }
}

/// The representative value reported for bucket `idx`: the bucket midpoint,
/// a deterministic rule shared by every merge order.
fn bucket_mid(idx: u32) -> u64 {
    let low = bucket_low(idx);
    let high = bucket_low(idx + 1);
    low + (high - low - 1) / 2
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(bucket_of(v)).or_insert(0) += 1;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += 1;
        self.sum += v as u128;
    }

    /// Fold another histogram into this one (bucket-count addition).
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        if other.total == 0 {
            return;
        }
        for (&idx, &c) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += c;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the representative value of the
    /// bucket holding the rank-`⌈q·total⌉` sample, clamped to the observed
    /// min/max so tails never report impossible values. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank 1..=total; ceil without float edge cases on huge counts.
        let target = ((self.total as f64 * q).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (&idx, &c) in &self.counts {
            seen += c;
            if seen >= target {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience accessors for the headline quantiles.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, ascending — the
    /// Prometheus-style cumulative rendering is built from this.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&idx, &c)| (bucket_low(idx), c))
    }

    /// Exact sum of the recorded values (0 when empty). Together with
    /// [`LogLinearHistogram::count`] this backs the Prometheus `_sum` /
    /// `_count` pair, which must be exact rather than bucket-approximated.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Occupied buckets as cumulative `(upper_bound, cumulative_count)`
    /// pairs, ascending — exactly the `le`-labelled series of a Prometheus
    /// histogram (the final implicit bucket is `+Inf`, which the renderer
    /// adds with the total count). Upper bounds are inclusive: every value
    /// in bucket `idx` is `< bucket_low(idx + 1)`, hence `≤` the bound.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.counts.iter().map(move |(&idx, &c)| {
            cum += c;
            (bucket_low(idx + 1), cum)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = bucket_of(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let b = bucket_of(v);
            assert!(b == prev || b == prev + 1, "gap at {v}: {prev} -> {b}");
            prev = b;
        }
        // Valid indices run up to bucket_of(u64::MAX); one past the last
        // bucket saturates, so mid-of-last-bucket stays in range.
        let top = bucket_of(u64::MAX);
        for idx in 0..top {
            assert_eq!(bucket_of(bucket_low(idx)), idx, "inverse at {idx}");
            assert!(bucket_low(idx + 1) > bucket_low(idx));
        }
        assert_eq!(bucket_low(top + 1), u64::MAX);
        let mut h = LogLinearHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let mut h = LogLinearHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        let tol = 1.0 / SUB as f64;
        for (q, exact) in [(0.5, 5_000.0), (0.99, 9_900.0), (0.999, 9_990.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - exact).abs() / exact <= tol,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut all = LogLinearHistogram::new();
        let mut parts: Vec<LogLinearHistogram> = (0..4).map(|_| LogLinearHistogram::new()).collect();
        for v in 0..1_000u64 {
            let x = (v * 7919) % 50_000;
            all.record(x);
            parts[(v % 4) as usize].record(x);
        }
        let mut merged = LogLinearHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, all);
        assert_eq!(merged.p999(), all.p999());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_cover_all_samples() {
        let mut h = LogLinearHistogram::new();
        for v in [3u64, 3, 17, 900, 900, 900, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.sum(), 3 + 3 + 17 + 900 * 3 + 1_000_000);
        let buckets: Vec<(u64, u64)> = h.cumulative_buckets().collect();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "bounds ascend");
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "counts accumulate");
        assert_eq!(buckets.last().unwrap().1, h.count(), "last bucket holds everything");
        // Every recorded value is ≤ its bucket's upper bound: the cumulative
        // count at the first bound ≥ v must include v's bucket.
        for v in [3u64, 17, 900, 1_000_000] {
            let covered = buckets.iter().find(|&&(le, _)| le >= v).unwrap().1;
            assert!(covered >= 1, "value {v} not covered");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        let mut m = LogLinearHistogram::new();
        m.merge(&h);
        assert_eq!(m, h, "merging empties stays empty");
    }
}
