//! Telemetry for the OptiLog reproduction: causal commit traces, a
//! per-run metrics registry, and engine profiling hooks.
//!
//! The crate is dependency-free and time-agnostic: callers pass simulated
//! microseconds as plain `u64`s, so the same API serves the deterministic
//! simulator today and a wall-clock `deployd` runtime later. A [`Telemetry`]
//! handle is a cheap clone around `Option<Arc<..>>`:
//!
//! - [`Telemetry::disabled`] — every call is an inlined no-op on a `None`;
//!   this is the zero-cost path `bench_engine` gates at <2% overhead.
//! - [`Telemetry::recording`] — metrics registry only. The lab installs this
//!   on *every* cell so registry-derived metrics are identical whether or
//!   not a trace is being captured.
//! - [`Telemetry::tracing`] — registry plus a [`TraceSink`] capturing span
//!   events for Chrome/Perfetto export.
//!
//! Metric names follow `crate.subsystem.name` (dots, ascii); replica-scoped
//! metrics carry the replica id as a label, and histograms are log-linear so
//! per-replica shards merge in any order to identical quantiles.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]

mod critical_path;
mod fingerprint;
mod hist;
mod metrics;
mod timeseries;
mod trace;

pub use critical_path::{attribute, BreakdownRow, CommandPath, LatencyBreakdown, Phase};
pub use fingerprint::{chain48, fingerprint48, FINGERPRINT_BITS};
pub use hist::{LogLinearHistogram, SUB_BITS};
pub use metrics::{escape_label_value, MetricKey, Registry};
pub use timeseries::{Timeseries, TimeseriesSampler, WindowSample};
pub use trace::{Stage, TraceEvent, TraceId, TraceSink, CLIENTS_PID};

use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    registry: Mutex<Registry>,
    sink: Option<Mutex<TraceSink>>,
    /// Windowed sampler, installed on demand. Lock order: sampler before
    /// registry (the tick holds both).
    sampler: Mutex<Option<TimeseriesSampler>>,
}

/// A cloneable telemetry handle. `None` inside means fully disabled; all
/// record paths check that one `Option` and return immediately.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, every call is a branch on a
    /// `None` and a return.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Registry-only recording (counters, gauges, histograms) — no trace
    /// sink, so span events are dropped at the same `is_tracing` branch a
    /// traced run takes.
    pub fn recording() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(Registry::new()),
                sink: None,
                sampler: Mutex::new(None),
            })),
        }
    }

    /// Registry plus trace capture (unbounded sink — the sim-sweep default,
    /// so Perfetto exports carry every span).
    pub fn tracing() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(Registry::new()),
                sink: Some(Mutex::new(TraceSink::new())),
                sampler: Mutex::new(None),
            })),
        }
    }

    /// Registry plus a ring-buffered trace sink retaining the most recent
    /// `capacity` events — the flight-recorder mode for long real-clock
    /// runs, where an unbounded sink would grow without limit. Evictions
    /// are counted in the `telemetry.trace.evicted` counter.
    pub fn tracing_with_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(Registry::new()),
                sink: Some(Mutex::new(TraceSink::with_capacity(capacity))),
                sampler: Mutex::new(None),
            })),
        }
    }

    /// True when any recording (registry or trace) is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when a trace sink is installed.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.sink.is_some())
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn counter_add(&self, name: &str, replica: Option<usize>, delta: u64) {
        if let Some(i) = &self.inner {
            i.registry.lock().unwrap().counter_add(name, replica, delta);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge_set(&self, name: &str, replica: Option<usize>, v: f64) {
        if let Some(i) = &self.inner {
            i.registry.lock().unwrap().gauge_set(name, replica, v);
        }
    }

    /// Raise a high-water-mark gauge.
    #[inline]
    pub fn gauge_max(&self, name: &str, replica: Option<usize>, v: f64) {
        if let Some(i) = &self.inner {
            i.registry.lock().unwrap().gauge_max(name, replica, v);
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, name: &str, replica: Option<usize>, v: u64) {
        if let Some(i) = &self.inner {
            i.registry.lock().unwrap().observe(name, replica, v);
        }
    }

    /// Record a span event (`dur_us > 0`) into the trace, if tracing.
    #[inline]
    pub fn span(
        &self,
        stage: Stage,
        pid: usize,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, f64)>,
    ) {
        if let Some(i) = &self.inner {
            if let Some(sink) = &i.sink {
                let dropped = sink.lock().unwrap().record(TraceEvent {
                    stage,
                    pid,
                    tid,
                    ts_us,
                    dur_us,
                    args,
                });
                // Ring eviction is visible in the registry; lock order is
                // sink before registry (never the reverse anywhere).
                if dropped > 0 {
                    i.registry.lock().unwrap().counter_add(
                        "telemetry.trace.evicted",
                        None,
                        dropped,
                    );
                }
            }
        }
    }

    /// Record an instant event into the trace, if tracing.
    #[inline]
    pub fn instant(
        &self,
        stage: Stage,
        pid: usize,
        tid: u64,
        ts_us: u64,
        args: Vec<(&'static str, f64)>,
    ) {
        self.span(stage, pid, tid, ts_us, 0, args);
    }

    /// Run `f` against the registry (no-op when disabled). Batched hot-path
    /// recording goes through this to take the lock once.
    #[inline]
    pub fn with_registry<F: FnOnce(&mut Registry)>(&self, f: F) {
        if let Some(i) = &self.inner {
            f(&mut i.registry.lock().unwrap());
        }
    }

    /// A snapshot clone of the registry (empty when disabled).
    pub fn registry_snapshot(&self) -> Registry {
        match &self.inner {
            Some(i) => i.registry.lock().unwrap().clone(),
            None => Registry::new(),
        }
    }

    /// Events recorded per stage name (empty when not tracing).
    pub fn stage_counts(&self) -> std::collections::BTreeMap<&'static str, u64> {
        match &self.inner {
            Some(i) => match &i.sink {
                Some(s) => s.lock().unwrap().stage_counts(),
                None => Default::default(),
            },
            None => Default::default(),
        }
    }

    /// Export the captured trace as Chrome `trace_event` JSON. `None` when
    /// not tracing.
    pub fn chrome_trace_json(&self, process_labels: &[(usize, String)]) -> Option<String> {
        let i = self.inner.as_ref()?;
        let sink = i.sink.as_ref()?;
        Some(sink.lock().unwrap().chrome_trace_json(process_labels))
    }

    /// Run `f` over the raw recorded trace events (critical-path attribution
    /// reads them without cloning the sink). `None` when not tracing.
    pub fn with_trace_events<R>(&self, f: impl FnOnce(&[TraceEvent]) -> R) -> Option<R> {
        let i = self.inner.as_ref()?;
        let sink = i.sink.as_ref()?;
        Some(f(sink.lock().unwrap().events()))
    }

    /// Attribute every committed command's e2e latency from the captured
    /// trace (empty when not tracing).
    pub fn command_paths(&self) -> Vec<CommandPath> {
        self.with_trace_events(attribute).unwrap_or_default()
    }

    /// Install (or replace) the windowed time-series sampler. Windows close
    /// at subsequent [`Telemetry::tick_timeseries`] calls. No-op when the
    /// handle is disabled.
    pub fn install_timeseries(&self, window_us: u64) {
        if let Some(i) = &self.inner {
            *i.sampler.lock().unwrap() = Some(TimeseriesSampler::new(window_us));
        }
    }

    /// Advance the sampler to `now_us`, closing every fully elapsed window.
    /// Cheap when no boundary passed; a no-op when disabled or no sampler is
    /// installed.
    #[inline]
    pub fn tick_timeseries(&self, now_us: u64) {
        if let Some(i) = &self.inner {
            let mut sampler = i.sampler.lock().unwrap();
            if let Some(s) = sampler.as_mut() {
                s.tick(now_us, &i.registry.lock().unwrap());
            }
        }
    }

    /// A snapshot of the windows closed so far (`None` when disabled or no
    /// sampler is installed).
    pub fn timeseries_snapshot(&self) -> Option<Timeseries> {
        let i = self.inner.as_ref()?;
        i.sampler
            .lock()
            .unwrap()
            .as_ref()
            .map(|s| s.timeseries().clone())
    }

    /// The registry rendered in Prometheus text format (empty when
    /// disabled).
    pub fn prometheus_text(&self) -> String {
        match &self.inner {
            Some(i) => i.registry.lock().unwrap().prometheus_text(),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_drops_everything() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(!t.is_tracing());
        t.counter_add("a.b.c", None, 1);
        t.observe("a.b.h", Some(0), 10);
        t.span(Stage::Commit, 0, 1, 0, 5, vec![]);
        assert!(t.registry_snapshot().is_empty());
        assert_eq!(t.chrome_trace_json(&[]), None);
        assert_eq!(t.prometheus_text(), "");
    }

    #[test]
    fn recording_keeps_metrics_but_drops_spans() {
        let t = Telemetry::recording();
        assert!(t.is_enabled());
        assert!(!t.is_tracing());
        t.counter_add("a.b.c", Some(2), 3);
        t.span(Stage::Commit, 0, 1, 0, 5, vec![]);
        assert_eq!(t.registry_snapshot().counter("a.b.c", Some(2)), 3);
        assert!(t.stage_counts().is_empty());
        assert_eq!(t.chrome_trace_json(&[]), None);
    }

    #[test]
    fn tracing_captures_both_and_clones_share_state() {
        let t = Telemetry::tracing();
        let t2 = t.clone();
        t.span(Stage::Propose, 1, 9, 100, 0, vec![]);
        t2.span(Stage::Commit, 1, 9, 100, 400, vec![("commands", 8.0)]);
        t2.counter_add("x.y.z", None, 1);
        assert_eq!(t.stage_counts()["propose"], 1);
        assert_eq!(t.stage_counts()["commit"], 1);
        assert_eq!(t.registry_snapshot().counter("x.y.z", None), 1);
        let json = t.chrome_trace_json(&[(1, "replica 1".into())]).unwrap();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn sampler_ticks_through_the_handle() {
        let t = Telemetry::recording();
        assert_eq!(t.timeseries_snapshot(), None, "no sampler installed yet");
        t.tick_timeseries(5_000_000); // no sampler: no-op
        t.install_timeseries(1_000_000);
        t.counter_add("x.ops", None, 3);
        t.tick_timeseries(1_000_000);
        t.counter_add("x.ops", None, 4);
        t.tick_timeseries(2_000_000);
        let ts = t.timeseries_snapshot().unwrap();
        assert_eq!(ts.series()["ts.x.ops.delta"], vec![(1.0, 3.0), (2.0, 4.0)]);
        // Disabled handles ignore the whole sampler API.
        let d = Telemetry::disabled();
        d.install_timeseries(1_000_000);
        d.tick_timeseries(9_000_000);
        assert_eq!(d.timeseries_snapshot(), None);
    }

    #[test]
    fn capacity_handle_counts_evictions_in_the_registry() {
        let t = Telemetry::tracing_with_capacity(2);
        for tid in 0..5 {
            t.instant(Stage::Vote, 0, tid, tid * 10, vec![]);
        }
        assert_eq!(t.stage_counts()["vote"], 2, "ring retains capacity events");
        assert_eq!(
            t.registry_snapshot()
                .counter("telemetry.trace.evicted", None),
            3
        );
        // Retained events are the most recent ones.
        let tids = t.with_trace_events(|evs| evs.iter().map(|e| e.tid).collect::<Vec<_>>());
        assert_eq!(tids, Some(vec![3, 4]));
        // Unbounded tracing never touches the eviction counter.
        let unbounded = Telemetry::tracing();
        for tid in 0..5 {
            unbounded.instant(Stage::Vote, 0, tid, tid * 10, vec![]);
        }
        assert_eq!(
            unbounded
                .registry_snapshot()
                .counter("telemetry.trace.evicted", None),
            0
        );
    }

    #[test]
    fn command_paths_come_from_the_trace() {
        let t = Telemetry::tracing();
        t.span(Stage::ClientEmit, CLIENTS_PID, 0, 0, 1_000, vec![]);
        t.span(Stage::Admission, CLIENTS_PID, 0, 1_000, 500, vec![]);
        t.instant(Stage::Propose, 0, 3, 2_000, vec![]);
        t.span(
            Stage::Reply,
            CLIENTS_PID,
            0,
            9_000,
            400,
            vec![("view", 3.0)],
        );
        let paths = t.command_paths();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].view, Some(3));
        assert_eq!(paths[0].e2e_us, 9_000 + 400);
        assert!(Telemetry::recording().command_paths().is_empty());
    }

    #[test]
    fn registry_recording_is_identical_with_and_without_tracing() {
        let record = |t: &Telemetry| {
            t.counter_add("s.n.commits", Some(0), 4);
            t.observe("s.n.lat_us", Some(1), 12_345);
            t.gauge_max("s.n.depth", None, 7.0);
            t.span(Stage::Commit, 0, 1, 10, 20, vec![]);
        };
        let rec = Telemetry::recording();
        let tra = Telemetry::tracing();
        record(&rec);
        record(&tra);
        assert_eq!(
            rec.registry_snapshot().prometheus_text(),
            tra.registry_snapshot().prometheus_text()
        );
    }
}
