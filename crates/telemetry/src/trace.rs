//! The causal trace layer: deterministic sim-time span events keyed by a
//! [`TraceId`], exportable as Chrome/Perfetto `trace_event` JSON.
//!
//! Every instrumentation point on the commit path (client emit → ingress
//! forward → admission → propose → per-hop tree forward → vote/aggregate →
//! commit → reply, plus the dissemination-hold an adversary inserts) records
//! a [`Stage`]-tagged event. Timestamps are *simulated* microseconds, which
//! map 1:1 onto the `ts`/`dur` fields of the `trace_event` format — open the
//! exported file in Perfetto (or `chrome://tracing`) and a Fig 7 attack is
//! visibly a widening `hold` span under the root's track.

/// The identifier a client command carries end to end. Traffic assigns the
/// global arrival index; `rsm::Command` carries it so any layer can stamp
/// spans with the command range it is moving.
pub type TraceId = u64;

/// The canonical instrumentation points of one commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Client issues the request (span: send → ingress replica).
    ClientEmit,
    /// Ingress replica forwards to the current proposer (span: the charged
    /// forwarding hop — same number the e2e accounting charges).
    IngressForward,
    /// The command waits in the leader-side admission queue (span:
    /// ingress/forward arrival → batch dispatch).
    Admission,
    /// The proposer assembles and emits a proposal (instant).
    Propose,
    /// One dissemination hop: proposal emitted → delivered at a replica
    /// (span; tree substrates record one per hop).
    Forward,
    /// An adversarial dissemination hold: the payload sat on the proposer
    /// past its natural send instant (span).
    Hold,
    /// A replica votes (instant).
    Vote,
    /// A tree internal forwards an aggregate upward (instant).
    Aggregate,
    /// The proposal commits (span: proposal timestamp → commit).
    Commit,
    /// The reply travels back to the client (span: commit → reply arrival).
    Reply,
    /// A role reconfiguration is adopted (instant).
    Reconfigure,
}

impl Stage {
    /// Every instrumentation point, in commit-path order — the span-coverage
    /// audits iterate this so a newly added stage is automatically expected
    /// somewhere (or consciously excluded per substrate family).
    pub const ALL: [Stage; 11] = [
        Stage::ClientEmit,
        Stage::IngressForward,
        Stage::Admission,
        Stage::Propose,
        Stage::Forward,
        Stage::Hold,
        Stage::Vote,
        Stage::Aggregate,
        Stage::Commit,
        Stage::Reply,
        Stage::Reconfigure,
    ];

    /// The `name` field of the exported trace event.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::ClientEmit => "client_emit",
            Stage::IngressForward => "ingress_forward",
            Stage::Admission => "admission",
            Stage::Propose => "propose",
            Stage::Forward => "forward",
            Stage::Hold => "hold",
            Stage::Vote => "vote",
            Stage::Aggregate => "aggregate",
            Stage::Commit => "commit",
            Stage::Reply => "reply",
            Stage::Reconfigure => "reconfigure",
        }
    }

    /// The `cat` (category) field: which layer records the stage.
    pub fn category(&self) -> &'static str {
        match self {
            Stage::ClientEmit | Stage::IngressForward | Stage::Admission | Stage::Reply => {
                "traffic"
            }
            Stage::Propose
            | Stage::Forward
            | Stage::Hold
            | Stage::Vote
            | Stage::Aggregate
            | Stage::Commit
            | Stage::Reconfigure => "consensus",
        }
    }
}

/// The synthetic `pid` used for client-side (traffic-layer) tracks, where no
/// replica is a natural owner.
pub const CLIENTS_PID: usize = 10_000;

/// One recorded trace event. `dur_us == 0` renders as an instant event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Instrumentation point.
    pub stage: Stage,
    /// Track owner: replica id, or [`CLIENTS_PID`] for client-side stages.
    pub pid: usize,
    /// Causal key within the track: a [`TraceId`] for per-command stages, a
    /// view/sequence number for per-proposal stages.
    pub tid: u64,
    /// Start instant, simulated microseconds.
    pub ts_us: u64,
    /// Span length, simulated microseconds (0 = instant).
    pub dur_us: u64,
    /// Free-form numeric arguments (`commands`, `depth`, `trace_lo`, ...).
    pub args: Vec<(&'static str, f64)>,
}

/// The per-run sink trace events are recorded into.
///
/// By default the sink grows without bound — sim sweeps are short and the
/// Perfetto export must carry every span. Long real-clock runs install a
/// ring capacity instead ([`TraceSink::with_capacity`]): once full, each
/// new event evicts the oldest, so the sink always holds the most recent
/// `capacity` events (a flight recorder, not an archive).
#[derive(Debug, Default)]
pub struct TraceSink {
    events: std::collections::VecDeque<TraceEvent>,
    /// `None` = unbounded (the sim-sweep default).
    capacity: Option<usize>,
    /// Events dropped from the front of the ring since creation.
    evicted: u64,
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl TraceSink {
    /// An empty, unbounded sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty ring sink that retains at most `capacity` events, evicting
    /// the oldest first. `capacity == 0` is treated as unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            events: std::collections::VecDeque::new(),
            capacity: (capacity > 0).then_some(capacity),
            evicted: 0,
        }
    }

    /// Record one event, evicting the oldest when a ring capacity is set
    /// and full. Returns how many events were evicted to make room.
    pub fn record(&mut self, ev: TraceEvent) -> u64 {
        let mut dropped = 0;
        if let Some(cap) = self.capacity {
            while self.events.len() >= cap {
                self.events.pop_front();
                self.evicted += 1;
                dropped += 1;
            }
        }
        self.events.push_back(ev);
        dropped
    }

    /// Number of retained events (excludes evicted ones).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The ring capacity, if one was set.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Events evicted from the ring since creation (0 when unbounded).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events recorded per stage name — the coverage check CI runs against
    /// a smoke trace.
    pub fn stage_counts(&self) -> std::collections::BTreeMap<&'static str, u64> {
        let mut out = std::collections::BTreeMap::new();
        for e in &self.events {
            *out.entry(e.stage.name()).or_insert(0) += 1;
        }
        out
    }

    /// The retained events, in recording order (oldest first).
    pub fn events(&mut self) -> &[TraceEvent] {
        self.events.make_contiguous();
        self.events.as_slices().0
    }

    /// Export as Chrome `trace_event` JSON (the object form, with
    /// `traceEvents`): spans are `ph:"X"` complete events, zero-duration
    /// records are `ph:"i"` instants. `process_labels` names the tracks
    /// (`pid → "replica 3"` / `"clients"`).
    pub fn chrome_trace_json(&self, process_labels: &[(usize, String)]) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
            out.push('\n');
        };
        for (pid, label) in process_labels {
            push(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{label}\"}}}}"
                ),
                &mut first,
            );
        }
        for e in &self.events {
            let mut args = format!("\"stage\":\"{}\"", e.stage.name());
            for (k, v) in &e.args {
                args.push_str(&format!(",\"{k}\":{}", fmt_f64(*v)));
            }
            let common = format!(
                "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{{args}}}",
                e.stage.name(),
                e.stage.category(),
                e.pid,
                e.tid,
                e.ts_us,
            );
            if e.dur_us == 0 {
                push(format!("{{{common},\"ph\":\"i\",\"s\":\"t\"}}"), &mut first);
            } else {
                push(
                    format!("{{{common},\"ph\":\"X\",\"dur\":{}}}", e.dur_us),
                    &mut first,
                );
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_export_is_valid_json_with_spans_and_instants() {
        let mut sink = TraceSink::new();
        sink.record(TraceEvent {
            stage: Stage::Commit,
            pid: 0,
            tid: 7,
            ts_us: 1_000,
            dur_us: 2_500,
            args: vec![("commands", 100.0)],
        });
        sink.record(TraceEvent {
            stage: Stage::Vote,
            pid: 3,
            tid: 7,
            ts_us: 1_700,
            dur_us: 0,
            args: vec![],
        });
        let json = sink.chrome_trace_json(&[(0, "replica 0".into()), (3, "replica 3".into())]);
        let v: serde::Value = serde_json::from_str(&json).expect("exported trace parses as JSON");
        let events = match v.get("traceEvents").expect("traceEvents key") {
            serde::Value::Arr(items) => items.clone(),
            other => panic!("traceEvents is {}, not array", other.kind()),
        };
        assert_eq!(events.len(), 4, "2 metadata + 2 events");
        let commit = &events[2];
        assert_eq!(commit.get("ph"), Some(&serde::Value::Str("X".to_string())));
        match commit.get("dur").expect("dur field") {
            serde::Value::Num(n) => assert_eq!(n.as_i64(), Some(2500)),
            other => panic!("dur is {}", other.kind()),
        }
        assert_eq!(
            events[3].get("ph"),
            Some(&serde::Value::Str("i".to_string()))
        );
        assert_eq!(sink.stage_counts()["commit"], 1);
        assert_eq!(sink.stage_counts()["vote"], 1);
    }

    #[test]
    fn ring_capacity_evicts_oldest_first() {
        let mut sink = TraceSink::with_capacity(3);
        assert_eq!(sink.capacity(), Some(3));
        let ev = |tid: u64| TraceEvent {
            stage: Stage::Vote,
            pid: 0,
            tid,
            ts_us: tid * 10,
            dur_us: 0,
            args: vec![],
        };
        for tid in 0..5 {
            let dropped = sink.record(ev(tid));
            assert_eq!(dropped, u64::from(tid >= 3), "one eviction per overflow");
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.evicted(), 2);
        // Oldest (tid 0, 1) evicted; survivors keep recording order.
        let tids: Vec<u64> = sink.events().iter().map(|e| e.tid).collect();
        assert_eq!(tids, vec![2, 3, 4]);
        // The export carries only retained events.
        let json = sink.chrome_trace_json(&[]);
        assert!(!json.contains("\"ts\":0,"));
        assert!(json.contains("\"ts\":40,"));
    }

    #[test]
    fn unbounded_sink_never_evicts() {
        let mut sink = TraceSink::new();
        assert_eq!(sink.capacity(), None);
        for tid in 0..100 {
            assert_eq!(
                sink.record(TraceEvent {
                    stage: Stage::Commit,
                    pid: 0,
                    tid,
                    ts_us: tid,
                    dur_us: 1,
                    args: vec![],
                }),
                0
            );
        }
        assert_eq!(sink.len(), 100);
        assert_eq!(sink.evicted(), 0);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
