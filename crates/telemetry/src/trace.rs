//! The causal trace layer: deterministic sim-time span events keyed by a
//! [`TraceId`], exportable as Chrome/Perfetto `trace_event` JSON.
//!
//! Every instrumentation point on the commit path (client emit → ingress
//! forward → admission → propose → per-hop tree forward → vote/aggregate →
//! commit → reply, plus the dissemination-hold an adversary inserts) records
//! a [`Stage`]-tagged event. Timestamps are *simulated* microseconds, which
//! map 1:1 onto the `ts`/`dur` fields of the `trace_event` format — open the
//! exported file in Perfetto (or `chrome://tracing`) and a Fig 7 attack is
//! visibly a widening `hold` span under the root's track.

/// The identifier a client command carries end to end. Traffic assigns the
/// global arrival index; `rsm::Command` carries it so any layer can stamp
/// spans with the command range it is moving.
pub type TraceId = u64;

/// The canonical instrumentation points of one commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Client issues the request (span: send → ingress replica).
    ClientEmit,
    /// Ingress replica forwards to the current proposer (span: the charged
    /// forwarding hop — same number the e2e accounting charges).
    IngressForward,
    /// The command waits in the leader-side admission queue (span:
    /// ingress/forward arrival → batch dispatch).
    Admission,
    /// The proposer assembles and emits a proposal (instant).
    Propose,
    /// One dissemination hop: proposal emitted → delivered at a replica
    /// (span; tree substrates record one per hop).
    Forward,
    /// An adversarial dissemination hold: the payload sat on the proposer
    /// past its natural send instant (span).
    Hold,
    /// A replica votes (instant).
    Vote,
    /// A tree internal forwards an aggregate upward (instant).
    Aggregate,
    /// The proposal commits (span: proposal timestamp → commit).
    Commit,
    /// The reply travels back to the client (span: commit → reply arrival).
    Reply,
    /// A role reconfiguration is adopted (instant).
    Reconfigure,
}

impl Stage {
    /// Every instrumentation point, in commit-path order — the span-coverage
    /// audits iterate this so a newly added stage is automatically expected
    /// somewhere (or consciously excluded per substrate family).
    pub const ALL: [Stage; 11] = [
        Stage::ClientEmit,
        Stage::IngressForward,
        Stage::Admission,
        Stage::Propose,
        Stage::Forward,
        Stage::Hold,
        Stage::Vote,
        Stage::Aggregate,
        Stage::Commit,
        Stage::Reply,
        Stage::Reconfigure,
    ];

    /// The `name` field of the exported trace event.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::ClientEmit => "client_emit",
            Stage::IngressForward => "ingress_forward",
            Stage::Admission => "admission",
            Stage::Propose => "propose",
            Stage::Forward => "forward",
            Stage::Hold => "hold",
            Stage::Vote => "vote",
            Stage::Aggregate => "aggregate",
            Stage::Commit => "commit",
            Stage::Reply => "reply",
            Stage::Reconfigure => "reconfigure",
        }
    }

    /// The `cat` (category) field: which layer records the stage.
    pub fn category(&self) -> &'static str {
        match self {
            Stage::ClientEmit | Stage::IngressForward | Stage::Admission | Stage::Reply => {
                "traffic"
            }
            Stage::Propose | Stage::Forward | Stage::Hold | Stage::Vote | Stage::Aggregate
            | Stage::Commit | Stage::Reconfigure => "consensus",
        }
    }
}

/// The synthetic `pid` used for client-side (traffic-layer) tracks, where no
/// replica is a natural owner.
pub const CLIENTS_PID: usize = 10_000;

/// One recorded trace event. `dur_us == 0` renders as an instant event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Instrumentation point.
    pub stage: Stage,
    /// Track owner: replica id, or [`CLIENTS_PID`] for client-side stages.
    pub pid: usize,
    /// Causal key within the track: a [`TraceId`] for per-command stages, a
    /// view/sequence number for per-proposal stages.
    pub tid: u64,
    /// Start instant, simulated microseconds.
    pub ts_us: u64,
    /// Span length, simulated microseconds (0 = instant).
    pub dur_us: u64,
    /// Free-form numeric arguments (`commands`, `depth`, `trace_lo`, ...).
    pub args: Vec<(&'static str, f64)>,
}

/// The per-run sink trace events are recorded into.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events recorded per stage name — the coverage check CI runs against
    /// a smoke trace.
    pub fn stage_counts(&self) -> std::collections::BTreeMap<&'static str, u64> {
        let mut out = std::collections::BTreeMap::new();
        for e in &self.events {
            *out.entry(e.stage.name()).or_insert(0) += 1;
        }
        out
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Export as Chrome `trace_event` JSON (the object form, with
    /// `traceEvents`): spans are `ph:"X"` complete events, zero-duration
    /// records are `ph:"i"` instants. `process_labels` names the tracks
    /// (`pid → "replica 3"` / `"clients"`).
    pub fn chrome_trace_json(&self, process_labels: &[(usize, String)]) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
            out.push('\n');
        };
        for (pid, label) in process_labels {
            push(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{label}\"}}}}"
                ),
                &mut first,
            );
        }
        for e in &self.events {
            let mut args = format!("\"stage\":\"{}\"", e.stage.name());
            for (k, v) in &e.args {
                args.push_str(&format!(",\"{k}\":{}", fmt_f64(*v)));
            }
            let common = format!(
                "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{{args}}}",
                e.stage.name(),
                e.stage.category(),
                e.pid,
                e.tid,
                e.ts_us,
            );
            if e.dur_us == 0 {
                push(format!("{{{common},\"ph\":\"i\",\"s\":\"t\"}}"), &mut first);
            } else {
                push(format!("{{{common},\"ph\":\"X\",\"dur\":{}}}", e.dur_us), &mut first);
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_export_is_valid_json_with_spans_and_instants() {
        let mut sink = TraceSink::new();
        sink.record(TraceEvent {
            stage: Stage::Commit,
            pid: 0,
            tid: 7,
            ts_us: 1_000,
            dur_us: 2_500,
            args: vec![("commands", 100.0)],
        });
        sink.record(TraceEvent {
            stage: Stage::Vote,
            pid: 3,
            tid: 7,
            ts_us: 1_700,
            dur_us: 0,
            args: vec![],
        });
        let json = sink.chrome_trace_json(&[(0, "replica 0".into()), (3, "replica 3".into())]);
        let v: serde::Value = serde_json::from_str(&json).expect("exported trace parses as JSON");
        let events = match v.get("traceEvents").expect("traceEvents key") {
            serde::Value::Arr(items) => items.clone(),
            other => panic!("traceEvents is {}, not array", other.kind()),
        };
        assert_eq!(events.len(), 4, "2 metadata + 2 events");
        let commit = &events[2];
        assert_eq!(
            commit.get("ph"),
            Some(&serde::Value::Str("X".to_string()))
        );
        match commit.get("dur").expect("dur field") {
            serde::Value::Num(n) => assert_eq!(n.as_i64(), Some(2500)),
            other => panic!("dur is {}", other.kind()),
        }
        assert_eq!(
            events[3].get("ph"),
            Some(&serde::Value::Str("i".to_string()))
        );
        assert_eq!(sink.stage_counts()["commit"], 1);
        assert_eq!(sink.stage_counts()["vote"], 1);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
