//! Compact fingerprints for cross-replica agreement checking.
//!
//! Replicas publish their latest committed digest (or config-adoption chain
//! head) as a *gauge*, so the audit layer can compare replicas through the
//! registry alone — no substrate-specific plumbing. Gauges are `f64`, whose
//! mantissa holds 52 bits exactly; fingerprints are folded to 48 bits so the
//! round-trip through a gauge is lossless.

/// Mask keeping a fingerprint exactly representable in an `f64` gauge.
pub const FINGERPRINT_BITS: u64 = (1 << 48) - 1;

/// A 48-bit fingerprint of `bytes` (FNV-1a with a finalising mix).
pub fn fingerprint48(bytes: &[u8]) -> u64 {
    chain48(0xcbf2_9ce4_8422_2325, bytes)
}

/// Extend a fingerprint chain: fold `bytes` into `prev`, producing the
/// 48-bit head of the grown chain. Two replicas reach the same head at the
/// same chain length iff they folded the same byte sequences in the same
/// order — the incremental prefix-agreement check.
pub fn chain48(prev: u64, bytes: &[u8]) -> u64 {
    let mut h = prev ^ 0x9e37_79b9_7f4a_7c15;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finaliser: avalanche so the 48-bit truncation keeps
    // collision odds near 2^-48 even for near-identical inputs.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h & FINGERPRINT_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_fit_a_gauge_exactly() {
        let fp = fingerprint48(b"some committed digest");
        assert!(fp <= FINGERPRINT_BITS);
        assert_eq!(fp as f64 as u64, fp, "lossless through f64");
    }

    #[test]
    fn chains_diverge_on_content_and_order() {
        let a = chain48(chain48(0, b"x"), b"y");
        let b = chain48(chain48(0, b"y"), b"x");
        let c = chain48(chain48(0, b"x"), b"y");
        assert_eq!(a, c, "deterministic");
        assert_ne!(a, b, "order-sensitive");
        assert_ne!(a, chain48(a, b"z"), "growth moves the head");
    }
}
