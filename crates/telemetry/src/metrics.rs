//! The per-run metrics registry: counters, gauges, and log-linear
//! histograms, keyed by a `crate.subsystem.name` metric name plus an
//! optional replica label.
//!
//! All storage is `BTreeMap`-ordered, so draining the registry — into the
//! lab's `BENCH_*.json` cell metrics or into the Prometheus text dump — is
//! independent of recording order and of the sweep's worker count.

use crate::hist::LogLinearHistogram;
use std::collections::BTreeMap;

/// A metric key: dotted `crate.subsystem.name` plus an optional replica.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dotted metric name (`traffic.queue.rejected`).
    pub name: String,
    /// Per-replica label; `None` for run-global metrics.
    pub replica: Option<usize>,
}

impl MetricKey {
    fn new(name: &str, replica: Option<usize>) -> Self {
        debug_assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_'),
            "metric names are dotted ascii: {name:?}"
        );
        MetricKey {
            name: name.to_string(),
            replica,
        }
    }

    /// Prometheus-style rendering: dots become underscores, `suffix` (e.g.
    /// `_total`) attaches to the name, and the replica label (if any) goes
    /// into the label set after it.
    fn prometheus(&self, suffix: &str) -> String {
        self.prometheus_labelled(suffix, &[])
    }

    /// Like [`MetricKey::prometheus`], with `extra` labels appended after
    /// the replica label. Label values go through the exposition-format
    /// escaping rules.
    fn prometheus_labelled(&self, suffix: &str, extra: &[(&str, &str)]) -> String {
        let base = self.name.replace('.', "_");
        let mut labels = Vec::new();
        if let Some(r) = self.replica {
            labels.push(format!("replica=\"{r}\""));
        }
        for (k, v) in extra {
            labels.push(format!("{k}=\"{}\"", escape_label_value(v)));
        }
        if labels.is_empty() {
            format!("{base}{suffix}")
        } else {
            format!("{base}{suffix}{{{}}}", labels.join(","))
        }
    }

    /// The metric family name in exposition form (dots → underscores).
    fn family(&self) -> String {
        self.name.replace('.', "_")
    }
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed must be backslash-escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and line feed are escaped (quotes are
/// legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// The registry of one run.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    hists: BTreeMap<MetricKey, LogLinearHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter.
    pub fn counter_add(&mut self, name: &str, replica: Option<usize>, delta: u64) {
        *self.counters.entry(MetricKey::new(name, replica)).or_insert(0) += delta;
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, replica: Option<usize>, v: f64) {
        self.gauges.insert(MetricKey::new(name, replica), v);
    }

    /// Raise a gauge to `v` if above its current value (high-water marks).
    pub fn gauge_max(&mut self, name: &str, replica: Option<usize>, v: f64) {
        let e = self.gauges.entry(MetricKey::new(name, replica)).or_insert(f64::MIN);
        if v > *e {
            *e = v;
        }
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, name: &str, replica: Option<usize>, v: u64) {
        self.hists
            .entry(MetricKey::new(name, replica))
            .or_default()
            .record(v);
    }

    /// A counter's current value (0 if never touched).
    pub fn counter(&self, name: &str, replica: Option<usize>) -> u64 {
        self.counters.get(&MetricKey::new(name, replica)).copied().unwrap_or(0)
    }

    /// A gauge's current value, if set.
    pub fn gauge(&self, name: &str, replica: Option<usize>) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, replica)).copied()
    }

    /// A histogram by key, if any observation landed in it.
    pub fn histogram(&self, name: &str, replica: Option<usize>) -> Option<&LogLinearHistogram> {
        self.hists.get(&MetricKey::new(name, replica))
    }

    /// Merge all histograms sharing `name` across replica labels — the
    /// cross-replica view whose quantiles are merge-order independent.
    pub fn merged_histogram(&self, name: &str) -> LogLinearHistogram {
        let mut out = LogLinearHistogram::new();
        for (k, h) in &self.hists {
            if k.name == name {
                out.merge(h);
            }
        }
        out
    }

    /// Fold another registry into this one (counters add, gauges take the
    /// max, histograms merge).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::MIN);
            if *v > *e {
                *e = *v;
            }
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &LogLinearHistogram)> + '_ {
        self.hists.iter()
    }

    /// Render the registry in Prometheus text exposition format, one
    /// `# HELP` / `# TYPE` header per metric family followed by its samples
    /// in replica-label order. Counters become `<name>_total`, gauges render
    /// plainly, and histograms expose the standard cumulative `le`-labelled
    /// `_bucket` series (bounds are the log-linear bucket upper bounds, plus
    /// the implicit `+Inf`) with exact `_sum` / `_count` — the mergeable
    /// buckets mean a scrape never needs raw samples.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let header = |out: &mut String, family: &str, kind: &str, name: &str| {
            out.push_str(&format!(
                "# HELP {family} {}\n# TYPE {family} {kind}\n",
                escape_help(&format!("{kind} {name} recorded by this run"))
            ));
        };
        let mut last_family = String::new();
        for (k, v) in &self.counters {
            let family = format!("{}_total", k.family());
            if family != last_family {
                header(&mut out, &family, "counter", &k.name);
                last_family = family;
            }
            out.push_str(&format!("{} {}\n", k.prometheus("_total"), v));
        }
        last_family.clear();
        for (k, v) in &self.gauges {
            let family = k.family();
            if family != last_family {
                header(&mut out, &family, "gauge", &k.name);
                last_family = family;
            }
            out.push_str(&format!("{} {}\n", k.prometheus(""), v));
        }
        last_family.clear();
        for (k, h) in &self.hists {
            let family = k.family();
            if family != last_family {
                header(&mut out, &family, "histogram", &k.name);
                last_family = family;
            }
            for (le, cum) in h.cumulative_buckets() {
                let bound = le.to_string();
                out.push_str(&format!(
                    "{} {}\n",
                    k.prometheus_labelled("_bucket", &[("le", &bound)]),
                    cum
                ));
            }
            out.push_str(&format!(
                "{} {}\n",
                k.prometheus_labelled("_bucket", &[("le", "+Inf")]),
                h.count()
            ));
            out.push_str(&format!("{} {}\n", k.prometheus("_sum"), h.sum()));
            out.push_str(&format!("{} {}\n", k.prometheus("_count"), h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let mut r = Registry::new();
        r.counter_add("a.b.c", None, 2);
        r.counter_add("a.b.c", None, 3);
        r.counter_add("a.b.c", Some(1), 7);
        r.gauge_set("a.b.depth", Some(0), 4.0);
        r.gauge_max("a.b.depth", Some(0), 9.0);
        r.gauge_max("a.b.depth", Some(0), 2.0);
        r.observe("a.b.lat_us", Some(0), 100);
        r.observe("a.b.lat_us", Some(1), 300);
        assert_eq!(r.counter("a.b.c", None), 5);
        assert_eq!(r.counter("a.b.c", Some(1)), 7);
        assert_eq!(r.gauge("a.b.depth", Some(0)), Some(9.0));
        assert_eq!(r.merged_histogram("a.b.lat_us").count(), 2);
        assert_eq!(r.histogram("a.b.lat_us", Some(0)).unwrap().count(), 1);
    }

    #[test]
    fn prometheus_text_is_sorted_and_labelled() {
        let mut r = Registry::new();
        r.counter_add("z.last", None, 1);
        r.counter_add("a.first", Some(3), 2);
        r.observe("m.hist_us", Some(0), 50);
        let text = r.prometheus_text();
        let a = text.find("a_first_total{replica=\"3\"} 2").expect("labelled counter");
        let z = text.find("z_last_total 1").expect("plain counter");
        assert!(a < z, "counters render in key order");
        assert!(text.contains("m_hist_us_count{replica=\"0\"} 1"));
        assert!(text.contains("m_hist_us_bucket{replica=\"0\",le=\"+Inf\"} 1"));
    }

    /// Format-conformance pin: HELP/TYPE headers precede each family's
    /// samples, histogram buckets are cumulative `le` series ending at
    /// `+Inf` with exact `_sum`/`_count`, and label values are escaped.
    #[test]
    fn prometheus_text_conforms_to_exposition_format() {
        let mut r = Registry::new();
        r.counter_add("a.commits", Some(0), 4);
        r.counter_add("a.commits", Some(1), 6);
        r.gauge_set("a.depth", None, 7.5);
        for v in [10u64, 20, 20, 5_000] {
            r.observe("a.lat_us", Some(2), v);
        }
        let text = r.prometheus_text();
        let lines: Vec<&str> = text.lines().collect();

        // Exactly one HELP and one TYPE per family, before its samples.
        for family in ["a_commits_total", "a_depth", "a_lat_us"] {
            let help = lines
                .iter()
                .position(|l| l.starts_with(&format!("# HELP {family} ")))
                .unwrap_or_else(|| panic!("no HELP for {family}"));
            let ty = lines
                .iter()
                .position(|l| l.starts_with(&format!("# TYPE {family} ")))
                .unwrap_or_else(|| panic!("no TYPE for {family}"));
            let first_sample = lines
                .iter()
                .position(|l| !l.starts_with('#') && l.starts_with(family))
                .unwrap_or_else(|| panic!("no samples for {family}"));
            assert!(help < first_sample && ty < first_sample, "{family} headers lead");
        }
        assert!(text.contains("# TYPE a_commits_total counter"));
        assert!(text.contains("# TYPE a_depth gauge"));
        assert!(text.contains("# TYPE a_lat_us histogram"));
        assert!(text.contains("a_commits_total{replica=\"0\"} 4"));
        assert!(text.contains("a_commits_total{replica=\"1\"} 6"));

        // Cumulative buckets: monotone counts, +Inf bucket equals _count,
        // every bound ≥ the largest value below it.
        let buckets: Vec<(f64, u64)> = lines
            .iter()
            .filter(|l| l.starts_with("a_lat_us_bucket"))
            .map(|l| {
                let le = l.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
                (le, l.rsplit(' ').next().unwrap().parse().unwrap())
            })
            .collect();
        assert!(buckets.len() >= 2);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(buckets.last().unwrap().0, f64::INFINITY);
        assert_eq!(buckets.last().unwrap().1, 4);
        assert!(text.contains("a_lat_us_sum{replica=\"2\"} 5050"));
        assert!(text.contains("a_lat_us_count{replica=\"2\"} 4"));

        // Label-value escaping.
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let mk = |vals: &[u64]| {
            let mut r = Registry::new();
            for &v in vals {
                r.counter_add("c.n", None, 1);
                r.observe("h.us", Some((v % 3) as usize), v);
            }
            r
        };
        let (a, b, c) = (mk(&[1, 5, 9]), mk(&[2, 200]), mk(&[77]));
        let mut ab_c = Registry::new();
        for r in [&a, &b, &c] {
            ab_c.merge(r);
        }
        let mut c_b_a = Registry::new();
        for r in [&c, &b, &a] {
            c_b_a.merge(r);
        }
        assert_eq!(ab_c.prometheus_text(), c_b_a.prometheus_text());
    }
}
