//! Windowed time-series telemetry: how the registry's metrics *evolved*
//! over a run, not just where they ended.
//!
//! A [`TimeseriesSampler`] is ticked on a fixed cadence — simulated time at
//! netsim second boundaries, wall-clock time in the real-cluster runtime —
//! and closes one [`WindowSample`] per elapsed window: per-name counter
//! deltas, latest gauge values, and histogram increments (count and sum of
//! the new observations). Names are aggregated across replica labels at
//! snapshot time (counters sum, gauges max, histogram counts/sums add), so
//! a window is a pure function of registry contents at its two boundary
//! snapshots: merge-order independent and byte-identical across sweep
//! worker counts, like everything else in this crate.
//!
//! The closed windows drain two ways: [`Timeseries::series`] yields
//! `ts.<name>.<suffix>` series in the lab's `(t_secs, value)` cell-series
//! shape (landing verbatim in `BENCH_*.json`), and
//! [`Timeseries::prometheus_text`] renders timestamped exposition lines for
//! offline ingestion.

use crate::metrics::Registry;
use std::collections::BTreeMap;

/// Point-in-time aggregate of a registry, names collapsed across replicas.
#[derive(Debug, Clone, Default)]
struct Snapshot {
    /// name → counter sum across replicas.
    counters: BTreeMap<String, u64>,
    /// name → gauge max across replicas.
    gauges: BTreeMap<String, f64>,
    /// name → (observation count, observation sum) across replicas.
    hists: BTreeMap<String, (u64, u128)>,
}

impl Snapshot {
    fn of(reg: &Registry) -> Self {
        let mut s = Snapshot::default();
        for (k, v) in reg.counters() {
            *s.counters.entry(k.name.clone()).or_insert(0) += v;
        }
        for (k, v) in reg.gauges() {
            let e = s.gauges.entry(k.name.clone()).or_insert(f64::MIN);
            if v > *e {
                *e = v;
            }
        }
        for (k, h) in reg.histograms() {
            let e = s.hists.entry(k.name.clone()).or_insert((0, 0));
            e.0 += h.count();
            e.1 += h.sum();
        }
        s
    }
}

/// One closed window: what changed between two boundary snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSample {
    /// name → counter increment within the window. Dense: every counter
    /// known at window close appears, zero increments included, so drained
    /// series have a point per window from a metric's first appearance.
    pub counters: BTreeMap<String, u64>,
    /// name → gauge value at window close.
    pub gauges: BTreeMap<String, f64>,
    /// name → (new observations, their sum) within the window.
    pub hists: BTreeMap<String, (u64, u128)>,
}

impl WindowSample {
    fn delta(cur: &Snapshot, basis: &Snapshot) -> Self {
        let mut w = WindowSample::default();
        for (name, &v) in &cur.counters {
            let before = basis.counters.get(name).copied().unwrap_or(0);
            w.counters.insert(name.clone(), v.saturating_sub(before));
        }
        w.gauges = cur.gauges.clone();
        for (name, &(c, s)) in &cur.hists {
            let (bc, bs) = basis.hists.get(name).copied().unwrap_or((0, 0));
            w.hists
                .insert(name.clone(), (c.saturating_sub(bc), s.saturating_sub(bs)));
        }
        w
    }

    /// A quiet window closed with no registry change since `basis`: zero
    /// increments, gauges carried forward.
    fn quiet(basis: &Snapshot) -> Self {
        let mut w = WindowSample::default();
        for name in basis.counters.keys() {
            w.counters.insert(name.clone(), 0);
        }
        w.gauges = basis.gauges.clone();
        for name in basis.hists.keys() {
            w.hists.insert(name.clone(), (0, 0));
        }
        w
    }

    /// Fold another shard's view of the same window in: increments add,
    /// gauges take the max — commutative, so shards merge in any order.
    fn merge(&mut self, other: &WindowSample) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            let e = self.gauges.entry(name.clone()).or_insert(f64::MIN);
            if v > *e {
                *e = v;
            }
        }
        for (name, &(c, s)) in &other.hists {
            let e = self.hists.entry(name.clone()).or_insert((0, 0));
            e.0 += c;
            e.1 += s;
        }
    }
}

/// The closed windows of one run (or one merged set of runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeseries {
    window_us: u64,
    /// window index → sample; window `w` covers `[w·window_us, (w+1)·window_us)`.
    windows: BTreeMap<u64, WindowSample>,
}

impl Timeseries {
    /// An empty series with the given window length (µs).
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "window length must be positive");
        Timeseries {
            window_us,
            windows: BTreeMap::new(),
        }
    }

    /// Window length, microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Number of closed windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window has closed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The closed windows, ascending by index.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &WindowSample)> + '_ {
        self.windows.iter().map(|(&w, s)| (w, s))
    }

    /// Fold another timeseries in, window-wise. Window lengths must match.
    pub fn merge(&mut self, other: &Timeseries) {
        if other.windows.is_empty() {
            return;
        }
        assert_eq!(
            self.window_us, other.window_us,
            "cannot merge timeseries with different window lengths"
        );
        for (&w, s) in &other.windows {
            self.windows.entry(w).or_default().merge(s);
        }
    }

    /// Drain into named `(t_secs, value)` series — the lab's cell-series
    /// shape. Timestamps are window *end* instants in seconds. Names follow
    /// the `ts.<metric>.<suffix>` convention:
    ///
    /// - `ts.<counter>.delta` — increment within the window
    /// - `ts.<gauge>.value`   — value at window close
    /// - `ts.<hist>.count`    — observations within the window
    /// - `ts.<hist>.mean`     — their mean, native units (0 when none)
    pub fn series(&self) -> BTreeMap<String, Vec<(f64, f64)>> {
        let mut out: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for (&w, sample) in &self.windows {
            let t = ((w + 1) * self.window_us) as f64 / 1e6;
            for (name, &v) in &sample.counters {
                out.entry(format!("ts.{name}.delta")).or_default().push((t, v as f64));
            }
            for (name, &v) in &sample.gauges {
                out.entry(format!("ts.{name}.value")).or_default().push((t, v));
            }
            for (name, &(c, s)) in &sample.hists {
                out.entry(format!("ts.{name}.count")).or_default().push((t, c as f64));
                let mean = if c == 0 { 0.0 } else { s as f64 / c as f64 };
                out.entry(format!("ts.{name}.mean")).or_default().push((t, mean));
            }
        }
        out
    }

    /// Render as timestamped Prometheus exposition lines (one gauge family
    /// per series, one sample per window, millisecond timestamps) for
    /// offline ingestion of a finished run.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, points) in self.series() {
            let family = name.replace('.', "_");
            out.push_str(&format!(
                "# HELP {family} windowed series {name} ({} ms windows)\n# TYPE {family} gauge\n",
                self.window_us / 1_000
            ));
            for (t, v) in points {
                out.push_str(&format!("{family} {v} {}\n", (t * 1e3) as u64));
            }
        }
        out
    }
}

/// Closes [`WindowSample`]s from registry snapshots on a fixed cadence.
///
/// `tick(now_us, registry)` is cheap when no window boundary has passed (one
/// comparison); at each boundary it snapshots the registry once and closes
/// every elapsed window — the first gets the delta, the rest (a quiet run
/// skipping whole windows between events) close with zero increments.
#[derive(Debug, Clone)]
pub struct TimeseriesSampler {
    next_window: u64,
    basis: Snapshot,
    out: Timeseries,
}

impl TimeseriesSampler {
    /// A sampler with the given window length (µs), starting at t = 0 with
    /// an empty basis snapshot.
    pub fn new(window_us: u64) -> Self {
        TimeseriesSampler {
            next_window: 0,
            basis: Snapshot::default(),
            out: Timeseries::new(window_us),
        }
    }

    /// Advance to `now_us`, closing every window that fully elapsed. Called
    /// with monotone timestamps; a stale `now_us` is a no-op.
    pub fn tick(&mut self, now_us: u64, reg: &Registry) {
        let window_us = self.out.window_us;
        if now_us / window_us <= self.next_window {
            return;
        }
        let mut fresh = true;
        while (self.next_window + 1).saturating_mul(window_us) <= now_us {
            let sample = if fresh {
                fresh = false;
                let cur = Snapshot::of(reg);
                let s = WindowSample::delta(&cur, &self.basis);
                self.basis = cur;
                s
            } else {
                WindowSample::quiet(&self.basis)
            };
            self.out.windows.insert(self.next_window, sample);
            self.next_window += 1;
        }
    }

    /// The windows closed so far.
    pub fn timeseries(&self) -> &Timeseries {
        &self.out
    }

    /// Consume the sampler, yielding its closed windows.
    pub fn finish(self) -> Timeseries {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_on_cadence_with_per_window_deltas() {
        let mut reg = Registry::new();
        let mut s = TimeseriesSampler::new(1_000_000);
        reg.counter_add("q.committed", Some(0), 5);
        reg.counter_add("q.committed", Some(1), 2);
        reg.gauge_set("q.depth", None, 3.0);
        reg.observe("q.lat_us", None, 100);
        s.tick(500_000, &reg); // mid-window: nothing closes
        assert!(s.timeseries().is_empty());
        s.tick(1_000_000, &reg); // window 0 closes
        reg.counter_add("q.committed", Some(0), 10);
        reg.gauge_set("q.depth", None, 1.5);
        reg.observe("q.lat_us", None, 300);
        reg.observe("q.lat_us", None, 500);
        s.tick(2_250_000, &reg); // window 1 closes
        let ts = s.timeseries();
        assert_eq!(ts.len(), 2);
        let series = ts.series();
        assert_eq!(
            series["ts.q.committed.delta"],
            vec![(1.0, 7.0), (2.0, 10.0)],
            "replica-summed counter increments per window"
        );
        assert_eq!(series["ts.q.depth.value"], vec![(1.0, 3.0), (2.0, 1.5)]);
        assert_eq!(series["ts.q.lat_us.count"], vec![(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(series["ts.q.lat_us.mean"], vec![(1.0, 100.0), (2.0, 400.0)]);
    }

    #[test]
    fn quiet_gaps_close_zero_delta_windows() {
        let mut reg = Registry::new();
        let mut s = TimeseriesSampler::new(1_000_000);
        reg.counter_add("c.n", None, 4);
        // Time jumps straight past windows 0..=3.
        s.tick(4_200_000, &reg);
        let series = s.timeseries().series();
        assert_eq!(
            series["ts.c.n.delta"],
            vec![(1.0, 4.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)],
            "first elapsed window takes the delta, the rest are dense zeros"
        );
        // A stale / repeated timestamp is a no-op.
        s.tick(4_200_000, &reg);
        s.tick(3_000_000, &reg);
        assert_eq!(s.timeseries().len(), 4);
    }

    #[test]
    fn merge_is_order_independent_and_matches_single_recording() {
        // Three shards over the same two windows with disjoint counter work.
        let shard = |base: u64| {
            let mut reg = Registry::new();
            let mut s = TimeseriesSampler::new(1_000_000);
            reg.counter_add("w.ops", Some(base as usize), base + 1);
            reg.observe("w.us", None, 10 * (base + 1));
            s.tick(1_000_000, &reg);
            reg.counter_add("w.ops", Some(base as usize), 100);
            s.tick(2_000_000, &reg);
            s.finish()
        };
        let shards: Vec<Timeseries> = (0..3).map(shard).collect();
        let mut fwd = Timeseries::new(1_000_000);
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Timeseries::new(1_000_000);
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.prometheus_text(), rev.prometheus_text());
        assert_eq!(fwd.series()["ts.w.ops.delta"], vec![(1.0, 6.0), (2.0, 300.0)]);
    }

    #[test]
    fn prometheus_text_is_timestamped_and_typed() {
        let mut reg = Registry::new();
        let mut s = TimeseriesSampler::new(500_000);
        reg.counter_add("a.b", None, 3);
        s.tick(500_000, &reg);
        s.tick(1_000_000, &reg);
        let text = s.timeseries().prometheus_text();
        assert!(text.contains("# TYPE ts_a_b_delta gauge"));
        assert!(text.contains("ts_a_b_delta 3 500\n"));
        assert!(text.contains("ts_a_b_delta 0 1000\n"));
    }
}
