//! Critical-path attribution: *where* a committed command's end-to-end
//! latency went.
//!
//! The trace sink records one span per instrumentation point ([`Stage`]),
//! keyed by the command's `TraceId` on the client side and by the proposal's
//! view/sequence ordinal on the consensus side; the traffic queue's `reply`
//! span carries the committed view as an argument, linking the two key
//! spaces. [`attribute`] reconstructs that DAG per committed command and
//! splits its e2e latency into named phases:
//!
//! - `ingress`   — client → ingress replica hop, plus the charged
//!   ingress → proposer forwarding hop.
//! - `admission` — waiting in the leader-side admission queue.
//! - `hold`      — adversarial dissemination holds overlapping the
//!   command's consensus segment (the Fig 7 attack signal).
//! - `dissem`    — proposal dissemination, hold excluded: propose → last
//!   recorded delivery.
//! - `vote`      — vote collection / aggregation / chain rounds: last
//!   delivery → commit, holds excluded.
//! - `reply`     — commit → client reply leg.
//! - `other`     — the residual (batching gaps, retried attempts, …).
//!
//! Every phase is non-negative and the phases sum to exactly the charged
//! e2e latency, so per-phase histograms aggregated over a scenario cell
//! ([`LatencyBreakdown`]) decompose the cell's e2e distribution. Everything
//! is a pure function of the recorded events — merge-order independent and
//! byte-identical across sweep worker counts like the rest of the registry.

use crate::hist::LogLinearHistogram;
use crate::trace::{Stage, TraceEvent};
use std::collections::BTreeMap;

/// The named phases of a committed command's end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Client → ingress hop plus the ingress → proposer forwarding hop.
    Ingress,
    /// Leader-side admission queueing.
    Admission,
    /// Adversarial dissemination holds on the consensus segment.
    Hold,
    /// Proposal dissemination (holds excluded).
    Dissemination,
    /// Vote collection / aggregation / commit-chain rounds (holds excluded).
    Vote,
    /// Commit → client reply leg.
    Reply,
    /// Residual: batching gaps, dropped-and-retried attempts, rounding.
    Other,
}

impl Phase {
    /// Every phase, in commit-path order.
    pub const ALL: [Phase; 7] = [
        Phase::Ingress,
        Phase::Admission,
        Phase::Hold,
        Phase::Dissemination,
        Phase::Vote,
        Phase::Reply,
        Phase::Other,
    ];

    /// Stable lowercase identifier (metric names, table rows, JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Ingress => "ingress",
            Phase::Admission => "admission",
            Phase::Hold => "hold",
            Phase::Dissemination => "dissem",
            Phase::Vote => "vote",
            Phase::Reply => "reply",
            Phase::Other => "other",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

/// One committed command's attributed latency.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandPath {
    /// The command's trace id (global arrival index).
    pub trace_id: u64,
    /// The view / sequence ordinal that committed it (`None` when the
    /// commit was reported without a view link).
    pub view: Option<u64>,
    /// Commit instant, seconds since run start — window filters key on this.
    pub committed_s: f64,
    /// Charged end-to-end latency, microseconds (matches the traffic
    /// queue's e2e accounting: send → commit + forwarding + reply legs).
    pub e2e_us: u64,
    phase_us: [u64; 7],
}

impl CommandPath {
    /// Microseconds attributed to `phase`.
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phase_us[phase.index()]
    }
}

/// Disjoint union of hold intervals with prefix sums: `covered(a, b)` is the
/// total held time inside `[a, b)` in O(log n).
struct HoldIndex {
    /// Disjoint, sorted `(start, end)` intervals.
    spans: Vec<(u64, u64)>,
    /// `prefix[i]` = total covered length of `spans[..i]`.
    prefix: Vec<u64>,
}

impl HoldIndex {
    fn build(mut raw: Vec<(u64, u64)>) -> Self {
        raw.sort_unstable();
        let mut spans: Vec<(u64, u64)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            if e <= s {
                continue;
            }
            match spans.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => spans.push((s, e)),
            }
        }
        let mut prefix = Vec::with_capacity(spans.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &(s, e) in &spans {
            acc += e - s;
            prefix.push(acc);
        }
        HoldIndex { spans, prefix }
    }

    /// Total covered length inside `[a, b)`.
    fn covered(&self, a: u64, b: u64) -> u64 {
        if b <= a || self.spans.is_empty() {
            return 0;
        }
        // First interval ending after `a`, first interval starting at/after `b`.
        let lo = self.spans.partition_point(|&(_, e)| e <= a);
        let hi = self.spans.partition_point(|&(s, _)| s < b);
        if lo >= hi {
            return 0;
        }
        let mut total = self.prefix[hi] - self.prefix[lo];
        // Trim the partial overlap at both edges.
        let (s0, _) = self.spans[lo];
        if a > s0 {
            total -= a - s0;
        }
        let (_, e1) = self.spans[hi - 1];
        if e1 > b {
            total -= e1 - b;
        }
        total
    }
}

/// Client-side spans of one trace id, filled while scanning the sink.
#[derive(Default)]
struct ClientSide {
    emit: Option<(u64, u64)>,      // (ts, dur)
    admission: Option<(u64, u64)>, // (ts, dur)
    forward_dur: u64,
    reply: Option<(u64, u64, Option<u64>)>, // (ts, dur, view)
}

/// Consensus-side aggregates of one view/sequence ordinal.
#[derive(Default)]
struct ViewSide {
    propose_ts: Option<u64>,
    max_forward_end: u64,
}

/// Reconstruct every committed command's span DAG from the recorded trace
/// events and attribute its end-to-end latency into [`Phase`]s. Commands
/// are returned in trace-id order; commands without a `reply` span (never
/// committed, or the run was not traced) are absent.
pub fn attribute(events: &[TraceEvent]) -> Vec<CommandPath> {
    let mut clients: BTreeMap<u64, ClientSide> = BTreeMap::new();
    let mut views: BTreeMap<u64, ViewSide> = BTreeMap::new();
    let mut holds: Vec<(u64, u64)> = Vec::new();

    for e in events {
        match e.stage {
            Stage::ClientEmit => {
                clients.entry(e.tid).or_default().emit.get_or_insert((e.ts_us, e.dur_us));
            }
            Stage::Admission => {
                // A retried command is dispatched more than once; the last
                // admission span belongs to the attempt that committed.
                clients.entry(e.tid).or_default().admission = Some((e.ts_us, e.dur_us));
            }
            Stage::IngressForward => {
                clients.entry(e.tid).or_default().forward_dur = e.dur_us;
            }
            Stage::Reply => {
                let view = e
                    .args
                    .iter()
                    .find(|(k, _)| *k == "view")
                    .map(|&(_, v)| v as u64);
                clients.entry(e.tid).or_default().reply = Some((e.ts_us, e.dur_us, view));
            }
            Stage::Propose => {
                views.entry(e.tid).or_default().propose_ts.get_or_insert(e.ts_us);
            }
            Stage::Forward => {
                let v = views.entry(e.tid).or_default();
                v.max_forward_end = v.max_forward_end.max(e.ts_us + e.dur_us);
            }
            Stage::Hold => {
                holds.push((e.ts_us, e.ts_us + e.dur_us));
            }
            Stage::Vote | Stage::Aggregate | Stage::Commit | Stage::Reconfigure => {}
        }
    }
    let holds = HoldIndex::build(holds);

    let mut out = Vec::new();
    for (&trace_id, c) in &clients {
        let Some((reply_ts, reply_dur, view)) = c.reply else {
            continue;
        };
        let Some((emit_ts, emit_dur)) = c.emit else {
            continue;
        };
        let e2e_us = reply_ts.saturating_sub(emit_ts) + c.forward_dur + reply_dur;
        let mut phase_us = [0u64; 7];
        phase_us[Phase::Ingress.index()] = emit_dur + c.forward_dur;
        phase_us[Phase::Admission.index()] = c.admission.map_or(0, |(_, d)| d);
        phase_us[Phase::Reply.index()] = reply_dur;
        // The consensus segment: from the committing view's proposal to the
        // commit instant the reply span starts at.
        if let Some(vs) = view.and_then(|v| views.get(&v)) {
            if let Some(propose_ts) = vs.propose_ts {
                if propose_ts <= reply_ts {
                    let fwd_end = vs.max_forward_end.clamp(propose_ts, reply_ts);
                    let held_dissem = holds.covered(propose_ts, fwd_end);
                    let held_vote = holds.covered(fwd_end, reply_ts);
                    phase_us[Phase::Hold.index()] = held_dissem + held_vote;
                    phase_us[Phase::Dissemination.index()] =
                        (fwd_end - propose_ts).saturating_sub(held_dissem);
                    phase_us[Phase::Vote.index()] =
                        (reply_ts - fwd_end).saturating_sub(held_vote);
                }
            }
        }
        // The consensus segment never exceeds the e2e budget (the budget
        // additionally carries the client-side legs), but clamp defensively
        // so `other` is exactly the residual and the phases always sum to
        // the charged e2e.
        let mut budget = e2e_us;
        for p in &mut phase_us {
            *p = (*p).min(budget);
            budget -= *p;
        }
        phase_us[Phase::Other.index()] = budget;
        out.push(CommandPath {
            trace_id,
            view,
            committed_s: reply_ts as f64 / 1e6,
            e2e_us,
            phase_us,
        });
    }
    out
}

/// Per-phase latency histograms aggregated over a set of committed
/// commands — one scenario cell, one time window, one knee rate point.
/// Histograms are the mergeable log-linear kind, so breakdowns shard and
/// recombine in any order.
#[derive(Debug, Clone)]
pub struct LatencyBreakdown {
    e2e_us: LogLinearHistogram,
    phase_us: [LogLinearHistogram; 7],
    phase_sum_us: [u128; 7],
}

impl Default for LatencyBreakdown {
    fn default() -> Self {
        LatencyBreakdown {
            e2e_us: LogLinearHistogram::new(),
            phase_us: std::array::from_fn(|_| LogLinearHistogram::new()),
            phase_sum_us: [0; 7],
        }
    }
}

/// One rendered row of a breakdown table.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Phase identifier ([`Phase::name`]).
    pub phase: &'static str,
    /// Mean over committed commands, milliseconds.
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// This phase's share of total e2e time (`0.0 ..= 1.0`).
    pub share: f64,
}

impl LatencyBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregate an iterator of attributed commands.
    pub fn from_paths<'a>(paths: impl IntoIterator<Item = &'a CommandPath>) -> Self {
        let mut out = Self::new();
        for p in paths {
            out.record(p);
        }
        out
    }

    /// Fold one command in. Zero phases are recorded too: a phase that is
    /// usually absent (e.g. `hold` outside an attack) must drag its
    /// quantiles down, not vanish from them.
    pub fn record(&mut self, path: &CommandPath) {
        self.e2e_us.record(path.e2e_us);
        for phase in Phase::ALL {
            let us = path.phase_us(phase);
            self.phase_us[phase.index()].record(us);
            self.phase_sum_us[phase.index()] += us as u128;
        }
    }

    /// Fold another breakdown in (bucket addition, any order).
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        self.e2e_us.merge(&other.e2e_us);
        for i in 0..7 {
            self.phase_us[i].merge(&other.phase_us[i]);
            self.phase_sum_us[i] += other.phase_sum_us[i];
        }
    }

    /// Commands aggregated.
    pub fn count(&self) -> u64 {
        self.e2e_us.count()
    }

    /// The end-to-end latency histogram (µs).
    pub fn e2e(&self) -> &LogLinearHistogram {
        &self.e2e_us
    }

    /// One phase's latency histogram (µs).
    pub fn phase(&self, phase: Phase) -> &LogLinearHistogram {
        &self.phase_us[phase.index()]
    }

    /// This phase's share of total e2e time (`0.0` when empty).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.e2e_us.sum();
        if total == 0 {
            0.0
        } else {
            self.phase_sum_us[phase.index()] as f64 / total as f64
        }
    }

    /// One row per phase, in commit-path order.
    pub fn rows(&self) -> Vec<BreakdownRow> {
        Phase::ALL
            .iter()
            .map(|&phase| {
                let h = self.phase(phase);
                BreakdownRow {
                    phase: phase.name(),
                    mean_ms: h.mean() / 1e3,
                    p50_ms: h.p50() as f64 / 1e3,
                    p99_ms: h.p99() as f64 / 1e3,
                    share: self.share(phase),
                }
            })
            .collect()
    }

    /// A fixed-width table of the breakdown (callers print it; this crate
    /// never writes to stdout).
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<10} {:>10} {:>10} {:>10} {:>7}\n",
            "phase", "mean_ms", "p50_ms", "p99_ms", "share"
        );
        for r in self.rows() {
            out.push_str(&format!(
                "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>6.1}%\n",
                r.phase,
                r.mean_ms,
                r.p50_ms,
                r.p99_ms,
                r.share * 100.0
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2} ({} commands)\n",
            "e2e",
            self.e2e_us.mean() / 1e3,
            self.e2e_us.p50() as f64 / 1e3,
            self.e2e_us.p99() as f64 / 1e3,
            self.count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CLIENTS_PID;

    fn ev(stage: Stage, tid: u64, ts: u64, dur: u64, args: Vec<(&'static str, f64)>) -> TraceEvent {
        TraceEvent {
            stage,
            pid: if stage.category() == "traffic" { CLIENTS_PID } else { 0 },
            tid,
            ts_us: ts,
            dur_us: dur,
            args,
        }
    }

    /// One command through a clean commit: every phase lands exactly where
    /// the spans say, and the phases sum to the charged e2e.
    #[test]
    fn clean_commit_attributes_exactly() {
        let events = vec![
            ev(Stage::ClientEmit, 7, 1_000, 2_000, vec![]),   // send 1ms, +2ms to ingress
            ev(Stage::Admission, 7, 3_000, 5_000, vec![]),    // 5ms queueing
            ev(Stage::IngressForward, 7, 8_000, 1_500, vec![]), // 1.5ms hop
            ev(Stage::Propose, 42, 9_000, 0, vec![]),
            ev(Stage::Forward, 42, 9_000, 4_000, vec![]),     // delivered at 13ms
            ev(Stage::Forward, 42, 9_000, 6_000, vec![]),     // slowest at 15ms
            ev(Stage::Commit, 42, 9_000, 11_000, vec![]),
            ev(Stage::Reply, 7, 20_000, 2_500, vec![("view", 42.0)]),
        ];
        let paths = attribute(&events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.trace_id, 7);
        assert_eq!(p.view, Some(42));
        assert_eq!(p.e2e_us, (20_000 - 1_000) + 1_500 + 2_500);
        assert_eq!(p.phase_us(Phase::Ingress), 2_000 + 1_500);
        assert_eq!(p.phase_us(Phase::Admission), 5_000);
        assert_eq!(p.phase_us(Phase::Hold), 0);
        assert_eq!(p.phase_us(Phase::Dissemination), 6_000); // 9ms → 15ms
        assert_eq!(p.phase_us(Phase::Vote), 5_000); // 15ms → 20ms
        assert_eq!(p.phase_us(Phase::Reply), 2_500);
        let total: u64 = Phase::ALL.iter().map(|&ph| p.phase_us(ph)).sum();
        assert_eq!(total, p.e2e_us, "phases partition the e2e budget");
        // other = the dispatch → propose gap (8ms → 9ms) nothing claims.
        assert_eq!(p.phase_us(Phase::Other), 1_000);
    }

    /// A dissemination hold on the consensus segment is attributed to
    /// `hold`, and is carved out of `dissem`/`vote` rather than counted
    /// twice.
    #[test]
    fn hold_is_attributed_and_not_double_counted() {
        let events = vec![
            ev(Stage::ClientEmit, 0, 0, 1_000, vec![]),
            ev(Stage::Admission, 0, 1_000, 1_000, vec![]),
            ev(Stage::Propose, 5, 2_000, 0, vec![]),
            // The proposer held dissemination 600ms starting at propose.
            ev(Stage::Hold, 5, 2_000, 600_000, vec![]),
            // Delivery spans start at the (honest) proposal timestamp, so
            // their duration includes the hold.
            ev(Stage::Forward, 5, 2_000, 610_000, vec![]),
            ev(Stage::Reply, 0, 640_000, 1_000, vec![("view", 5.0)]),
        ];
        let p = &attribute(&events)[0];
        assert_eq!(p.phase_us(Phase::Hold), 600_000);
        assert_eq!(p.phase_us(Phase::Dissemination), 10_000);
        assert_eq!(p.phase_us(Phase::Vote), 640_000 - 612_000);
        let total: u64 = Phase::ALL.iter().map(|&ph| p.phase_us(ph)).sum();
        assert_eq!(total, p.e2e_us);
        // Under the attack the hold dominates the breakdown.
        let bd = LatencyBreakdown::from_paths([p.clone()].iter());
        assert!(bd.share(Phase::Hold) > 0.5, "hold share {}", bd.share(Phase::Hold));
    }

    /// Holds of *later* views on a chained-commit path (HotStuff three-chain:
    /// view v's batch commits only when v+2 arrives) count toward the
    /// command's hold phase because they overlap its consensus segment.
    #[test]
    fn chained_holds_overlap_the_consensus_segment() {
        let events = vec![
            ev(Stage::ClientEmit, 3, 0, 0, vec![]),
            ev(Stage::Admission, 3, 0, 0, vec![]),
            ev(Stage::Propose, 10, 10_000, 0, vec![]),
            ev(Stage::Forward, 10, 10_000, 20_000, vec![]),
            // Views 11 and 12 each held 100ms before the chain commits v10.
            ev(Stage::Hold, 11, 40_000, 100_000, vec![]),
            ev(Stage::Hold, 12, 180_000, 100_000, vec![]),
            ev(Stage::Reply, 3, 300_000, 0, vec![("view", 10.0)]),
        ];
        let p = &attribute(&events)[0];
        assert_eq!(p.phase_us(Phase::Hold), 200_000);
        assert_eq!(p.phase_us(Phase::Dissemination), 20_000);
        // vote = (300ms − 30ms) − 200ms held
        assert_eq!(p.phase_us(Phase::Vote), 70_000);
    }

    /// Overlapping hold spans are unioned, not summed: two concurrent holds
    /// cannot attribute more wall time than actually passed.
    #[test]
    fn overlapping_holds_union() {
        let idx = HoldIndex::build(vec![(10, 30), (20, 40), (100, 110)]);
        assert_eq!(idx.covered(0, 200), 30 + 10);
        assert_eq!(idx.covered(15, 35), 20);
        assert_eq!(idx.covered(35, 105), 5 + 5);
        assert_eq!(idx.covered(50, 90), 0);
        assert_eq!(idx.covered(90, 90), 0);
    }

    /// A commit reported without a view link still yields a path — the
    /// consensus time just lands in `other` instead of being split.
    #[test]
    fn viewless_reply_falls_back_to_other() {
        let events = vec![
            ev(Stage::ClientEmit, 1, 0, 1_000, vec![]),
            ev(Stage::Admission, 1, 1_000, 2_000, vec![]),
            ev(Stage::Reply, 1, 50_000, 1_000, vec![]),
        ];
        let p = &attribute(&events)[0];
        assert_eq!(p.view, None);
        assert_eq!(p.phase_us(Phase::Hold), 0);
        assert_eq!(p.phase_us(Phase::Dissemination), 0);
        assert_eq!(p.phase_us(Phase::Other), p.e2e_us - 1_000 - 2_000 - 1_000);
    }

    /// Breakdown aggregation is merge-order independent (shards from
    /// parallel workers recombine identically).
    #[test]
    fn breakdown_merge_is_order_independent() {
        let mk = |tid: u64, commit: u64| {
            let events = vec![
                ev(Stage::ClientEmit, tid, 0, 1_000, vec![]),
                ev(Stage::Admission, tid, 1_000, 500, vec![]),
                ev(Stage::Propose, tid + 100, 2_000, 0, vec![]),
                ev(Stage::Forward, tid + 100, 2_000, 3_000, vec![]),
                ev(Stage::Reply, tid, commit, 1_000, vec![("view", (tid + 100) as f64)]),
            ];
            LatencyBreakdown::from_paths(attribute(&events).iter())
        };
        let shards: Vec<LatencyBreakdown> =
            (0..5).map(|i| mk(i, 10_000 + i * 7_000)).collect();
        let mut fwd = LatencyBreakdown::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = LatencyBreakdown::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd.rows(), rev.rows());
        assert_eq!(fwd.count(), 5);
        assert_eq!(fwd.render_table(), rev.render_table());
    }
}
