//! `deployd` — launch an n-replica consensus cluster on localhost, for real.
//!
//! ```text
//! deployd --substrate hotstuff -n 4 --secs 5 --rate 200 \
//!         --prometheus metrics.prom --trace cluster_trace.json
//! ```
//!
//! Replicas are the same structs the simulator drives, here running one OS
//! thread each over full-mesh length-prefixed TCP on 127.0.0.1 with
//! wall-clock timers (see `runtime::RealCluster`). Load is the traffic
//! crate's open-loop arrival schedule; telemetry is the same handle the
//! simulation harnesses install, so `--trace` produces a Perfetto/Chrome
//! trace on a wall-clock axis directly comparable to a simulated one.
//!
//! SIGTERM / SIGINT end the run early with a clean shutdown (replicas are
//! stopped, stats collected, artifacts written) — the same path a normal
//! end-of-run takes. Either signal (and any panic) also flushes a
//! flight-recorder dump into `--flight-dir`: the recent trace ring as
//! Perfetto JSON plus the consensus auditor's verdict, so a postmortem
//! starts from evidence, not logs.

use deployd::{measure_knee, run_cluster, DeployConfig, Substrate};
use runtime::Duration;
use std::process::ExitCode;
use telemetry::Telemetry;

/// SIGTERM/SIGINT flag, set from the signal handler and polled by the run
/// loop. Installed via the raw libc `signal` symbol (std links libc on every
/// unix target; no external crate needed).
#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

struct Args {
    config: DeployConfig,
    knee_rates: Vec<f64>,
    prometheus: Option<String>,
    trace: Option<String>,
    metrics_addr: Option<String>,
}

const USAGE: &str = "usage: deployd [--substrate hotstuff|kauri] [-n N] [--secs S] \
[--rate CMDS_PER_SEC] [--clients C] [--batch B] [--seed SEED] \
[--knee R1,R2,...] [--prometheus FILE] [--trace FILE] [--metrics-addr HOST:PORT] \
[--flight-dir DIR]\n\
  --rate 0 runs the saturated workload (no open-loop queue)\n\
  --knee sweeps offered load (one short run per rate) and prints the measured curve\n\
  --metrics-addr serves live GET /metrics (Prometheus text), GET /healthz, and \
GET /audit (the consensus auditor's verdict) while the cluster runs\n\
  --flight-dir is where oracle violations, SIGTERM, and panics dump the flight \
recording (default deployd-flight; 'none' disables)";

fn parse_args() -> Result<Args, String> {
    let mut config = DeployConfig::new(Substrate::HotStuff, 4);
    config.flight_dir = Some("deployd-flight".to_string());
    let mut knee_rates = Vec::new();
    let mut prometheus = None;
    let mut trace = None;
    let mut metrics_addr = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--substrate" => {
                let v = value(&mut i, "--substrate")?;
                config.substrate = Substrate::parse(&v)
                    .ok_or_else(|| format!("unknown substrate {v:?} (hotstuff|kauri)"))?;
            }
            "-n" | "--replicas" => {
                let v = value(&mut i, "-n")?;
                config.n = v.parse().map_err(|_| format!("bad replica count {v:?}"))?;
            }
            "--secs" => {
                let v = value(&mut i, "--secs")?;
                let secs: f64 = v.parse().map_err(|_| format!("bad duration {v:?}"))?;
                config.run_for = Duration::from_micros((secs * 1e6) as u64);
            }
            "--rate" => {
                let v = value(&mut i, "--rate")?;
                config.rate = v.parse().map_err(|_| format!("bad rate {v:?}"))?;
            }
            "--clients" => {
                let v = value(&mut i, "--clients")?;
                config.clients = v.parse().map_err(|_| format!("bad client count {v:?}"))?;
            }
            "--batch" => {
                let v = value(&mut i, "--batch")?;
                config.batch_size = v.parse().map_err(|_| format!("bad batch size {v:?}"))?;
            }
            "--seed" => {
                let v = value(&mut i, "--seed")?;
                config.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--knee" => {
                let v = value(&mut i, "--knee")?;
                knee_rates = v
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad rate {r:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--prometheus" => prometheus = Some(value(&mut i, "--prometheus")?),
            "--trace" => trace = Some(value(&mut i, "--trace")?),
            "--metrics-addr" => metrics_addr = Some(value(&mut i, "--metrics-addr")?),
            "--flight-dir" => {
                let v = value(&mut i, "--flight-dir")?;
                config.flight_dir = if v == "none" { None } else { Some(v) };
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    if config.n == 0 {
        return Err("need at least one replica".to_string());
    }
    // With --trace, keep the unbounded sink the artifact is cut from; without
    // it, a bounded ring still records the recent past so a flight dump has a
    // trace to flush (the ring's eviction counter lands in the dump).
    config.telemetry = if trace.is_some() {
        Telemetry::tracing()
    } else {
        Telemetry::tracing_with_capacity(65_536)
    };
    Ok(Args {
        config,
        knee_rates,
        prometheus,
        trace,
        metrics_addr,
    })
}

fn write_artifact(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    term::install();
    args.config.audit_feed = Some(deployd::ops::AuditFeed::default());

    let cfg = &args.config;
    // A panicking run still leaves evidence: flush the flight ring (with
    // whatever the auditor last published as audit.* gauges) before the
    // default hook prints the backtrace and the process dies.
    if let Some(rec) = cfg.flight_recorder() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = rec.dump("panic", &audit::AuditReport::default());
            default_hook(info);
        }));
    }
    let ops = match &args.metrics_addr {
        Some(addr) => {
            let feed = cfg.audit_feed.clone().unwrap_or_default();
            match deployd::ops::serve(addr, cfg.telemetry.clone(), feed) {
                Ok(server) => {
                    println!(
                        "serving live /metrics, /healthz, and /audit on http://{}",
                        server.local_addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("deployd: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    println!(
        "deployd: {} × {} on 127.0.0.1, {:.1}s wall-clock, {}",
        cfg.n,
        cfg.substrate.name(),
        cfg.run_for.as_micros() as f64 / 1e6,
        if cfg.rate > 0.0 {
            format!("{:.0} cmd/s open-loop", cfg.rate)
        } else {
            "saturated workload".to_string()
        },
    );

    if !args.knee_rates.is_empty() {
        let points = match measure_knee(cfg, &args.knee_rates, &term::requested) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("deployd: knee sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("offered_rate,offered,committed,goodput,e2e_mean_ms,e2e_p50_ms,e2e_p99_ms");
        for p in &points {
            println!(
                "{:.0},{},{},{},{:.1},{:.1},{:.1}",
                p.offered_rate,
                p.offered,
                p.committed,
                p.goodput,
                p.e2e_mean_ms,
                p.e2e_p50_ms,
                p.e2e_p99_ms
            );
        }
        for p in &points {
            if p.breakdown.count() == 0 {
                continue;
            }
            println!("\n# latency anatomy at {:.0} cmd/s", p.offered_rate);
            print!("{}", p.breakdown.render_table());
        }
        if let Some(server) = ops {
            server.shutdown();
        }
        return ExitCode::SUCCESS;
    }

    let report = match run_cluster(cfg, &term::requested) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("deployd: cluster failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if term::requested() {
        println!(
            "deployd: termination signal — shut down cleanly after {:.1}s",
            report.wall_secs
        );
        if let Some(rec) = cfg.flight_recorder() {
            match rec.dump("sigterm", &report.audit) {
                Ok(path) => println!("flight recording dumped to {}", path.display()),
                Err(e) => eprintln!("deployd: flight dump failed: {e}"),
            }
        }
    }
    println!(
        "committed {} blocks / {} commands in {:.1}s ({:.0} op/s, mean consensus latency {:.1} ms)",
        report.summary.committed_blocks,
        report.summary.committed_commands,
        report.wall_secs,
        report.summary.throughput_ops,
        report.summary.mean_latency_ms,
    );
    println!(
        "per-replica commits: {:?}{}",
        report.per_replica_commits,
        if report.digests_agree() {
            ""
        } else {
            "  [DIVERGENT DIGESTS]"
        },
    );
    if let Some(tr) = &report.traffic {
        println!(
            "open-loop: offered {} committed {} goodput {} (e2e mean {:.1} ms, p99 {:.1} ms)",
            tr.offered, tr.committed, tr.goodput, tr.e2e_mean_ms, tr.e2e_p99_ms
        );
    }
    print!("{}", report.audit.render());

    // Artifacts are written before any failure exit: a run that fails its
    // oracles is exactly the one whose trace and metrics you want on disk.
    if let Some(path) = &args.prometheus {
        if let Err(e) = write_artifact(path, &cfg.telemetry.prometheus_text()) {
            eprintln!("deployd: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote Prometheus dump to {path}");
    }
    if let Some(path) = &args.trace {
        let labels: Vec<(usize, String)> = (0..cfg.n)
            .map(|id| (id, format!("{}-{id}", cfg.substrate.name())))
            .collect();
        match cfg.telemetry.chrome_trace_json(&labels) {
            Some(json) => {
                if let Err(e) = write_artifact(path, &json) {
                    eprintln!("deployd: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote wall-clock trace to {path} (open in Perfetto)");
            }
            None => eprintln!("deployd: trace sink inactive, no trace written"),
        }
    }
    if let Some(server) = ops {
        server.shutdown();
    }

    if !report.digests_agree() {
        eprintln!("deployd: replicas disagree on committed view digests");
        return ExitCode::FAILURE;
    }
    if !report.audit.ok() {
        eprintln!(
            "deployd: consensus auditor found {} violation(s); flight dump in {}",
            report.audit.violation_count(),
            cfg.flight_dir.as_deref().unwrap_or("(flight dir disabled)"),
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
