//! deployd: launch real-clock localhost clusters of the consensus substrates.
//!
//! This is the deployment counterpart of the `lab` simulation harnesses: the
//! *same* replica structs (`hotstuff::HotStuffNode`, `kauri::KauriNode`) that
//! the simulator drives are handed to [`runtime::RealCluster`], which runs
//! them over real TCP sockets on 127.0.0.1 with wall-clock timers. Nothing in
//! the protocol code changes — the node API is runtime-agnostic, and the wire
//! bound (`Serialize`/`Deserialize` on the message enum) is the only opt-in.
//!
//! Load comes from the same `traffic` crate the simulation harnesses use: an
//! open-loop arrival schedule pre-generated against the run horizon. Arrival
//! offsets that the simulator interprets as virtual microseconds are here
//! wall-clock microseconds since cluster launch — the schedule is identical,
//! only the clock underneath differs, which is what makes the simulated and
//! measured throughput–latency knees comparable like-for-like.
//!
//! Telemetry: pass `Telemetry::recording()` (counters only) or
//! `Telemetry::tracing()` (plus a Perfetto/Chrome trace with wall-clock µs
//! timestamps) in [`DeployConfig::telemetry`]; the substrates' existing
//! instrumentation does the rest — deployd adds none of its own.
//!
//! Auditing: every run is watched by an [`audit::Auditor`]. The monitor beat
//! polls the live registry (commit-digest gauge pairs, batch conservation
//! with an in-flight slack of four batches) and publishes the rolling verdict
//! as `audit.*` gauges and to the ops endpoint's `/audit` feed; after
//! shutdown the exact per-replica checkpoint sequences are replayed through
//! the oracles and the strict final [`audit::AuditReport`] lands in
//! [`RealRunReport::audit`]. Configure [`DeployConfig::flight_dir`] to get a
//! flight-recorder dump (Perfetto trace + oracle report) on the first live
//! oracle violation and on a failed final verdict.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]

pub mod ops;

use crypto::Digest;
use hotstuff::{HotStuffConfig, HotStuffNode, Pacemaker};
use kauri::{KauriBinsPolicy, KauriConfig, KauriNode, TreePolicy};
use rsm::{RunSummary, TrafficSpec};
use runtime::{Duration, RealCluster, SimTime};
use telemetry::Telemetry;
use traffic::{SharedTrafficQueue, TrafficReport};

/// Which consensus substrate to deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// Chained HotStuff (star topology).
    HotStuff,
    /// Kauri (tree overlay with pipelining).
    Kauri,
}

impl Substrate {
    /// Parse a `--substrate` flag value.
    pub fn parse(s: &str) -> Option<Substrate> {
        match s {
            "hotstuff" => Some(Substrate::HotStuff),
            "kauri" => Some(Substrate::Kauri),
            _ => None,
        }
    }

    /// The substrate's name as used in flags and metric prefixes.
    pub fn name(self) -> &'static str {
        match self {
            Substrate::HotStuff => "hotstuff",
            Substrate::Kauri => "kauri",
        }
    }
}

/// Configuration for one real-cluster run.
#[derive(Clone)]
pub struct DeployConfig {
    /// Which substrate to run.
    pub substrate: Substrate,
    /// Number of replicas.
    pub n: usize,
    /// Wall-clock run duration.
    pub run_for: Duration,
    /// Offered open-loop load in commands per second; `0.0` runs the
    /// saturated workload (leaders batch as fast as views turn).
    pub rate: f64,
    /// Number of load-generating clients behind the shared queue.
    pub clients: usize,
    /// Commands per block.
    pub batch_size: usize,
    /// Arrival-schedule seed.
    pub seed: u64,
    /// Telemetry handle installed on every replica.
    pub telemetry: Telemetry,
    /// Directory for flight-recorder dumps; `None` disables dumping.
    pub flight_dir: Option<String>,
    /// Live feed the ops endpoint serves as `GET /audit`, refreshed every
    /// monitor beat with the auditor's rolling verdict.
    pub audit_feed: Option<ops::AuditFeed>,
}

impl DeployConfig {
    /// Defaults: 5 s of 200 cmd/s from 4 clients, batches of 100.
    pub fn new(substrate: Substrate, n: usize) -> Self {
        DeployConfig {
            substrate,
            n,
            run_for: Duration::from_secs(5),
            rate: 200.0,
            clients: 4,
            batch_size: 100,
            seed: 7,
            telemetry: Telemetry::disabled(),
            flight_dir: None,
            audit_feed: None,
        }
    }

    fn auditor(&self) -> audit::Auditor {
        // Live polls race the pipeline: a command can be counted admitted
        // while its batch's commit/abandon counters are still being written
        // under a different registry lock. A few batches of slack absorbs
        // that; the post-shutdown check in `finish_audit` is strict.
        audit::Auditor::new().with_conservation_slack(self.batch_size as u64 * 4)
    }

    /// The flight recorder this config's runs dump through, if
    /// [`DeployConfig::flight_dir`] is set (also used by the binary's panic
    /// hook and SIGTERM path, so all dumps land in one directory).
    pub fn flight_recorder(&self) -> Option<audit::FlightRecorder> {
        self.flight_dir.as_ref().map(|dir| {
            audit::FlightRecorder::new(self.telemetry.clone(), dir.as_str()).with_process_labels(
                (0..self.n)
                    .map(|id| (id, format!("{}-{id}", self.substrate.name())))
                    .collect(),
            )
        })
    }

    fn traffic_queue(&self) -> Option<SharedTrafficQueue> {
        if self.rate <= 0.0 {
            return None;
        }
        let spec = TrafficSpec::poisson(self.rate)
            .with_clients(self.clients)
            .with_batching(self.batch_size, Duration::from_millis(40))
            .with_slo(Duration::from_secs(1));
        // Localhost ingress: ~1 ms from every client to the leader.
        let ingress = vec![1.0; self.clients];
        let queue =
            SharedTrafficQueue::generate(&spec, &ingress, self.seed, SimTime::ZERO + self.run_for);
        // Same discipline as the simulation harnesses: the queue records its
        // admission/dispatch counters and client spans into the run's
        // registry, so live scrapes and knee attribution see the client path.
        queue.set_telemetry(self.telemetry.clone());
        Some(queue)
    }
}

/// What a real-cluster run measured.
#[derive(Debug, Clone)]
pub struct RealRunReport {
    /// The substrate that ran.
    pub substrate: Substrate,
    /// Number of replicas.
    pub n: usize,
    /// Wall-clock seconds actually elapsed between launch and shutdown.
    pub wall_secs: f64,
    /// Throughput / latency summary measured at the best-progressed replica
    /// (same [`rsm::CommitStats`] readings the simulation harnesses report).
    pub summary: RunSummary,
    /// Per-replica `<substrate>.node.commits` telemetry counters — the
    /// agreement oracles' view of progress (all zero when telemetry is
    /// disabled).
    pub per_replica_commits: Vec<u64>,
    /// Open-loop traffic accounting, when a rate was configured.
    pub traffic: Option<TrafficReport>,
    /// HotStuff only: per-replica committed `(view, digest)` sequences, for
    /// agreement checks (empty for other substrates).
    pub view_digests: Vec<Vec<(u64, Digest)>>,
    /// The run's final oracle verdicts: the exact per-replica checkpoint
    /// sequences replayed through the consensus auditor after shutdown, plus
    /// a strict (zero-slack) batch-conservation check.
    pub audit: audit::AuditReport,
}

impl RealRunReport {
    /// True when every pair of replicas agrees on the digest of every view
    /// both have stored (the HotStuff agreement oracle; trivially true for
    /// substrates that do not expose digests here).
    pub fn digests_agree(&self) -> bool {
        use std::collections::BTreeMap;
        let maps: Vec<BTreeMap<u64, Digest>> = self
            .view_digests
            .iter()
            .map(|vd| vd.iter().copied().collect())
            .collect();
        for a in &maps {
            for b in &maps {
                for (view, digest) in a {
                    if let Some(other) = b.get(view) {
                        if other != digest {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

/// Run a cluster to completion (the configured duration), polling
/// `should_stop` about every 50 ms so a signal handler can end the run
/// early with a clean shutdown.
pub fn run_cluster(
    config: &DeployConfig,
    should_stop: &dyn Fn() -> bool,
) -> std::io::Result<RealRunReport> {
    match config.substrate {
        Substrate::HotStuff => run_hotstuff_cluster(config, should_stop),
        Substrate::Kauri => run_kauri_cluster(config, should_stop),
    }
}

/// Sleep out the run in ~50 ms slices, returning early if asked to stop.
///
/// Each slice is also the cluster's *monitor beat*: the time-series sampler
/// is ticked with wall-clock microseconds since launch (the real-clock
/// counterpart of the simulator's virtual-second tick), the live health
/// gauges the ops endpoint derives `/healthz` from are refreshed —
/// admission-queue depth vs bound, and how long the substrate's commit
/// counters have been stale — and the consensus auditor polls the registry's
/// commit-digest checkpoint gauges, publishing its rolling verdict as
/// `audit.*` gauges and to the `/audit` feed. The first live oracle
/// violation triggers one flight-recorder dump mid-run, so the evidence
/// survives even if the process never reaches a clean shutdown.
fn wait_out(
    config: &DeployConfig,
    should_stop: &dyn Fn() -> bool,
    queue: Option<&SharedTrafficQueue>,
    commits_metric: &str,
    auditor: &mut audit::Auditor,
    recorder: Option<&audit::FlightRecorder>,
) {
    let telemetry = &config.telemetry;
    let started = std::time::Instant::now();
    let deadline = started + std::time::Duration::from_micros(config.run_for.as_micros());
    let mut last_commits = 0u64;
    let mut last_progress = started;
    let mut dumped_live_violation = false;
    while std::time::Instant::now() < deadline && !should_stop() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let now = std::time::Instant::now();
        telemetry.tick_timeseries(started.elapsed().as_micros() as u64);
        if let Some(q) = queue {
            telemetry.gauge_set("deployd.queue.depth", None, q.depth() as f64);
            telemetry.gauge_set("deployd.queue.capacity", None, q.capacity() as f64);
        }
        if telemetry.is_enabled() {
            let mut commits = 0u64;
            telemetry.with_registry(|reg| {
                commits = reg
                    .counters()
                    .filter(|(k, _)| k.name == commits_metric)
                    .map(|(_, v)| v)
                    .sum();
            });
            if commits > last_commits {
                last_commits = commits;
                last_progress = now;
            }
            telemetry.gauge_set(
                "deployd.health.commit_stale_ms",
                None,
                now.duration_since(last_progress).as_millis() as f64,
            );
            telemetry.gauge_set("deployd.uptime_secs", None, started.elapsed().as_secs_f64());

            auditor.poll(&telemetry.registry_snapshot());
            let live = auditor.report();
            live.publish(telemetry);
            if let Some(feed) = &config.audit_feed {
                feed.publish(live.to_json());
            }
            if !live.ok() && !dumped_live_violation {
                dumped_live_violation = true;
                if let Some(rec) = recorder {
                    let _ = rec.dump("live-oracle-violation", &live);
                }
            }
        }
    }
}

/// Replay nothing further: seal the auditor over the final registry (strict
/// conservation), record whether the exact digest sequences agreed, publish
/// the verdict everywhere it is served from, and dump the flight ring if the
/// run failed its oracles.
fn finish_audit(
    config: &DeployConfig,
    report: &mut RealRunReport,
    auditor: audit::Auditor,
    recorder: Option<&audit::FlightRecorder>,
) {
    let agree = report.digests_agree();
    config.telemetry.gauge_set(
        "deployd.health.digests_agree",
        None,
        if agree { 1.0 } else { 0.0 },
    );
    let verdict = auditor.finish(&config.telemetry.registry_snapshot());
    verdict.publish(&config.telemetry);
    if let Some(feed) = &config.audit_feed {
        feed.publish(verdict.to_json());
    }
    if !verdict.ok() {
        if let Some(rec) = recorder {
            let _ = rec.dump("oracle-violation", &verdict);
        }
    }
    report.audit = verdict;
}

fn commit_counters(telemetry: &Telemetry, prefix: &str, n: usize) -> Vec<u64> {
    let name = format!("{prefix}.node.commits");
    let snapshot = telemetry.registry_snapshot();
    (0..n).map(|id| snapshot.counter(&name, Some(id))).collect()
}

fn run_hotstuff_cluster(
    config: &DeployConfig,
    should_stop: &dyn Fn() -> bool,
) -> std::io::Result<RealRunReport> {
    let queue = config.traffic_queue();
    let mut hs = HotStuffConfig::new(config.n, Pacemaker::Fixed { leader: 0 });
    hs.batch_size = config.batch_size;
    hs.run_for = config.run_for;
    hs.traffic = queue.clone();
    hs.telemetry = config.telemetry.clone();

    let nodes: Vec<HotStuffNode> = (0..config.n)
        .map(|id| {
            HotStuffNode::new(id, hs.system, hs.pacemaker, hs.batch_size)
                .with_traffic(hs.traffic.clone())
                .with_telemetry(hs.telemetry.clone())
        })
        .collect();

    // One-second telemetry windows, on the wall clock (the simulator uses the
    // same cadence on virtual time, so the series line up side by side).
    config.telemetry.install_timeseries(1_000_000);
    let mut auditor = config.auditor();
    let recorder = config.flight_recorder();
    let started = std::time::Instant::now();
    let cluster = RealCluster::launch(nodes)?;
    wait_out(
        config,
        should_stop,
        queue.as_ref(),
        "hotstuff.node.commits",
        &mut auditor,
        recorder.as_ref(),
    );
    let mut nodes = cluster.shutdown();
    let wall_secs = started.elapsed().as_secs_f64();
    config
        .telemetry
        .tick_timeseries(started.elapsed().as_micros() as u64);

    let view_digests: Vec<Vec<(u64, Digest)>> = nodes.iter().map(|nd| nd.view_digests()).collect();
    // Exact checkpoint replay: the gauge pairs the live poll sampled only
    // show each replica's latest commit; the stored sequences cover every
    // view, so post-shutdown the prefix-agreement oracle sees the full run.
    for (replica, digests) in view_digests.iter().enumerate() {
        for (view, digest) in digests {
            auditor.record_checkpoint(
                "hotstuff",
                replica,
                *view,
                telemetry::fingerprint48(&digest.0),
            );
        }
    }
    let observer = (0..config.n)
        .max_by_key(|&i| nodes[i].stats.blocks())
        .unwrap_or(0);
    let summary = nodes[observer].stats.summary((wall_secs.max(1.0)) as u64);
    let mut report = RealRunReport {
        substrate: Substrate::HotStuff,
        n: config.n,
        wall_secs,
        summary,
        per_replica_commits: commit_counters(&config.telemetry, "hotstuff", config.n),
        traffic: queue.map(|q| q.report(wall_secs.max(1.0) as u64)),
        view_digests,
        audit: audit::AuditReport::default(),
    };
    finish_audit(config, &mut report, auditor, recorder.as_ref());
    Ok(report)
}

fn run_kauri_cluster(
    config: &DeployConfig,
    should_stop: &dyn Fn() -> bool,
) -> std::io::Result<RealRunReport> {
    let queue = config.traffic_queue();
    let mut ka = KauriConfig::new(config.n);
    ka.batch_size = config.batch_size;
    ka.run_for = config.run_for;
    ka.traffic = queue.clone();
    ka.telemetry = config.telemetry.clone();

    // Identically-seeded policies so every replica derives the same trees —
    // the same discipline the simulation harness applies.
    let branch = ka.branch;
    let seed = config.seed;
    let n = config.n;
    let policy_factory =
        move |_: usize| Box::new(KauriBinsPolicy::new(n, branch, seed)) as Box<dyn TreePolicy>;
    let initial_tree = policy_factory(usize::MAX).next_tree(n, branch);
    let nodes: Vec<KauriNode> = (0..n)
        .map(|id| {
            let mut policy = policy_factory(id);
            let tree = policy.next_tree(n, branch);
            debug_assert_eq!(tree.root, initial_tree.root);
            KauriNode::new(
                id,
                ka.system,
                tree,
                policy,
                ka.batch_size,
                ka.pipeline,
                ka.branch,
                ka.reconfig_delay,
            )
            .with_traffic(ka.traffic.clone())
            .with_telemetry(ka.telemetry.clone())
        })
        .collect();

    config.telemetry.install_timeseries(1_000_000);
    let mut auditor = config.auditor();
    let recorder = config.flight_recorder();
    let started = std::time::Instant::now();
    let cluster = RealCluster::launch(nodes)?;
    wait_out(
        config,
        should_stop,
        queue.as_ref(),
        "kauri.node.commits",
        &mut auditor,
        recorder.as_ref(),
    );
    let mut nodes = cluster.shutdown();
    let wall_secs = started.elapsed().as_secs_f64();
    config
        .telemetry
        .tick_timeseries(started.elapsed().as_micros() as u64);

    // Exact checkpoint replay: every adoption each replica chained, plus
    // role-change provenance from the best-informed replica's config log.
    for (id, node) in nodes.iter().enumerate() {
        for &(epoch, chain) in node.config_checkpoints() {
            auditor.record_checkpoint("kauri.config", id, epoch, chain);
        }
    }
    let informed = (0..n)
        .max_by_key(|&id| {
            let log = nodes[id].config_log();
            (log.len(), log.epoch(), std::cmp::Reverse(id))
        })
        .unwrap_or(0);
    let commands: Vec<_> = nodes[informed]
        .config_log()
        .commands_from(0)
        .map(|(seq, cmd)| (seq, cmd.clone()))
        .collect();
    auditor.check_provenance(&commands);

    let observer = (0..n).max_by_key(|&i| nodes[i].stats.blocks()).unwrap_or(0);
    let summary = nodes[observer].stats.summary(wall_secs.max(1.0) as u64);
    let mut report = RealRunReport {
        substrate: Substrate::Kauri,
        n,
        wall_secs,
        summary,
        per_replica_commits: commit_counters(&config.telemetry, "kauri", n),
        traffic: queue.map(|q| q.report(wall_secs.max(1.0) as u64)),
        view_digests: Vec::new(),
        audit: audit::AuditReport::default(),
    };
    finish_audit(config, &mut report, auditor, recorder.as_ref());
    Ok(report)
}

/// One point of a measured throughput–latency curve.
#[derive(Debug, Clone)]
pub struct KneePoint {
    /// Offered load (cmd/s).
    pub offered_rate: f64,
    /// Commands the schedule offered.
    pub offered: u64,
    /// Commands whose batch committed.
    pub committed: u64,
    /// Committed commands that met the SLO.
    pub goodput: u64,
    /// Mean end-to-end latency (ms).
    pub e2e_mean_ms: f64,
    /// Median end-to-end latency (ms).
    pub e2e_p50_ms: f64,
    /// p99 end-to-end latency (ms).
    pub e2e_p99_ms: f64,
    /// Critical-path anatomy of this rate point's committed commands,
    /// attributed from the per-rate trace.
    pub breakdown: telemetry::LatencyBreakdown,
}

/// Sweep offered load and measure the throughput–latency knee on the real
/// cluster: one short run per rate, the same shape as the simulated
/// `sweep_load_latency` sweep. Stops early (returning the points measured so
/// far) if `should_stop` reports true between runs.
///
/// Each rate runs under its own `Telemetry::tracing()` handle so the commit
/// critical path can be attributed per point, and every measured point is
/// recorded into `base.telemetry`'s registry as `deployd.knee.*` gauges
/// (replica label = rate-point index) — a live `--metrics-addr` scrape sees
/// the curve grow as the sweep walks up the rate axis.
pub fn measure_knee(
    base: &DeployConfig,
    rates: &[f64],
    should_stop: &dyn Fn() -> bool,
) -> std::io::Result<Vec<KneePoint>> {
    let mut points = Vec::with_capacity(rates.len());
    for (idx, &rate) in rates.iter().enumerate() {
        if should_stop() {
            break;
        }
        let mut cfg = base.clone();
        cfg.rate = rate;
        cfg.telemetry = Telemetry::tracing();
        let report = run_cluster(&cfg, should_stop)?;
        let tr = report
            .traffic
            .expect("knee sweep runs with a traffic queue");
        let breakdown = telemetry::LatencyBreakdown::from_paths(&cfg.telemetry.command_paths());
        let point = KneePoint {
            offered_rate: rate,
            offered: tr.offered,
            committed: tr.committed,
            goodput: tr.goodput,
            e2e_mean_ms: tr.e2e_mean_ms,
            e2e_p50_ms: tr.e2e_p50_ms,
            e2e_p99_ms: tr.e2e_p99_ms,
            breakdown,
        };
        record_knee_point(&base.telemetry, idx, &point);
        points.push(point);
    }
    Ok(points)
}

/// Publish one measured knee point into the long-lived registry the ops
/// endpoint serves, labelled by rate-point index.
fn record_knee_point(telemetry: &Telemetry, idx: usize, p: &KneePoint) {
    let r = Some(idx);
    telemetry.gauge_set("deployd.knee.offered_rate", r, p.offered_rate);
    telemetry.gauge_set("deployd.knee.offered", r, p.offered as f64);
    telemetry.gauge_set("deployd.knee.committed", r, p.committed as f64);
    telemetry.gauge_set("deployd.knee.goodput", r, p.goodput as f64);
    telemetry.gauge_set("deployd.knee.e2e_p50_ms", r, p.e2e_p50_ms);
    telemetry.gauge_set("deployd.knee.e2e_p99_ms", r, p.e2e_p99_ms);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substrate_parses_known_names_only() {
        assert_eq!(Substrate::parse("hotstuff"), Some(Substrate::HotStuff));
        assert_eq!(Substrate::parse("kauri"), Some(Substrate::Kauri));
        assert_eq!(Substrate::parse("pbft"), None);
        assert_eq!(Substrate::HotStuff.name(), "hotstuff");
    }

    #[test]
    fn traffic_queue_only_built_for_positive_rates() {
        let mut cfg = DeployConfig::new(Substrate::HotStuff, 4);
        cfg.rate = 0.0;
        assert!(cfg.traffic_queue().is_none());
        cfg.rate = 100.0;
        assert!(cfg.traffic_queue().is_some());
    }

    #[test]
    fn digests_agree_detects_divergence() {
        let d = |b: u8| Digest([b; 32]);
        let mut r = RealRunReport {
            substrate: Substrate::HotStuff,
            n: 2,
            wall_secs: 1.0,
            summary: rsm::CommitStats::default().summary(1),
            per_replica_commits: vec![1, 1],
            traffic: None,
            view_digests: vec![vec![(1, d(1)), (2, d(2))], vec![(1, d(1))]],
            audit: audit::AuditReport::default(),
        };
        assert!(r.digests_agree(), "prefix agreement must pass");
        r.view_digests[1] = vec![(1, d(9))];
        assert!(!r.digests_agree(), "divergent view 1 must fail");
    }
}
