//! ops: a std-only live scrape endpoint for running clusters.
//!
//! `deployd --metrics-addr HOST:PORT` binds a tiny single-threaded HTTP
//! listener next to the cluster. It serves exactly three paths:
//!
//! * `GET /metrics` — the live registry in Prometheus text exposition
//!   format, followed by the windowed time-series (timestamped samples, one
//!   line per closed window). Scrape it mid-run; nothing is buffered until
//!   shutdown.
//! * `GET /healthz` — derived health: commit staleness (how long since the
//!   substrates' commit counters last moved), admission-queue depth vs its
//!   bound, the committed/admitted ratio, the online auditor's verdict
//!   (`audit.ok`), and the last digest-divergence check. `200` when
//!   healthy, `503` when degraded, body explains which check failed either
//!   way.
//! * `GET /audit` — the online consensus auditor's latest report as JSON:
//!   per-oracle checked/violation counts and the human-readable role-change
//!   provenance verdicts. Before the monitor's first beat it serves an
//!   empty (clean, zero-polls) report.
//!
//! No HTTP library: the request grammar accepted is the one `curl` and
//! Prometheus actually emit (`GET <path> HTTP/1.x`, headers ignored), and
//! every response closes the connection. The listener thread wakes via a
//! self-connect on shutdown, so no poll/timeout machinery is needed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use telemetry::{Registry, Telemetry};

/// Shared slot the cluster's monitor beat publishes its latest audit-report
/// JSON into; `GET /audit` serves it. Clone freely — clones share the slot.
#[derive(Clone, Default)]
pub struct AuditFeed {
    latest: Arc<Mutex<Option<String>>>,
}

impl AuditFeed {
    /// Replace the served report.
    pub fn publish(&self, report_json: String) {
        *self.latest.lock().unwrap() = Some(report_json);
    }

    /// The most recently published report, if any.
    pub fn latest(&self) -> Option<String> {
        self.latest.lock().unwrap().clone()
    }
}

/// Commit counters stale longer than this mark the cluster unhealthy.
const STALL_BOUND_MS: f64 = 5_000.0;
/// Queue occupancy above this fraction of the bound marks back-pressure.
const QUEUE_FULL_FRACTION: f64 = 0.95;
/// Committed/admitted below this ratio marks the run as shedding load…
const MIN_COMMIT_RATIO: f64 = 0.5;
/// …but only once this many commands were admitted (startup grace).
const RATIO_GRACE_ADMITTED: u64 = 100;

/// Handle to the background listener; shut down via [`OpsServer::shutdown`].
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl OpsServer {
    /// The bound address (useful when the port was `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the listener thread, and join it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

/// Bind `addr` and serve `/metrics`, `/healthz` and `/audit` from the given
/// telemetry handle until [`OpsServer::shutdown`]. `audit` is the slot the
/// monitor beat publishes audit reports into.
pub fn serve(addr: &str, telemetry: Telemetry, audit: AuditFeed) -> std::io::Result<OpsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("deployd-ops".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = conn {
                    let _ = serve_one(&mut stream, &telemetry, &audit);
                }
            }
        })?;
    Ok(OpsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Read one request head, answer it, close.
fn serve_one(
    stream: &mut TcpStream,
    telemetry: &Telemetry,
    audit: &AuditFeed,
) -> std::io::Result<()> {
    let path = read_request_path(stream)?;
    let mut content_type = "text/plain; version=0.0.4; charset=utf-8";
    let (status, body) = match path.as_str() {
        "/metrics" => (200, metrics_body(telemetry)),
        "/healthz" => {
            let (healthy, report) = health_report(&telemetry.registry_snapshot());
            (if healthy { 200 } else { 503 }, report)
        }
        "/audit" => {
            content_type = "application/json";
            // Before the first beat: an empty report, honestly zero-polled.
            let body = audit
                .latest()
                .unwrap_or_else(|| ::audit::AuditReport::default().to_json());
            (200, body)
        }
        _ => (
            404,
            "not found; try /metrics, /healthz or /audit\n".to_string(),
        ),
    };
    let reason = match status {
        200 => "OK",
        503 => "Service Unavailable",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parse the request line's path; headers are read past and discarded.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(path.to_string()),
        _ => Ok(String::new()),
    }
}

/// The `/metrics` payload: live registry, then the closed time-series
/// windows (timestamped lines), both in Prometheus text format.
fn metrics_body(telemetry: &Telemetry) -> String {
    let mut body = telemetry.prometheus_text();
    if let Some(ts) = telemetry.timeseries_snapshot() {
        body.push_str(&ts.prometheus_text());
    }
    if body.is_empty() {
        body.push_str("# telemetry disabled\n");
    }
    body
}

/// Derive `(healthy, report)` from a registry snapshot.
///
/// The inputs are the live gauges `wait_out`'s monitor beat maintains
/// (`deployd.health.commit_stale_ms`, `deployd.queue.depth`/`.capacity`,
/// the auditor's published `audit.ok`, the run's last
/// `deployd.health.digests_agree` divergence check) plus the traffic
/// counters the queue keeps; absent gauges read as healthy so the endpoint
/// is truthful during startup and for rate-less runs.
pub fn health_report(reg: &Registry) -> (bool, String) {
    let stale_ms = reg
        .gauge("deployd.health.commit_stale_ms", None)
        .unwrap_or(0.0);
    let depth = reg.gauge("deployd.queue.depth", None).unwrap_or(0.0);
    let capacity = reg.gauge("deployd.queue.capacity", None).unwrap_or(0.0);
    let admitted = reg.counter("traffic.queue.admitted", None);
    let committed = reg
        .histogram("traffic.client.e2e_us", None)
        .map(|h| h.count())
        .unwrap_or(0);
    let audit_ok = reg.gauge("audit.ok", None);
    let digests = reg.gauge("deployd.health.digests_agree", None);

    let commits_fresh = stale_ms < STALL_BOUND_MS;
    let queue_ok = capacity <= 0.0 || depth < QUEUE_FULL_FRACTION * capacity;
    let ratio = if admitted == 0 {
        1.0
    } else {
        committed as f64 / admitted as f64
    };
    let ratio_ok = admitted < RATIO_GRACE_ADMITTED || ratio >= MIN_COMMIT_RATIO;
    // An oracle violation is a safety failure, not a performance wobble:
    // any published verdict other than 1 marks the cluster unhealthy.
    let oracles_ok = audit_ok.is_none_or(|v| v >= 1.0);
    let digests_ok = digests.is_none_or(|v| v >= 1.0);

    let healthy = commits_fresh && queue_ok && ratio_ok && oracles_ok && digests_ok;
    let mark = |ok: bool| if ok { "ok" } else { "FAIL" };
    let gauge_word = |g: Option<f64>| match g {
        None => "unchecked",
        Some(v) if v >= 1.0 => "1",
        Some(_) => "0",
    };
    let report = format!(
        "status {}\n\
         commit_stale_ms {stale_ms:.0} {}\n\
         queue_depth {depth:.0}/{capacity:.0} {}\n\
         committed_ratio {ratio:.3} ({committed}/{admitted}) {}\n\
         audit_ok {} {}\n\
         digests_agree {} {}\n",
        if healthy { "ok" } else { "degraded" },
        mark(commits_fresh),
        mark(queue_ok),
        mark(ratio_ok),
        gauge_word(audit_ok),
        mark(oracles_ok),
        gauge_word(digests),
        mark(digests_ok),
    );
    (healthy, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let req = format!("GET {path} HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
        stream.write_all(req.as_bytes()).expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn metrics_endpoint_serves_registry_and_timeseries() {
        let telemetry = Telemetry::recording();
        telemetry.install_timeseries(1_000_000);
        telemetry.counter_add("hotstuff.node.commits", Some(0), 42);
        telemetry.tick_timeseries(1_500_000);
        let server = serve("127.0.0.1:0", telemetry.clone(), AuditFeed::default()).expect("bind");
        let (status, body) = get(server.local_addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("hotstuff_node_commits_total{replica=\"0\"} 42"),
            "live counter missing:\n{body}"
        );
        assert!(
            body.contains("ts_hotstuff_node_commits_delta"),
            "time-series lines missing:\n{body}"
        );

        // Scrapes see live updates, not a launch-time snapshot.
        telemetry.counter_add("hotstuff.node.commits", Some(0), 8);
        let (_, body) = get(server.local_addr(), "/metrics");
        assert!(body.contains("hotstuff_node_commits_total{replica=\"0\"} 50"));

        let (status, _) = get(server.local_addr(), "/nope");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn healthz_reflects_derived_health() {
        let telemetry = Telemetry::recording();
        let server = serve("127.0.0.1:0", telemetry.clone(), AuditFeed::default()).expect("bind");

        // Startup: no gauges yet — healthy by grace.
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 200, "startup must be healthy:\n{body}");
        assert!(body.starts_with("status ok"));
        assert!(body.contains("audit_ok unchecked ok"), "{body}");

        // Stalled commits flip it to 503.
        telemetry.gauge_set("deployd.health.commit_stale_ms", None, 60_000.0);
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("commit_stale_ms 60000 FAIL"), "{body}");
        server.shutdown();
    }

    #[test]
    fn healthz_degrades_on_oracle_violation_and_divergence() {
        let telemetry = Telemetry::recording();
        let server = serve("127.0.0.1:0", telemetry.clone(), AuditFeed::default()).expect("bind");

        telemetry.gauge_set("audit.ok", None, 0.0);
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 503, "oracle violation must 503:\n{body}");
        assert!(body.contains("audit_ok 0 FAIL"), "{body}");

        telemetry.gauge_set("audit.ok", None, 1.0);
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 200, "clean verdict restores health:\n{body}");

        telemetry.gauge_set("deployd.health.digests_agree", None, 0.0);
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 503, "digest divergence must 503:\n{body}");
        assert!(body.contains("digests_agree 0 FAIL"), "{body}");
        server.shutdown();
    }

    #[test]
    fn audit_endpoint_serves_latest_report() {
        let telemetry = Telemetry::recording();
        let feed = AuditFeed::default();
        let server = serve("127.0.0.1:0", telemetry, feed.clone()).expect("bind");

        // Before any poll: an empty default report, still valid JSON.
        let (status, body) = get(server.local_addr(), "/audit");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\":true"), "{body}");
        assert!(body.contains("\"polls\":0"), "{body}");

        let report = ::audit::AuditReport::default();
        feed.publish(report.to_json());
        let (status, body) = get(server.local_addr(), "/audit");
        assert_eq!(status, 200);
        assert_eq!(body.trim_end(), report.to_json().trim_end());
        server.shutdown();
    }

    #[test]
    fn health_report_checks_queue_and_ratio() {
        let mut reg = Registry::default();
        reg.gauge_set("deployd.queue.depth", None, 99.0);
        reg.gauge_set("deployd.queue.capacity", None, 100.0);
        let (healthy, report) = health_report(&reg);
        assert!(!healthy, "a nearly-full queue is back-pressure:\n{report}");

        let mut reg = Registry::default();
        reg.counter_add("traffic.queue.admitted", None, 1_000);
        for _ in 0..100 {
            reg.observe("traffic.client.e2e_us", None, 50_000);
        }
        let (healthy, report) = health_report(&reg);
        assert!(
            !healthy,
            "committing 10% of admitted is shedding:\n{report}"
        );
        assert!(report.contains("committed_ratio 0.100"));

        let mut reg = Registry::default();
        reg.counter_add("traffic.queue.admitted", None, 1_000);
        for _ in 0..990 {
            reg.observe("traffic.client.e2e_us", None, 50_000);
        }
        let (healthy, _) = health_report(&reg);
        assert!(healthy);
    }
}
