//! Loopback cluster tests: real sockets, real clocks, in-process.
//!
//! These run actual `RealCluster` deployments on 127.0.0.1 and therefore
//! take wall-clock seconds; they are the satellite coverage for the deployd
//! runtime — agreement across replicas, commit progress under open-loop
//! load, and a sim-vs-real throughput comparison kept inside a deliberately
//! generous tolerance band (CI machines are noisy; consensus safety is not).

use deployd::{run_cluster, DeployConfig, Substrate};
use runtime::Duration;
use telemetry::Telemetry;

fn never_stop() -> bool {
    false
}

/// Satellite: 4-replica deployd cluster in-process; all replicas commit the
/// same prefix (no divergent commits), and the per-replica
/// `hotstuff.node.commits` counters all advance.
#[test]
fn loopback_hotstuff_replicas_agree_on_committed_prefix() {
    let mut cfg = DeployConfig::new(Substrate::HotStuff, 4);
    cfg.run_for = Duration::from_secs(2);
    cfg.rate = 200.0;
    cfg.telemetry = Telemetry::recording();
    let report = run_cluster(&cfg, &never_stop).expect("cluster launches");

    // Progress: every replica's commit counter advanced.
    assert_eq!(report.per_replica_commits.len(), 4);
    for (id, &commits) in report.per_replica_commits.iter().enumerate() {
        assert!(commits > 0, "replica {id} committed nothing: {report:?}");
    }
    // The counters may differ by the in-flight tail at shutdown, but never
    // wildly: everyone tracks the same chain.
    let max = *report.per_replica_commits.iter().max().unwrap();
    let min = *report.per_replica_commits.iter().min().unwrap();
    assert!(
        max - min <= 4,
        "commit counts diverged: {:?}",
        report.per_replica_commits
    );
    // Agreement: any view stored by two replicas has one digest.
    assert_eq!(report.view_digests.len(), 4);
    assert!(report.digests_agree(), "divergent commits: {report:?}");
    // The open-loop load actually committed.
    let tr = report.traffic.expect("rate > 0 builds a queue");
    assert!(tr.committed > 0, "no client load committed: {tr:?}");
}

/// Kauri's tree overlay also deploys: the root commits real load over
/// sockets with identically-seeded tree policies on every replica.
#[test]
fn loopback_kauri_commits_over_real_sockets() {
    let mut cfg = DeployConfig::new(Substrate::Kauri, 7);
    cfg.run_for = Duration::from_secs(2);
    cfg.rate = 150.0;
    cfg.telemetry = Telemetry::recording();
    let report = run_cluster(&cfg, &never_stop).expect("cluster launches");
    // Kauri counts commits at the serving root.
    let total: u64 = report.per_replica_commits.iter().sum();
    assert!(total > 0, "no commits: {report:?}");
    let tr = report.traffic.expect("rate > 0 builds a queue");
    assert!(
        tr.committed as f64 >= tr.offered as f64 * 0.5,
        "most offered load should commit on localhost: {tr:?}"
    );
}

/// A stop request mid-run shuts the cluster down cleanly and still yields a
/// consistent report — the SIGTERM path deployd's binary takes.
#[test]
fn loopback_early_stop_shuts_down_cleanly() {
    let mut cfg = DeployConfig::new(Substrate::HotStuff, 4);
    cfg.run_for = Duration::from_secs(30); // would be far too long…
    cfg.rate = 100.0;
    cfg.telemetry = Telemetry::recording();
    let started = std::time::Instant::now();
    // …but the stop predicate fires after ~1 s.
    let report = run_cluster(&cfg, &|| started.elapsed().as_secs_f64() > 1.0)
        .expect("cluster launches");
    assert!(
        report.wall_secs < 10.0,
        "stop request must end the run early, ran {:.1}s",
        report.wall_secs
    );
    assert!(report.digests_agree());
    assert!(
        report.per_replica_commits.iter().all(|&c| c > 0),
        "clean shutdown still reports commits: {:?}",
        report.per_replica_commits
    );
}

/// Satellite: the sim-vs-real comparison. The same open-loop workload is
/// offered to the simulated cluster (netsim virtual time) and the deployed
/// cluster (wall clock); below the saturation knee both must commit
/// essentially all of it, and their committed/offered ratios must sit in the
/// same generous band. This is the like-for-like anchor for the measured
/// throughput–latency knee.
#[test]
fn sim_vs_real_committed_ratio_within_tolerance() {
    let n = 4;
    let rate = 200.0;
    let secs = 2;

    // Real: localhost sockets, wall-clock timers.
    let mut cfg = DeployConfig::new(Substrate::HotStuff, n);
    cfg.run_for = Duration::from_secs(secs);
    cfg.rate = rate;
    let real = run_cluster(&cfg, &never_stop).expect("cluster launches");
    let real_tr = real.traffic.expect("queue attached");
    let real_ratio = real_tr.committed as f64 / real_tr.offered.max(1) as f64;

    // Sim: the identical workload shape against the netsim harness with a
    // small uniform network latency standing in for loopback.
    let spec = rsm::TrafficSpec::poisson(rate)
        .with_clients(4)
        .with_batching(100, netsim::Duration::from_millis(40))
        .with_slo(netsim::Duration::from_secs(1));
    let queue = traffic::SharedTrafficQueue::generate(
        &spec,
        &[1.0; 4],
        7,
        netsim::SimTime::from_secs(secs),
    );
    let mut sim_cfg = hotstuff::HotStuffConfig::new(n, hotstuff::Pacemaker::Fixed { leader: 0 });
    sim_cfg.run_for = netsim::Duration::from_secs(secs);
    sim_cfg.traffic = Some(queue.clone());
    lab::run_hotstuff(
        &sim_cfg,
        Box::new(netsim::UniformLatency::new(n, netsim::Duration::from_millis(1))),
        netsim::FaultPlan::none(),
    );
    let sim_tr = queue.report(secs);
    let sim_ratio = sim_tr.committed as f64 / sim_tr.offered.max(1) as f64;

    // Generous band: below the knee both worlds commit ≥ 70 % of offered
    // load and agree within 30 percentage points.
    assert!(
        sim_ratio >= 0.7,
        "sim should commit sub-knee load: {sim_ratio:.2} ({sim_tr:?})"
    );
    assert!(
        real_ratio >= 0.7,
        "real cluster should commit sub-knee load: {real_ratio:.2} ({real_tr:?})"
    );
    assert!(
        (sim_ratio - real_ratio).abs() <= 0.3,
        "sim {sim_ratio:.2} vs real {real_ratio:.2} drifted outside the band"
    );
}
