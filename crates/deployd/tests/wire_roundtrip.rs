//! Wire round-trip coverage for every message type that can cross a real
//! socket: each substrate's full message enum is encoded through the
//! length-prefixed frame format (`runtime::wire`) and decoded back, variant
//! by variant. A variant that fails here would silently wedge a deployed
//! cluster, so this is the canary for serde-derive or framing regressions.

use crypto::Digest;
use hotstuff::HotStuffMessage;
use kauri::{KauriMessage, Tree, TreeCommand};
use pbft::PbftMessage;
use runtime::{encode_frame, read_frame, NodeId, WireMsg};
use rsm::{Block, Command};
use std::io::Cursor;
use std::sync::Arc;

/// Encode a frame, decode it, and hand back the decoded `(from, msg)`.
fn round_trip<M: WireMsg>(from: NodeId, msg: &M) -> (NodeId, M) {
    let frame = encode_frame(from, msg).expect("encodes");
    read_frame(&mut Cursor::new(frame)).expect("decodes")
}

fn digest(b: u8) -> Digest {
    Digest([b; 32])
}

#[test]
fn hotstuff_messages_round_trip() {
    let cases = vec![
        HotStuffMessage::Proposal {
            view: 42,
            digest: digest(7),
            commands: 1000,
            timestamp_us: 123_456_789,
        },
        HotStuffMessage::Vote {
            view: 42,
            digest: digest(7),
            voter: 3,
        },
    ];
    for msg in cases {
        let (from, back) = round_trip(2, &msg);
        assert_eq!(from, 2);
        assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }
}

#[test]
fn kauri_messages_round_trip() {
    let tree = Tree::random(7, 2, 3);
    let pair = configlog::SuspicionPair {
        accuser: 1,
        accused: 4,
        round: 9,
        phase: 1,
        reciprocal: true,
    };
    let log: Vec<(u64, TreeCommand)> = vec![
        (
            0,
            TreeCommand::Config {
                epoch: 2,
                config: tree.clone(),
            },
        ),
        (
            1,
            TreeCommand::Exclude {
                epoch: 2,
                replicas: vec![4, 5],
            },
        ),
        (2, TreeCommand::Pair(pair)),
    ];
    let cases = vec![
        KauriMessage::Proposal {
            view: 5,
            digest: digest(1),
            commands: 100,
            timestamp_us: 77,
            epoch: 2,
            tree: Arc::new(tree.clone()),
            committed: Arc::new(log.clone()),
        },
        KauriMessage::Vote { view: 5, voter: 6 },
        KauriMessage::Aggregate {
            view: 5,
            voters: vec![1, 2, 3],
            missing: vec![4],
            aggregator: 1,
        },
        KauriMessage::Evidence {
            cmds: log.iter().map(|(_, c)| c.clone()).collect(),
        },
        KauriMessage::Committed {
            prefix: Arc::new(log),
        },
    ];
    for msg in cases {
        let (from, back) = round_trip(0, &msg);
        assert_eq!(from, 0);
        assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }
}

#[test]
fn kauri_shared_tree_survives_arc_transparency() {
    // The Arc is a process-local sharing optimisation; on the wire it must
    // serialize as its pointee and come back as a fresh allocation holding
    // an equal value.
    let tree = Tree::random(13, 3, 11);
    let msg = KauriMessage::Proposal {
        view: 1,
        digest: digest(2),
        commands: 1,
        timestamp_us: 1,
        epoch: 1,
        tree: Arc::new(tree.clone()),
        committed: Arc::new(Vec::new()),
    };
    let (_, back) = round_trip(3, &msg);
    match back {
        KauriMessage::Proposal { tree: t, .. } => assert_eq!(*t, tree),
        other => panic!("wrong variant back: {other:?}"),
    }
}

#[test]
fn pbft_messages_round_trip() {
    let block = Block::new(
        digest(9),
        4,
        2,
        1,
        vec![
            Command::new(0, 0, b"put city lisbon".to_vec()),
            Command::new(1, 7, vec![0, 255, 128]),
        ],
    );
    let cases = vec![
        PbftMessage::Request {
            cmd: Command::new(2, 3, b"payload".to_vec()),
        },
        PbftMessage::Propose {
            seq: 10,
            epoch: 3,
            block,
            timestamp_us: 55,
            measurements: vec![vec![1, 2], vec![]],
        },
        PbftMessage::Write {
            seq: 10,
            digest: digest(3),
            voter: 2,
        },
        PbftMessage::Accept {
            seq: 10,
            digest: digest(3),
            voter: 2,
        },
        PbftMessage::Reply {
            client_seq: 3,
            replica: 0,
        },
        PbftMessage::Probe {
            nonce: 99,
            sent_at_us: 1_000,
        },
        PbftMessage::ProbeReply {
            nonce: 99,
            sent_at_us: 1_000,
            replica: 5,
        },
        PbftMessage::SensorData {
            blobs: vec![vec![7; 3]],
        },
    ];
    for msg in cases {
        let (from, back) = round_trip(6, &msg);
        assert_eq!(from, 6);
        assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }
}

#[test]
fn frames_concatenate_cleanly_on_one_stream() {
    // A socket delivers frames back to back; the reader must consume exactly
    // one frame per call, leaving the next intact.
    let a = HotStuffMessage::Vote {
        view: 1,
        digest: digest(1),
        voter: 0,
    };
    let b = HotStuffMessage::Vote {
        view: 2,
        digest: digest(2),
        voter: 1,
    };
    let mut stream = encode_frame(0, &a).unwrap();
    stream.extend(encode_frame(1, &b).unwrap());
    let mut cursor = Cursor::new(stream);
    let (f0, m0): (NodeId, HotStuffMessage) = read_frame(&mut cursor).unwrap();
    let (f1, m1): (NodeId, HotStuffMessage) = read_frame(&mut cursor).unwrap();
    assert_eq!((f0, f1), (0, 1));
    assert_eq!(format!("{m0:?}"), format!("{a:?}"));
    assert_eq!(format!("{m1:?}"), format!("{b:?}"));
}
