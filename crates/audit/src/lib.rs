//! The online consensus auditor: safety/liveness oracles evaluated against
//! the telemetry registry while a run is in progress, plus end-of-run exact
//! checks fed by the harnesses, and a crash-dump flight recorder.
//!
//! Four oracles, each a falsifiable invariant of the reproduction:
//!
//! 1. **Prefix agreement** — any two replicas publishing a commit
//!    fingerprint for the same ordinal (HotStuff view, PBFT seq, config
//!    epoch) must publish the *same* fingerprint. Substrates emit
//!    `(ordinal, fingerprint)` checkpoint gauge pairs at every commit (set
//!    under one registry lock, so polls never see a torn pair); the auditor
//!    accumulates checkpoints across polls and across replicas, so
//!    divergence is caught within one poll interval rather than at
//!    shutdown.
//! 2. **Config adoption** — the `ConfigLog` adoption history is
//!    epoch-monotone per replica and identical across replicas (equal chain
//!    fingerprints at equal epochs).
//! 3. **Batch conservation** — every admitted command is eventually
//!    accounted: `admitted = committed + abandoned + waiting + in_flight`,
//!    balanced from `traffic.*` counters and gauges. (Retried commands
//!    re-enter the waiting queue without re-counting as admitted, so the
//!    retry flow cancels out of the identity.)
//! 4. **Role-change provenance** — every committed `ConfigCommand` links
//!    back to committed `SuspicionPair` evidence: a `Config` must raise the
//!    adopted epoch (a stale replay is a violation), an `Exclude` must name
//!    only replicas with prior committed accusations, and each rotation is
//!    rendered as a human-readable verdict naming its evidence.
//!
//! The auditor never mutates what it observes: it reads registry snapshots
//! and borrowed command logs, and publishes its own verdict under `audit.*`
//! gauges so health endpoints and BENCH exports pick it up uniformly.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]

mod flight;

pub use flight::FlightRecorder;

use configlog::{ConfigCommand, SuspicionPair};
use serde::{Number, Value};
use std::collections::BTreeMap;
use telemetry::{Registry, Telemetry};

/// One checkpoint surface: a pair of per-replica gauges carrying the latest
/// `(ordinal, fingerprint)` agreement checkpoint of a substrate.
#[derive(Debug, Clone, Copy)]
pub struct Surface {
    /// Short name used in violation messages (`hotstuff`, `pbft`,
    /// `kauri.config`).
    pub name: &'static str,
    /// Gauge holding the ordinal (view / seq / epoch), per replica.
    pub ordinal_gauge: &'static str,
    /// Gauge holding the 48-bit fingerprint at that ordinal, per replica.
    pub digest_gauge: &'static str,
    /// Whether the ordinal must be non-decreasing per replica. True for
    /// config epochs (adoption is epoch-monotone); false for commit
    /// ordinals (replicas may legitimately commit views out of order when
    /// proposals arrive reordered).
    pub monotone: bool,
}

/// The checkpoint surfaces the built-in substrates publish.
pub const SURFACES: [Surface; 3] = [
    Surface {
        name: "hotstuff",
        ordinal_gauge: "hotstuff.node.commit_seq",
        digest_gauge: "hotstuff.node.commit_digest",
        monotone: false,
    },
    Surface {
        name: "pbft",
        ordinal_gauge: "pbft.replica.commit_seq",
        digest_gauge: "pbft.replica.commit_digest",
        monotone: false,
    },
    Surface {
        name: "kauri.config",
        ordinal_gauge: "kauri.node.config_epoch",
        digest_gauge: "kauri.node.config_digest",
        monotone: true,
    },
];

/// Checkpoints retained per surface; older ordinals are pruned so a
/// long-running live auditor stays bounded. Divergence between live
/// replicas shows up at *recent* ordinals, so pruning the oldest never
/// hides an active fork.
const MAX_POINTS_PER_SURFACE: usize = 8192;

/// One oracle violation, with the offending replica/ordinal named.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The oracle that fired (`prefix_agreement`, `config_adoption`,
    /// `conservation`, `provenance`).
    pub oracle: &'static str,
    /// Human-readable description naming the culprit.
    pub detail: String,
}

#[derive(Debug, Default, Clone)]
struct SurfaceState {
    /// ordinal → (fingerprint, first replica that reported it).
    points: BTreeMap<u64, (u64, usize)>,
    /// replica → highest ordinal seen (for monotone surfaces).
    latest: BTreeMap<usize, u64>,
    checked: u64,
}

/// The online auditor. Feed it registry snapshots ([`Auditor::poll`])
/// while a run is live, exact per-replica histories at the end
/// ([`Auditor::record_checkpoint`], [`Auditor::check_provenance`]), then
/// [`Auditor::finish`] it into an [`AuditReport`].
#[derive(Debug, Default, Clone)]
pub struct Auditor {
    surfaces: BTreeMap<&'static str, SurfaceState>,
    violations: Vec<Violation>,
    verdicts: Vec<String>,
    conservation_slack: u64,
    conservation_checks: u64,
    provenance_commands: u64,
    polls: u64,
}

impl Auditor {
    /// An auditor with strict conservation (zero slack).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tolerate a transient imbalance of up to `slack` commands in *live*
    /// conservation checks. A real-clock run updates the traffic queue and
    /// the registry under different locks, so a snapshot can land between
    /// an admission's counter bump and its gauge publish; the final check
    /// in [`Auditor::finish`] is always strict.
    pub fn with_conservation_slack(mut self, slack: u64) -> Self {
        self.conservation_slack = slack;
        self
    }

    /// Record one agreement checkpoint: `replica` reports `fingerprint` at
    /// `ordinal` on `surface`. Flags a violation when a different
    /// fingerprint was already recorded for the same ordinal.
    pub fn record_checkpoint(
        &mut self,
        surface: &'static str,
        replica: usize,
        ordinal: u64,
        fingerprint: u64,
    ) {
        let monotone = SURFACES
            .iter()
            .find(|s| s.name == surface)
            .is_some_and(|s| s.monotone);
        let state = self.surfaces.entry(surface).or_default();
        state.checked += 1;
        if monotone {
            if let Some(&prev) = state.latest.get(&replica) {
                if ordinal < prev {
                    self.violations.push(Violation {
                        oracle: "config_adoption",
                        detail: format!(
                            "replica {replica} regressed from epoch {prev} to {ordinal} \
                             on {surface}: adoption must be epoch-monotone"
                        ),
                    });
                }
            }
        }
        state
            .latest
            .entry(replica)
            .and_modify(|v| *v = (*v).max(ordinal))
            .or_insert(ordinal);
        match state.points.get(&ordinal) {
            Some(&(fp, first)) if fp != fingerprint => {
                let oracle = if monotone {
                    "config_adoption"
                } else {
                    "prefix_agreement"
                };
                self.violations.push(Violation {
                    oracle,
                    detail: format!(
                        "{surface} divergence at ordinal {ordinal}: replica {replica} \
                         reports fingerprint {fingerprint:#x}, replica {first} reported \
                         {fp:#x}"
                    ),
                });
            }
            Some(_) => {}
            None => {
                state.points.insert(ordinal, (fingerprint, replica));
                while state.points.len() > MAX_POINTS_PER_SURFACE {
                    let oldest = *state.points.keys().next().expect("non-empty");
                    state.points.remove(&oldest);
                }
            }
        }
    }

    /// One live evaluation pass over a registry snapshot: harvests every
    /// surface's per-replica checkpoint gauges and balances the
    /// conservation identity (with the configured slack).
    pub fn poll(&mut self, reg: &Registry) {
        self.polls += 1;
        for surface in SURFACES {
            let mut ordinals: BTreeMap<usize, u64> = BTreeMap::new();
            let mut digests: BTreeMap<usize, u64> = BTreeMap::new();
            for (key, value) in reg.gauges() {
                let Some(replica) = key.replica else { continue };
                if key.name == surface.ordinal_gauge {
                    ordinals.insert(replica, value as u64);
                } else if key.name == surface.digest_gauge {
                    digests.insert(replica, value as u64);
                }
            }
            for (replica, ordinal) in ordinals {
                if let Some(&fp) = digests.get(&replica) {
                    self.record_checkpoint(surface.name, replica, ordinal, fp);
                }
            }
        }
        self.check_conservation(reg, self.conservation_slack);
    }

    /// Balance `admitted = committed + abandoned + waiting + in_flight`
    /// from the registry, tolerating `slack` commands of imbalance. No-op
    /// when the run carries no traffic metrics at all.
    fn check_conservation(&mut self, reg: &Registry, slack: u64) {
        let admitted = reg.counter("traffic.queue.admitted", None);
        let committed = reg.counter("traffic.client.committed", None);
        let abandoned = reg.counter("traffic.queue.abandoned", None);
        let waiting = reg.gauge("traffic.queue.waiting", None);
        let in_flight = reg.gauge("traffic.queue.in_flight", None);
        if admitted == 0 && waiting.is_none() && in_flight.is_none() {
            return; // closed-loop run: no admission queue to balance
        }
        self.conservation_checks += 1;
        let accounted =
            committed + abandoned + waiting.unwrap_or(0.0) as u64 + in_flight.unwrap_or(0.0) as u64;
        if admitted.abs_diff(accounted) > slack {
            self.violations.push(Violation {
                oracle: "conservation",
                detail: format!(
                    "batch conservation broken: admitted {admitted} != committed \
                     {committed} + abandoned {abandoned} + waiting {} + in_flight {} \
                     (= {accounted}, slack {slack})",
                    waiting.unwrap_or(0.0) as u64,
                    in_flight.unwrap_or(0.0) as u64,
                ),
            });
        }
    }

    /// The role-change provenance oracle over one replica's committed
    /// `ConfigCommand` log (identical across replicas when oracle 2 holds):
    ///
    /// - a `Config` whose epoch does not exceed every previously adopted
    ///   epoch is a **stale replay** (the substrates filter these before
    ///   they ever reach the log);
    /// - an `Exclude` naming a replica with no committed pair accusing it
    ///   at an earlier seq is an **unjustified exclusion**;
    /// - every adoption renders a verdict linking it to the suspicion
    ///   pairs committed in its window (the previous adoption exclusive to
    ///   the next adoption exclusive — evidence may trail its rotation,
    ///   because a timeout-triggered rotation commits the epoch command
    ///   first and the pairs ride the same view).
    pub fn check_provenance<C>(&mut self, commands: &[(u64, ConfigCommand<C>)]) {
        self.provenance_commands += commands.len() as u64;
        let mut adopted_epoch: u64 = 0;
        let mut adoption_seqs: Vec<(u64, u64)> = Vec::new(); // (seq, epoch)
        let mut pairs: Vec<(u64, SuspicionPair)> = Vec::new();
        for (seq, cmd) in commands {
            match cmd {
                ConfigCommand::Config { epoch, .. } => {
                    if *epoch <= adopted_epoch {
                        self.violations.push(Violation {
                            oracle: "provenance",
                            detail: format!(
                                "stale ConfigCommand replay: Config for epoch {epoch} \
                                 committed at seq {seq} after epoch {adopted_epoch} \
                                 was already adopted"
                            ),
                        });
                    } else {
                        adopted_epoch = *epoch;
                        adoption_seqs.push((*seq, *epoch));
                    }
                }
                ConfigCommand::Exclude { epoch, replicas } => {
                    for r in replicas {
                        let evidence: Vec<&SuspicionPair> = pairs
                            .iter()
                            .filter(|(s, p)| s < seq && p.accused == *r)
                            .map(|(_, p)| p)
                            .collect();
                        if evidence.is_empty() {
                            self.violations.push(Violation {
                                oracle: "provenance",
                                detail: format!(
                                    "exclusion of replica {r} in epoch {epoch} at seq \
                                     {seq} has no committed suspicion evidence naming it"
                                ),
                            });
                        } else {
                            self.verdicts.push(format!(
                                "exclusion in epoch {epoch} excised replica {r} because {}",
                                render_pairs(&evidence)
                            ));
                        }
                    }
                }
                ConfigCommand::Pair(pair) => pairs.push((*seq, *pair)),
            }
        }
        // Per-adoption verdicts: evidence window = (previous adoption seq,
        // next adoption seq), exclusive on both ends.
        for (i, &(seq, epoch)) in adoption_seqs.iter().enumerate() {
            let lo = if i == 0 { 0 } else { adoption_seqs[i - 1].0 };
            let hi = adoption_seqs
                .get(i + 1)
                .map_or(u64::MAX, |&(next_seq, _)| next_seq);
            let evidence: Vec<&SuspicionPair> = pairs
                .iter()
                .filter(|(s, _)| (i == 0 || *s > lo) && *s < hi)
                .map(|(_, p)| p)
                .collect();
            if evidence.is_empty() {
                self.verdicts.push(format!(
                    "rotation in epoch {epoch} (seq {seq}): no committed evidence in \
                     its window — timeout-triggered, or evidence still in flight"
                ));
            } else {
                self.verdicts.push(format!(
                    "rotation in epoch {epoch} (seq {seq}): justified by {}",
                    render_pairs(&evidence)
                ));
            }
        }
    }

    /// Violations recorded so far (empty means every oracle is clean).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The verdict so far, without consuming the auditor — what a live
    /// monitor publishes between polls while the run continues.
    pub fn report(&self) -> AuditReport {
        self.clone().into_report()
    }

    /// Final evaluation: one strict conservation pass over `reg` (slack 0 —
    /// a finished run has no in-flight registry updates), then assemble
    /// the report.
    pub fn finish(mut self, reg: &Registry) -> AuditReport {
        self.check_conservation(reg, 0);
        self.into_report()
    }

    /// Assemble the report without a final registry pass (for callers that
    /// already fed every snapshot they have).
    pub fn into_report(self) -> AuditReport {
        let mut oracles = Vec::new();
        let agreement_checked: u64 = self
            .surfaces
            .iter()
            .filter(|(name, _)| !is_monotone_surface(name))
            .map(|(_, s)| s.checked)
            .sum();
        let config_checked: u64 = self
            .surfaces
            .iter()
            .filter(|(name, _)| is_monotone_surface(name))
            .map(|(_, s)| s.checked)
            .sum();
        for (name, checked) in [
            ("prefix_agreement", agreement_checked),
            ("config_adoption", config_checked),
            ("conservation", self.conservation_checks),
            ("provenance", self.provenance_commands),
        ] {
            oracles.push(OracleReport {
                name: name.to_string(),
                checked,
                violations: self
                    .violations
                    .iter()
                    .filter(|v| v.oracle == name)
                    .map(|v| v.detail.clone())
                    .collect(),
            });
        }
        AuditReport {
            oracles,
            verdicts: self.verdicts,
            polls: self.polls,
        }
    }
}

fn is_monotone_surface(name: &str) -> bool {
    SURFACES
        .iter()
        .find(|s| s.name == name)
        .is_none_or(|s| s.monotone)
}

fn render_pairs(pairs: &[&SuspicionPair]) -> String {
    let rendered: Vec<String> = pairs
        .iter()
        .map(|p| {
            format!(
                "pair {}→{} at round {} (phase {}{})",
                p.accuser,
                p.accused,
                p.round,
                p.phase,
                if p.reciprocal { ", reciprocal" } else { "" }
            )
        })
        .collect();
    rendered.join(", ")
}

/// One oracle's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Oracle name.
    pub name: String,
    /// Units checked (checkpoints, balance passes, or commands walked).
    pub checked: u64,
    /// Violation details, in detection order.
    pub violations: Vec<String>,
}

/// The assembled audit verdict of one run. The `Default` report is empty
/// and reads as clean ([`AuditReport::ok`] is true): nothing checked,
/// nothing violated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// The four oracles, in fixed order.
    pub oracles: Vec<OracleReport>,
    /// Human-readable role-change provenance verdicts.
    pub verdicts: Vec<String>,
    /// Live polls taken.
    pub polls: u64,
}

impl AuditReport {
    /// True when no oracle recorded a violation.
    pub fn ok(&self) -> bool {
        self.oracles.iter().all(|o| o.violations.is_empty())
    }

    /// Total violations across all oracles.
    pub fn violation_count(&self) -> u64 {
        self.oracles.iter().map(|o| o.violations.len() as u64).sum()
    }

    /// Publish the verdict into a registry as `audit.*` gauges, so health
    /// endpoints and BENCH exports surface it uniformly: `audit.ok` (1/0),
    /// `audit.violations`, and per-oracle `audit.<oracle>.checked` /
    /// `.violations`.
    pub fn publish(&self, telemetry: &Telemetry) {
        telemetry.with_registry(|reg| self.publish_to(reg));
    }

    /// Like [`AuditReport::publish`], against a bare registry.
    pub fn publish_to(&self, reg: &mut Registry) {
        reg.gauge_set("audit.ok", None, if self.ok() { 1.0 } else { 0.0 });
        reg.gauge_set("audit.violations", None, self.violation_count() as f64);
        for o in &self.oracles {
            reg.gauge_set(&format!("audit.{}.checked", o.name), None, o.checked as f64);
            reg.gauge_set(
                &format!("audit.{}.violations", o.name),
                None,
                o.violations.len() as f64,
            );
        }
    }

    /// Deterministic JSON rendering (ordered keys, stable formatting).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("audit report serializes")
    }

    /// The report as a serde [`Value`], for embedding in larger documents
    /// (flight dumps, BENCH exports).
    pub fn to_value(&self) -> Value {
        let oracle_value = |o: &OracleReport| {
            Value::Map(vec![
                ("name".into(), Value::Str(o.name.clone())),
                ("checked".into(), Value::Num(Number::U64(o.checked))),
                (
                    "violations".into(),
                    Value::Arr(o.violations.iter().map(|v| Value::Str(v.clone())).collect()),
                ),
            ])
        };
        Value::Map(vec![
            ("ok".into(), Value::Bool(self.ok())),
            (
                "violations".into(),
                Value::Num(Number::U64(self.violation_count())),
            ),
            ("polls".into(), Value::Num(Number::U64(self.polls))),
            (
                "oracles".into(),
                Value::Arr(self.oracles.iter().map(oracle_value).collect()),
            ),
            (
                "verdicts".into(),
                Value::Arr(
                    self.verdicts
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable rendering for logs and postmortem dumps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: {} ({} violations, {} polls)\n",
            if self.ok() { "OK" } else { "FAILED" },
            self.violation_count(),
            self.polls,
        ));
        for o in &self.oracles {
            out.push_str(&format!(
                "  [{}] {} — {} checked, {} violations\n",
                if o.violations.is_empty() {
                    "ok"
                } else {
                    "FAIL"
                },
                o.name,
                o.checked,
                o.violations.len(),
            ));
            for v in &o.violations {
                out.push_str(&format!("      ! {v}\n"));
            }
        }
        for v in &self.verdicts {
            out.push_str(&format!("  verdict: {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_checkpoints_stay_clean() {
        let mut a = Auditor::new();
        for replica in 0..4 {
            for view in 0..10 {
                a.record_checkpoint("hotstuff", replica, view, 0x1000 + view);
            }
        }
        let report = a.finish(&Registry::new());
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.oracles[0].checked, 40);
    }

    #[test]
    fn diverging_fingerprint_names_both_replicas() {
        let mut a = Auditor::new();
        a.record_checkpoint("hotstuff", 0, 7, 0xaaa);
        a.record_checkpoint("hotstuff", 1, 7, 0xaaa);
        a.record_checkpoint("hotstuff", 2, 7, 0xbbb);
        let report = a.finish(&Registry::new());
        assert!(!report.ok());
        let v = &report.oracles[0].violations;
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("ordinal 7"), "{}", v[0]);
        assert!(v[0].contains("replica 2"), "{}", v[0]);
        assert!(v[0].contains("replica 0"), "{}", v[0]);
    }

    #[test]
    fn epoch_regression_is_flagged_on_monotone_surfaces() {
        let mut a = Auditor::new();
        a.record_checkpoint("kauri.config", 3, 5, 0x1);
        a.record_checkpoint("kauri.config", 3, 4, 0x2);
        let report = a.into_report();
        let config = report
            .oracles
            .iter()
            .find(|o| o.name == "config_adoption")
            .unwrap();
        assert!(config
            .violations
            .iter()
            .any(|v| v.contains("replica 3") && v.contains("epoch 5") && v.contains("4")));
        // Commit ordinals may legitimately regress (reordered proposals).
        let mut b = Auditor::new();
        b.record_checkpoint("hotstuff", 0, 10, 0x1);
        b.record_checkpoint("hotstuff", 0, 7, 0x2);
        assert!(b.into_report().ok());
    }

    #[test]
    fn poll_harvests_paired_gauges_from_the_registry() {
        let mut reg = Registry::new();
        reg.gauge_set("hotstuff.node.commit_seq", Some(0), 12.0);
        reg.gauge_set("hotstuff.node.commit_digest", Some(0), 0xabc as f64);
        reg.gauge_set("hotstuff.node.commit_seq", Some(1), 12.0);
        reg.gauge_set("hotstuff.node.commit_digest", Some(1), 0xdef as f64);
        let mut a = Auditor::new();
        a.poll(&reg);
        let report = a.into_report();
        assert!(!report.ok());
        assert!(report.oracles[0].violations[0].contains("ordinal 12"));
        assert_eq!(report.polls, 1);
    }

    #[test]
    fn conservation_balances_and_fires_on_a_leak() {
        let mut reg = Registry::new();
        reg.counter_add("traffic.queue.admitted", None, 100);
        reg.counter_add("traffic.client.committed", None, 90);
        reg.counter_add("traffic.queue.abandoned", None, 4);
        reg.gauge_set("traffic.queue.waiting", None, 4.0);
        reg.gauge_set("traffic.queue.in_flight", None, 2.0);
        let report = Auditor::new().finish(&reg);
        assert!(report.ok(), "{}", report.render());

        // Leak 3 commands: admitted but never accounted anywhere.
        let mut leaky = reg.clone();
        leaky.counter_add("traffic.queue.admitted", None, 3);
        let report = Auditor::new().finish(&leaky);
        assert!(!report.ok());
        let c = report
            .oracles
            .iter()
            .find(|o| o.name == "conservation")
            .unwrap();
        assert!(
            c.violations[0].contains("admitted 103"),
            "{}",
            c.violations[0]
        );

        // Slack forgives a transient live imbalance but the final strict
        // pass still catches it.
        let mut slacked = Auditor::new().with_conservation_slack(8);
        slacked.poll(&leaky);
        assert!(slacked.violations().is_empty(), "live pass within slack");
        assert!(!slacked.finish(&leaky).ok(), "final pass is strict");
    }

    #[test]
    fn conservation_ignores_runs_without_traffic() {
        let report = Auditor::new().finish(&Registry::new());
        assert!(report.ok());
        let c = report
            .oracles
            .iter()
            .find(|o| o.name == "conservation")
            .unwrap();
        assert_eq!(c.checked, 0);
    }

    fn pair(accuser: usize, accused: usize, round: u64) -> ConfigCommand<u32> {
        ConfigCommand::Pair(SuspicionPair {
            accuser,
            accused,
            round,
            phase: 1,
            reciprocal: false,
        })
    }

    #[test]
    fn provenance_links_rotations_to_their_evidence() {
        let commands: Vec<(u64, ConfigCommand<u32>)> = vec![
            (0, pair(1, 0, 4)),
            (
                1,
                ConfigCommand::Config {
                    epoch: 1,
                    config: 10,
                },
            ),
            (2, pair(2, 0, 4)),
            (
                3,
                ConfigCommand::Config {
                    epoch: 2,
                    config: 20,
                },
            ),
        ];
        let mut a = Auditor::new();
        a.check_provenance(&commands);
        let report = a.into_report();
        assert!(report.ok(), "{}", report.render());
        assert!(report
            .verdicts
            .iter()
            .any(|v| v.contains("epoch 1") && v.contains("pair 1→0 at round 4")));
        assert!(report
            .verdicts
            .iter()
            .any(|v| v.contains("epoch 2") && v.contains("pair 2→0 at round 4")));
    }

    #[test]
    fn stale_config_replay_is_a_violation() {
        let commands: Vec<(u64, ConfigCommand<u32>)> = vec![
            (
                0,
                ConfigCommand::Config {
                    epoch: 2,
                    config: 20,
                },
            ),
            (
                1,
                ConfigCommand::Config {
                    epoch: 1,
                    config: 10,
                },
            ),
        ];
        let mut a = Auditor::new();
        a.check_provenance(&commands);
        let report = a.into_report();
        assert!(!report.ok());
        let p = report
            .oracles
            .iter()
            .find(|o| o.name == "provenance")
            .unwrap();
        assert!(p.violations[0].contains("epoch 1"), "{}", p.violations[0]);
        assert!(p.violations[0].contains("seq 1"), "{}", p.violations[0]);
    }

    #[test]
    fn unjustified_exclusion_names_the_replica() {
        let commands: Vec<(u64, ConfigCommand<u32>)> = vec![
            (0, pair(1, 4, 9)),
            (
                1,
                ConfigCommand::Exclude {
                    epoch: 1,
                    replicas: vec![4, 5],
                },
            ),
        ];
        let mut a = Auditor::new();
        a.check_provenance(&commands);
        let report = a.into_report();
        assert!(!report.ok());
        let p = report
            .oracles
            .iter()
            .find(|o| o.name == "provenance")
            .unwrap();
        assert_eq!(p.violations.len(), 1, "replica 4 is justified, 5 is not");
        assert!(p.violations[0].contains("replica 5"), "{}", p.violations[0]);
        assert!(report
            .verdicts
            .iter()
            .any(|v| v.contains("excised replica 4") && v.contains("pair 1→4 at round 9")));
    }

    #[test]
    fn report_json_is_deterministic_and_publishes_gauges() {
        let mut a = Auditor::new();
        a.record_checkpoint("hotstuff", 0, 1, 0x1);
        a.record_checkpoint("hotstuff", 1, 1, 0x2);
        let report = a.into_report();
        assert_eq!(report.to_json(), report.to_json());
        assert!(report.to_json().starts_with("{\"ok\":false"));
        let mut reg = Registry::new();
        report.publish_to(&mut reg);
        assert_eq!(reg.gauge("audit.ok", None), Some(0.0));
        assert_eq!(reg.gauge("audit.violations", None), Some(1.0));
        assert_eq!(
            reg.gauge("audit.prefix_agreement.violations", None),
            Some(1.0)
        );
        assert_eq!(reg.gauge("audit.conservation.checked", None), Some(0.0));
    }
}
