//! The crash-dump flight recorder: a bounded window onto a run's recent
//! past, flushed to disk when something goes wrong.
//!
//! While a run is healthy the recorder costs only what the telemetry ring
//! already pays: the [`telemetry::Telemetry`] handle it wraps keeps a
//! capacity-bounded ring of recent [`telemetry::TraceEvent`]s (see
//! [`telemetry::Telemetry::tracing_with_capacity`]) and the timeseries
//! sampler keeps closed windows. On an oracle violation, SIGTERM, panic, or
//! failed sweep cell, [`FlightRecorder::dump`] snapshots both into two
//! files:
//!
//! - `flight-<reason>.trace.json` — the trace ring in Chrome/Perfetto JSON
//!   (load directly into `ui.perfetto.dev`);
//! - `flight-<reason>.report.json` — the oracle report, the last K closed
//!   time-series windows, and the full Prometheus exposition at dump time.
//!
//! Dumping reads snapshots only — it never blocks or mutates the run it is
//! recording, so it is safe from signal-handling and panic paths.

use crate::AuditReport;
use serde::{Number, Value};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use telemetry::Telemetry;

/// Closed time-series windows retained in a dump by default.
pub const DEFAULT_WINDOWS: usize = 64;

/// A handle that can flush a run's recent telemetry to disk on demand.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    telemetry: Telemetry,
    dir: PathBuf,
    windows: usize,
    process_labels: Vec<(usize, String)>,
}

impl FlightRecorder {
    /// A recorder dumping into `dir` (created on first dump), keeping the
    /// last [`DEFAULT_WINDOWS`] closed windows.
    pub fn new(telemetry: Telemetry, dir: impl Into<PathBuf>) -> Self {
        FlightRecorder {
            telemetry,
            dir: dir.into(),
            windows: DEFAULT_WINDOWS,
            process_labels: Vec::new(),
        }
    }

    /// Keep the last `windows` closed time-series windows per dump.
    pub fn with_windows(mut self, windows: usize) -> Self {
        self.windows = windows;
        self
    }

    /// Label trace processes (replica id → name) in the Perfetto export.
    pub fn with_process_labels(mut self, labels: Vec<(usize, String)>) -> Self {
        self.process_labels = labels;
        self
    }

    /// The directory dumps land in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flush the flight ring and oracle report to disk. `reason` becomes
    /// part of the file names (sanitised to `[a-z0-9_-]`), so distinct
    /// failure paths never clobber each other. Returns the report path.
    pub fn dump(&self, reason: &str, report: &AuditReport) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let slug = sanitize(reason);

        let trace_path = self.dir.join(format!("flight-{slug}.trace.json"));
        let trace = self
            .telemetry
            .chrome_trace_json(&self.process_labels)
            .unwrap_or_else(|| "{\"traceEvents\":[]}".to_string());
        write_atomic(&trace_path, trace.as_bytes())?;

        let report_path = self.dir.join(format!("flight-{slug}.report.json"));
        let doc = Value::Map(vec![
            ("reason".into(), Value::Str(reason.to_string())),
            ("audit".into(), report.to_value()),
            ("windows".into(), self.windows_value()),
            (
                "trace_evicted".into(),
                Value::Num(Number::U64(
                    self.telemetry
                        .registry_snapshot()
                        .counter("telemetry.trace.evicted", None),
                )),
            ),
            (
                "prometheus".into(),
                Value::Str(self.telemetry.prometheus_text()),
            ),
        ]);
        let json = serde_json::to_string(&doc).expect("flight report serializes");
        write_atomic(&report_path, json.as_bytes())?;
        Ok(report_path)
    }

    /// The last K closed windows as `[{window, end_s, counters, gauges}]`.
    fn windows_value(&self) -> Value {
        let Some(ts) = self.telemetry.timeseries_snapshot() else {
            return Value::Arr(Vec::new());
        };
        let total = ts.len();
        let skip = total.saturating_sub(self.windows);
        let window_us = ts.window_us();
        let rows = ts
            .windows()
            .skip(skip)
            .map(|(w, sample)| {
                let counters = sample
                    .counters
                    .iter()
                    .map(|(name, &v)| (name.clone(), Value::Num(Number::U64(v))))
                    .collect();
                let gauges = sample
                    .gauges
                    .iter()
                    .map(|(name, &v)| (name.clone(), Value::Num(Number::F64(v))))
                    .collect();
                Value::Map(vec![
                    ("window".into(), Value::Num(Number::U64(w))),
                    (
                        "end_s".into(),
                        Value::Num(Number::F64(((w + 1) * window_us) as f64 / 1e6)),
                    ),
                    ("counters".into(), Value::Map(counters)),
                    ("gauges".into(), Value::Map(gauges)),
                ])
            })
            .collect();
        Value::Arr(rows)
    }
}

fn sanitize(reason: &str) -> String {
    let slug: String = reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if slug.is_empty() {
        "unknown".to_string()
    } else {
        slug
    }
}

/// Write via a temp file + rename so a dump interrupted mid-write (we are
/// often on a signal or panic path) never leaves a truncated JSON behind.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Auditor;
    use telemetry::Registry;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("audit-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dump_writes_perfetto_trace_and_report() {
        let t = Telemetry::tracing_with_capacity(16);
        t.instant(telemetry::Stage::Commit, 0, 1, 10, vec![("view", 1.0)]);
        t.counter_add("traffic.queue.admitted", None, 5);
        t.install_timeseries(1_000);
        t.tick_timeseries(10_000);

        let mut a = Auditor::new();
        a.record_checkpoint("hotstuff", 0, 1, 0x1);
        a.record_checkpoint("hotstuff", 1, 1, 0x2);
        let report = a.into_report();

        let dir = tmpdir("basic");
        let rec = FlightRecorder::new(t, &dir).with_windows(4);
        let report_path = rec.dump("oracle violation!", &report).unwrap();
        assert!(report_path.ends_with("flight-oracle_violation_.report.json"));

        let report_json = std::fs::read_to_string(&report_path).unwrap();
        let doc = serde_json::from_str(&report_json).unwrap();
        let Value::Map(fields) = doc else {
            panic!("map")
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert!(matches!(get("reason"), Some(Value::Str(s)) if s == "oracle violation!"));
        assert!(matches!(get("audit"), Some(Value::Map(_))));
        let Some(Value::Arr(windows)) = get("windows") else {
            panic!("windows")
        };
        assert!(!windows.is_empty(), "closed windows captured");
        assert!(
            matches!(get("prometheus"), Some(Value::Str(s)) if s.contains("traffic_queue_admitted"))
        );

        let trace =
            std::fs::read_to_string(dir.join("flight-oracle_violation_.trace.json")).unwrap();
        let parsed = serde_json::from_str(&trace).unwrap();
        assert!(
            matches!(parsed, Value::Map(_)),
            "perfetto json is an object"
        );
        assert!(trace.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_without_tracing_still_writes_loadable_files() {
        let t = Telemetry::recording();
        let dir = tmpdir("notrace");
        let rec = FlightRecorder::new(t, &dir);
        let report = Auditor::new().finish(&Registry::new());
        rec.dump("sigterm", &report).unwrap();
        let trace = std::fs::read_to_string(dir.join("flight-sigterm.trace.json")).unwrap();
        assert_eq!(trace, "{\"traceEvents\":[]}");
        let report_json = std::fs::read_to_string(dir.join("flight-sigterm.report.json")).unwrap();
        assert!(serde_json::from_str::<Value>(&report_json).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
