//! Applications executed on top of the replicated log.
//!
//! The consensus layer is application-agnostic: once a block commits, every
//! replica feeds its commands to an [`Application`] in log order. Three
//! applications are provided: [`NullApp`] (benchmarks), [`CounterApp`]
//! (simple consistency checks), and [`KvApp`] (the quickstart example).

use crate::block::Command;
use crypto::Digest;
use std::collections::BTreeMap;

/// A deterministic state machine executing committed commands.
pub trait Application {
    /// Execute one committed command and return its reply payload.
    fn execute(&mut self, cmd: &Command) -> Vec<u8>;

    /// A digest of the current application state, used to check that
    /// replicas stay in sync.
    fn state_digest(&self) -> Digest;
}

/// An application that ignores commands; used by throughput benchmarks where
/// command payloads are empty.
#[derive(Debug, Default, Clone)]
pub struct NullApp {
    executed: u64,
}

impl NullApp {
    /// Create a new instance.
    pub fn new() -> Self {
        NullApp::default()
    }

    /// Number of commands executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

impl Application for NullApp {
    fn execute(&mut self, _cmd: &Command) -> Vec<u8> {
        self.executed += 1;
        Vec::new()
    }

    fn state_digest(&self) -> Digest {
        Digest::of_parts(&[b"null-app", &self.executed.to_le_bytes()])
    }
}

/// A counter: each command adds the little-endian u64 in its payload
/// (or 1 if the payload is empty).
#[derive(Debug, Default, Clone)]
pub struct CounterApp {
    value: u64,
}

impl CounterApp {
    /// Create a counter at zero.
    pub fn new() -> Self {
        CounterApp::default()
    }

    /// Current counter value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl Application for CounterApp {
    fn execute(&mut self, cmd: &Command) -> Vec<u8> {
        let add = if cmd.payload.len() >= 8 {
            u64::from_le_bytes(cmd.payload[..8].try_into().expect("checked length"))
        } else {
            1
        };
        self.value = self.value.wrapping_add(add);
        self.value.to_le_bytes().to_vec()
    }

    fn state_digest(&self) -> Digest {
        Digest::of_parts(&[b"counter-app", &self.value.to_le_bytes()])
    }
}

/// Operations understood by [`KvApp`], encoded in command payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Store `value` under `key`.
    Put { key: String, value: String },
    /// Read the value under `key`.
    Get { key: String },
    /// Remove `key`.
    Delete { key: String },
}

impl KvOp {
    /// Encode the operation into a command payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvOp::Put { key, value } => {
                let mut v = vec![b'P'];
                v.extend((key.len() as u32).to_le_bytes());
                v.extend(key.as_bytes());
                v.extend(value.as_bytes());
                v
            }
            KvOp::Get { key } => {
                let mut v = vec![b'G'];
                v.extend(key.as_bytes());
                v
            }
            KvOp::Delete { key } => {
                let mut v = vec![b'D'];
                v.extend(key.as_bytes());
                v
            }
        }
    }

    /// Decode an operation from a command payload.
    pub fn decode(payload: &[u8]) -> Option<KvOp> {
        let (&tag, rest) = payload.split_first()?;
        match tag {
            b'P' => {
                if rest.len() < 4 {
                    return None;
                }
                let klen = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                let rest = &rest[4..];
                if rest.len() < klen {
                    return None;
                }
                Some(KvOp::Put {
                    key: String::from_utf8(rest[..klen].to_vec()).ok()?,
                    value: String::from_utf8(rest[klen..].to_vec()).ok()?,
                })
            }
            b'G' => Some(KvOp::Get {
                key: String::from_utf8(rest.to_vec()).ok()?,
            }),
            b'D' => Some(KvOp::Delete {
                key: String::from_utf8(rest.to_vec()).ok()?,
            }),
            _ => None,
        }
    }
}

/// A replicated key-value store.
#[derive(Debug, Default, Clone)]
pub struct KvApp {
    store: BTreeMap<String, String>,
}

impl KvApp {
    /// Create an empty store.
    pub fn new() -> Self {
        KvApp::default()
    }

    /// Read a key directly (bypassing consensus) — used by examples to
    /// inspect replica state after a run.
    pub fn get(&self, key: &str) -> Option<&String> {
        self.store.get(key)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

impl Application for KvApp {
    fn execute(&mut self, cmd: &Command) -> Vec<u8> {
        match KvOp::decode(&cmd.payload) {
            Some(KvOp::Put { key, value }) => {
                self.store.insert(key, value);
                b"ok".to_vec()
            }
            Some(KvOp::Get { key }) => self
                .store
                .get(&key)
                .map(|v| v.as_bytes().to_vec())
                .unwrap_or_default(),
            Some(KvOp::Delete { key }) => {
                self.store.remove(&key);
                b"ok".to_vec()
            }
            None => b"error: malformed op".to_vec(),
        }
    }

    fn state_digest(&self) -> Digest {
        let mut acc = Digest::of(b"kv-app");
        for (k, v) in &self.store {
            acc = Digest::of_parts(&[&acc.0, k.as_bytes(), v.as_bytes()]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_app_counts_executions() {
        let mut app = NullApp::new();
        app.execute(&Command::empty(0, 0));
        app.execute(&Command::empty(0, 1));
        assert_eq!(app.executed(), 2);
    }

    #[test]
    fn counter_app_adds_payload() {
        let mut app = CounterApp::new();
        app.execute(&Command::new(0, 0, 5u64.to_le_bytes().to_vec()));
        app.execute(&Command::empty(0, 1));
        assert_eq!(app.value(), 6);
    }

    #[test]
    fn state_digest_tracks_state() {
        let mut a = CounterApp::new();
        let mut b = CounterApp::new();
        assert_eq!(a.state_digest(), b.state_digest());
        a.execute(&Command::empty(0, 0));
        assert_ne!(a.state_digest(), b.state_digest());
        b.execute(&Command::empty(1, 0));
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn kv_ops_roundtrip_encoding() {
        for op in [
            KvOp::Put {
                key: "k".into(),
                value: "v".into(),
            },
            KvOp::Get { key: "key".into() },
            KvOp::Delete { key: "key".into() },
        ] {
            assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(KvOp::decode(&[]), None);
        assert_eq!(KvOp::decode(b"Zjunk"), None);
    }

    #[test]
    fn kv_app_executes_operations() {
        let mut app = KvApp::new();
        let put = Command::new(
            0,
            0,
            KvOp::Put {
                key: "city".into(),
                value: "stavanger".into(),
            }
            .encode(),
        );
        let get = Command::new(0, 1, KvOp::Get { key: "city".into() }.encode());
        let del = Command::new(0, 2, KvOp::Delete { key: "city".into() }.encode());

        assert_eq!(app.execute(&put), b"ok");
        assert_eq!(app.execute(&get), b"stavanger");
        assert_eq!(app.execute(&del), b"ok");
        assert_eq!(app.execute(&get), b"");
        assert!(app.is_empty());
    }

    #[test]
    fn kv_replicas_converge_to_same_digest() {
        let cmds: Vec<Command> = (0..20)
            .map(|i| {
                Command::new(
                    0,
                    i,
                    KvOp::Put {
                        key: format!("k{}", i % 5),
                        value: format!("v{i}"),
                    }
                    .encode(),
                )
            })
            .collect();
        let mut a = KvApp::new();
        let mut b = KvApp::new();
        for c in &cmds {
            a.execute(c);
            b.execute(c);
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
