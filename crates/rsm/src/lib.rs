//! # rsm — generic replicated state machine substrate
//!
//! The OptiLog paper describes its framework as an extension of a *generic*
//! RSM (Fig 1): clients submit commands, a consensus engine replicates them
//! into an append-only log, and the application executes committed commands.
//! This crate provides the protocol-agnostic pieces shared by every consensus
//! implementation in the workspace:
//!
//! * [`Command`], [`Block`] — client commands and the batches protocols agree on.
//! * [`Application`] — the state machine executing committed commands
//!   ([`KvApp`], [`CounterApp`], [`NullApp`] are provided).
//! * [`AppendLog`] — the ordered log of committed entries.
//! * [`SystemConfig`] — `n`, `f`, quorum sizes, and role bookkeeping.
//! * [`CommitStats`] — throughput and consensus-latency collection used by the
//!   experiment harnesses.
//! * [`BlockSource`] — saturated batch generation matching the paper's
//!   "blocks of 1000 proposals, each without transaction payload" workload.
//! * [`TrafficSpec`] — the open-loop alternative: a declarative offered-load
//!   description (arrival process, client population, size-or-timeout
//!   batching, bounded queue, SLO) that the `traffic` crate compiles into
//!   the admission queues substrates pull proposals from.
//! * [`MisbehaviorPlan`] — scripted protocol-level misbehavior (the
//!   proposal-delay attack) that every substrate installs as a replica
//!   behaviour, so the same adversary script drives PBFT, HotStuff, and the
//!   tree overlays.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod app;
pub mod block;
pub mod config;
pub mod log;
pub mod misbehavior;
pub mod stats;
pub mod workload;

pub use app::{Application, CounterApp, KvApp, NullApp};
pub use block::{Block, Command};
pub use config::{RoleAssignment, SystemConfig};
pub use log::AppendLog;
pub use misbehavior::{DelayStage, MisbehaviorPlan};
pub use stats::{timeline_mean, CommitStats, RunSummary};
pub use workload::{ArrivalProcess, BatchingPolicy, BlockSource, TrafficSpec, WorkloadSpec};
