//! Throughput and consensus-latency collection for experiment harnesses.
//!
//! The paper reports *throughput* (committed requests per second) and
//! *consensus latency* (time from block proposal to commit), sampled every
//! second over a 120-second run (§7.3). [`CommitStats`] records commits as
//! they happen inside a replica and produces the same aggregates.

use netsim::{Duration, Histogram, RateCounter, SimTime, TimeSeries};
use serde::Serialize;

/// Mean value of a `(time s, value)` timeline over the window `[from, to)`
/// seconds (0.0 when no point falls inside) — the windowed-latency helper
/// shared by the substrate reports, `LatencyWindow` metrics, and the figure
/// assertions.
pub fn timeline_mean(points: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &(t, v) in points {
        if t >= from && t < to {
            sum += v;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Per-replica commit statistics.
#[derive(Debug, Clone)]
pub struct CommitStats {
    throughput: RateCounter,
    latency: Histogram,
    latency_timeline: TimeSeries,
    committed_blocks: u64,
    committed_commands: u64,
}

impl Default for CommitStats {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitStats {
    /// Create an empty collector with one-second throughput buckets.
    pub fn new() -> Self {
        CommitStats {
            throughput: RateCounter::new(Duration::from_secs(1)),
            latency: Histogram::new(),
            latency_timeline: TimeSeries::new(),
            committed_blocks: 0,
            committed_commands: 0,
        }
    }

    /// Record that a block of `commands` commands proposed at `proposed`
    /// committed at `committed`.
    pub fn record_commit(&mut self, proposed: SimTime, committed: SimTime, commands: usize) {
        let lat = committed.since(proposed);
        self.latency.record(lat);
        self.latency_timeline.push(committed, lat.as_millis_f64());
        self.throughput.record(committed, commands as u64);
        self.committed_blocks += 1;
        self.committed_commands += commands as u64;
    }

    /// Total committed blocks.
    pub fn blocks(&self) -> u64 {
        self.committed_blocks
    }

    /// Total committed commands.
    pub fn commands(&self) -> u64 {
        self.committed_commands
    }

    /// Mean consensus latency.
    pub fn mean_latency(&self) -> Duration {
        self.latency.mean()
    }

    /// Consensus-latency histogram (mutable access for percentile queries).
    pub fn latency_histogram(&mut self) -> &mut Histogram {
        &mut self.latency
    }

    /// Latency timeline: (commit time in seconds, latency in ms).
    pub fn latency_timeline(&self) -> &TimeSeries {
        &self.latency_timeline
    }

    /// Per-second committed command counts.
    pub fn throughput_buckets(&self) -> &[u64] {
        self.throughput.buckets()
    }

    /// Mean throughput in commands per second over a run of `run_secs` seconds.
    pub fn mean_throughput(&self, run_secs: u64) -> f64 {
        if run_secs == 0 {
            return 0.0;
        }
        self.committed_commands as f64 / run_secs as f64
    }

    /// Summarise the run.
    pub fn summary(&mut self, run_secs: u64) -> RunSummary {
        RunSummary {
            throughput_ops: self.mean_throughput(run_secs),
            mean_latency_ms: self.mean_latency().as_millis_f64(),
            p50_latency_ms: self.latency.median().as_millis_f64(),
            p99_latency_ms: self.latency.percentile(0.99).as_millis_f64(),
            latency_ci95_ms: self.latency.ci95_ms(),
            committed_blocks: self.committed_blocks,
            committed_commands: self.committed_commands,
        }
    }
}

/// Aggregated results of one experiment run, in the units the paper reports.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct RunSummary {
    /// Mean throughput in operations (commands) per second.
    pub throughput_ops: f64,
    /// Mean consensus latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median consensus latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile consensus latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Half-width of the 95% confidence interval of the latency mean.
    pub latency_ci95_ms: f64,
    /// Number of committed blocks.
    pub committed_blocks: u64,
    /// Number of committed commands.
    pub committed_commands: u64,
}

impl RunSummary {
    /// Render a one-line human-readable summary for harness output.
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label:<28} {:>10.0} op/s   latency {:>8.1} ms (p50 {:.1}, p99 {:.1}, ±{:.1})   blocks {}",
            self.throughput_ops,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.latency_ci95_ms,
            self.committed_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_commit_tracks_latency_and_throughput() {
        let mut s = CommitStats::new();
        s.record_commit(SimTime::from_millis(0), SimTime::from_millis(100), 1000);
        s.record_commit(SimTime::from_millis(500), SimTime::from_millis(700), 1000);
        s.record_commit(SimTime::from_millis(1200), SimTime::from_millis(1500), 1000);

        assert_eq!(s.blocks(), 3);
        assert_eq!(s.commands(), 3000);
        assert_eq!(s.mean_latency().as_millis(), 200);
        assert_eq!(s.throughput_buckets(), &[2000, 1000]);
        assert_eq!(s.mean_throughput(3), 1000.0);
    }

    #[test]
    fn summary_contains_percentiles() {
        let mut s = CommitStats::new();
        for i in 1..=100u64 {
            s.record_commit(SimTime::ZERO, SimTime::from_millis(i), 10);
        }
        let sum = s.summary(10);
        assert_eq!(sum.committed_blocks, 100);
        assert_eq!(sum.committed_commands, 1000);
        assert!((sum.p50_latency_ms - 50.0).abs() <= 1.0);
        assert!(sum.p99_latency_ms >= 98.0);
        assert!(sum.throughput_ops > 0.0);
        assert!(sum.render("test").contains("op/s"));
    }

    #[test]
    fn empty_stats_are_safe() {
        let mut s = CommitStats::new();
        let sum = s.summary(120);
        assert_eq!(sum.throughput_ops, 0.0);
        assert_eq!(sum.mean_latency_ms, 0.0);
        assert_eq!(s.mean_throughput(0), 0.0);
    }

    #[test]
    fn latency_timeline_records_points() {
        let mut s = CommitStats::new();
        s.record_commit(SimTime::from_secs(1), SimTime::from_secs(2), 5);
        assert_eq!(s.latency_timeline().len(), 1);
        let (t, v) = s.latency_timeline().points()[0];
        assert_eq!(t, 2.0);
        assert_eq!(v, 1000.0);
    }
}
