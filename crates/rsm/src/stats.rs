//! Throughput and consensus-latency collection for experiment harnesses.
//!
//! The paper reports *throughput* (committed requests per second) and
//! *consensus latency* (time from block proposal to commit), sampled every
//! second over a 120-second run (§7.3). [`CommitStats`] records commits as
//! they happen inside a replica and produces the same aggregates.

use runtime::{Duration, Histogram, RateCounter, SimTime, TimeSeries};
use serde::Serialize;

/// Mean value of a `(time s, value)` timeline over the window `[from, to)`
/// seconds (0.0 when no point falls inside) — the windowed-latency helper
/// shared by the substrate reports, `LatencyWindow` metrics, and the figure
/// assertions.
pub fn timeline_mean(points: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &(t, v) in points {
        if t >= from && t < to {
            sum += v;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Per-replica commit statistics.
///
/// Besides the paper's consensus-side aggregates (throughput, proposal→commit
/// latency), the collector carries the *client-side* view an open-loop
/// traffic workload needs: end-to-end latency samples (client send → commit →
/// reply) and goodput — the commands whose end-to-end latency met the SLO
/// deadline.
#[derive(Debug, Clone)]
pub struct CommitStats {
    throughput: RateCounter,
    latency: Histogram,
    latency_timeline: TimeSeries,
    committed_blocks: u64,
    committed_commands: u64,
    /// First / last commit instants, for span-based throughput.
    first_commit: Option<SimTime>,
    last_commit: Option<SimTime>,
    /// Goodput SLO deadline (`None` = every committed command is goodput).
    slo: Option<Duration>,
    e2e: Histogram,
    e2e_timeline: TimeSeries,
    goodput: RateCounter,
    goodput_commands: u64,
    client_commands: u64,
}

impl Default for CommitStats {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitStats {
    /// Create an empty collector with one-second throughput buckets.
    pub fn new() -> Self {
        CommitStats {
            throughput: RateCounter::new(Duration::from_secs(1)),
            latency: Histogram::new(),
            latency_timeline: TimeSeries::new(),
            committed_blocks: 0,
            committed_commands: 0,
            first_commit: None,
            last_commit: None,
            slo: None,
            e2e: Histogram::new(),
            e2e_timeline: TimeSeries::new(),
            goodput: RateCounter::new(Duration::from_secs(1)),
            goodput_commands: 0,
            client_commands: 0,
        }
    }

    /// Set the goodput SLO deadline for subsequent end-to-end samples.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Record that a block of `commands` commands proposed at `proposed`
    /// committed at `committed`.
    pub fn record_commit(&mut self, proposed: SimTime, committed: SimTime, commands: usize) {
        let lat = committed.since(proposed);
        self.latency.record(lat);
        self.latency_timeline.push(committed, lat.as_millis_f64());
        self.throughput.record(committed, commands as u64);
        self.committed_blocks += 1;
        self.committed_commands += commands as u64;
        if self.first_commit.is_none() {
            self.first_commit = Some(committed);
        }
        self.last_commit = Some(committed);
    }

    /// Record one command's end-to-end client latency (send → commit →
    /// reply), committed at `committed`. The command counts towards goodput
    /// iff `e2e` meets the SLO deadline.
    pub fn record_client_commit(&mut self, e2e: Duration, committed: SimTime) {
        self.e2e.record(e2e);
        self.e2e_timeline.push(committed, e2e.as_millis_f64());
        self.client_commands += 1;
        if self.slo.is_none_or(|slo| e2e <= slo) {
            self.goodput.record(committed, 1);
            self.goodput_commands += 1;
        }
    }

    /// Total committed blocks.
    pub fn blocks(&self) -> u64 {
        self.committed_blocks
    }

    /// Total committed commands.
    pub fn commands(&self) -> u64 {
        self.committed_commands
    }

    /// Mean consensus latency.
    pub fn mean_latency(&self) -> Duration {
        self.latency.mean()
    }

    /// Consensus-latency histogram (mutable access for percentile queries).
    pub fn latency_histogram(&mut self) -> &mut Histogram {
        &mut self.latency
    }

    /// Latency timeline: (commit time in seconds, latency in ms).
    pub fn latency_timeline(&self) -> &TimeSeries {
        &self.latency_timeline
    }

    /// Per-second committed command counts.
    pub fn throughput_buckets(&self) -> &[u64] {
        self.throughput.buckets()
    }

    /// The span of virtual time actually covered by commits (first → last),
    /// in seconds. Zero until two distinct commit instants exist.
    pub fn committed_span_secs(&self) -> f64 {
        match (self.first_commit, self.last_commit) {
            (Some(first), Some(last)) => last.since(first).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Mean throughput in commands per second over the *actual committed
    /// span* (first → last commit). A run that stalls half-way reports the
    /// rate it sustained while it was committing, not the rate diluted over
    /// the nominal horizon. Falls back to `run_secs` when the span is
    /// degenerate (fewer than two distinct commit instants); see
    /// [`CommitStats::nominal_throughput`] for the paper-style figure.
    pub fn mean_throughput(&self, run_secs: u64) -> f64 {
        let span = self.committed_span_secs();
        if span > 0.0 {
            self.committed_commands as f64 / span
        } else {
            self.nominal_throughput(run_secs)
        }
    }

    /// Throughput diluted over the nominal run horizon — what the paper's
    /// throughput figures report (total committed / experiment length).
    pub fn nominal_throughput(&self, run_secs: u64) -> f64 {
        if run_secs == 0 {
            return 0.0;
        }
        self.committed_commands as f64 / run_secs as f64
    }

    /// End-to-end latency histogram (mutable access for percentile queries).
    pub fn e2e_histogram(&mut self) -> &mut Histogram {
        &mut self.e2e
    }

    /// End-to-end latency timeline: (commit time s, e2e latency ms).
    pub fn e2e_timeline(&self) -> &TimeSeries {
        &self.e2e_timeline
    }

    /// Commands with a recorded end-to-end latency.
    pub fn client_commands(&self) -> u64 {
        self.client_commands
    }

    /// Commands whose end-to-end latency met the SLO.
    pub fn goodput_commands(&self) -> u64 {
        self.goodput_commands
    }

    /// Mean goodput in commands per second over the nominal horizon (goodput
    /// is compared against *offered* load, which is also nominal).
    pub fn goodput_ops(&self, run_secs: u64) -> f64 {
        if run_secs == 0 {
            return 0.0;
        }
        self.goodput_commands as f64 / run_secs as f64
    }

    /// Per-second within-SLO committed command counts.
    pub fn goodput_buckets(&self) -> &[u64] {
        self.goodput.buckets()
    }

    /// Summarise the run. `throughput_ops` stays the paper-style nominal
    /// figure (total committed / horizon) so degraded runs *show* their
    /// degradation in the plots; `sustained_ops` carries the span-based rate
    /// for capacity analysis.
    pub fn summary(&mut self, run_secs: u64) -> RunSummary {
        RunSummary {
            throughput_ops: self.nominal_throughput(run_secs),
            sustained_ops: self.mean_throughput(run_secs),
            mean_latency_ms: self.mean_latency().as_millis_f64(),
            p50_latency_ms: self.latency.median().as_millis_f64(),
            p99_latency_ms: self.latency.percentile(0.99).as_millis_f64(),
            latency_ci95_ms: self.latency.ci95_ms(),
            committed_blocks: self.committed_blocks,
            committed_commands: self.committed_commands,
        }
    }
}

/// Aggregated results of one experiment run, in the units the paper reports.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct RunSummary {
    /// Mean throughput in operations (commands) per second over the nominal
    /// run horizon — what the paper's throughput figures report.
    pub throughput_ops: f64,
    /// Throughput over the actual committed span (first → last commit): the
    /// rate the run *sustained while it was committing*, undiluted by a
    /// stall (see [`CommitStats::mean_throughput`]).
    pub sustained_ops: f64,
    /// Mean consensus latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median consensus latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile consensus latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Half-width of the 95% confidence interval of the latency mean.
    pub latency_ci95_ms: f64,
    /// Number of committed blocks.
    pub committed_blocks: u64,
    /// Number of committed commands.
    pub committed_commands: u64,
}

impl RunSummary {
    /// Render a one-line human-readable summary for harness output.
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label:<28} {:>10.0} op/s   latency {:>8.1} ms (p50 {:.1}, p99 {:.1}, ±{:.1})   blocks {}",
            self.throughput_ops,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.latency_ci95_ms,
            self.committed_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_commit_tracks_latency_and_throughput() {
        let mut s = CommitStats::new();
        s.record_commit(SimTime::from_millis(0), SimTime::from_millis(100), 1000);
        s.record_commit(SimTime::from_millis(500), SimTime::from_millis(700), 1000);
        s.record_commit(SimTime::from_millis(1200), SimTime::from_millis(1500), 1000);

        assert_eq!(s.blocks(), 3);
        assert_eq!(s.commands(), 3000);
        assert_eq!(s.mean_latency().as_millis(), 200);
        assert_eq!(s.throughput_buckets(), &[2000, 1000]);
        // Span-based: commits cover [0.1 s, 1.5 s] → 3000 / 1.4 s.
        assert!((s.mean_throughput(3) - 3000.0 / 1.4).abs() < 1e-9);
        assert_eq!(s.nominal_throughput(3), 1000.0);
        assert!((s.committed_span_secs() - 1.4).abs() < 1e-9);
    }

    /// The regression `mean_throughput` was fixed for: a run that commits at
    /// full rate for a third of the horizon and then stalls must report the
    /// sustained rate, while the nominal accessor keeps the diluted figure.
    #[test]
    fn partially_degraded_run_reports_sustained_rate() {
        let mut s = CommitStats::new();
        for i in 0..10u64 {
            let t = SimTime::from_secs(i);
            s.record_commit(t, t + Duration::from_millis(50), 100);
        }
        // Stall: nothing commits for the remaining 20 s of a 30 s run.
        let sustained = s.mean_throughput(30);
        let nominal = s.nominal_throughput(30);
        assert!((sustained - 1000.0 / 9.0).abs() < 1e-6, "{sustained}");
        assert!((nominal - 1000.0 / 30.0).abs() < 1e-9);
        assert!(sustained > nominal * 3.0);
    }

    #[test]
    fn summary_contains_percentiles() {
        let mut s = CommitStats::new();
        for i in 1..=100u64 {
            s.record_commit(SimTime::ZERO, SimTime::from_millis(i), 10);
        }
        let sum = s.summary(10);
        assert_eq!(sum.committed_blocks, 100);
        assert_eq!(sum.committed_commands, 1000);
        assert!((sum.p50_latency_ms - 50.0).abs() <= 1.0);
        assert!(sum.p99_latency_ms >= 98.0);
        assert!(sum.throughput_ops > 0.0);
        assert!(sum.render("test").contains("op/s"));
    }

    #[test]
    fn empty_stats_are_safe() {
        let mut s = CommitStats::new();
        let sum = s.summary(120);
        assert_eq!(sum.throughput_ops, 0.0);
        assert_eq!(sum.mean_latency_ms, 0.0);
        assert_eq!(s.mean_throughput(0), 0.0);
        assert_eq!(s.committed_span_secs(), 0.0);
        assert_eq!(s.goodput_ops(120), 0.0);
        assert_eq!(s.client_commands(), 0);
    }

    #[test]
    fn end_to_end_samples_split_into_goodput_by_slo() {
        let mut s = CommitStats::new().with_slo(Duration::from_millis(500));
        s.record_client_commit(Duration::from_millis(200), SimTime::from_millis(1_200));
        s.record_client_commit(Duration::from_millis(500), SimTime::from_millis(1_500));
        s.record_client_commit(Duration::from_millis(900), SimTime::from_millis(2_100));
        assert_eq!(s.client_commands(), 3);
        assert_eq!(s.goodput_commands(), 2, "only within-SLO commands count");
        assert_eq!(s.goodput_buckets(), &[0, 2]);
        assert_eq!(s.goodput_ops(2), 1.0);
        assert_eq!(s.e2e_timeline().len(), 3);
        assert_eq!(s.e2e_histogram().median().as_millis(), 500);
    }

    #[test]
    fn without_slo_every_client_commit_is_goodput() {
        let mut s = CommitStats::new();
        s.record_client_commit(Duration::from_secs(30), SimTime::from_secs(31));
        assert_eq!(s.goodput_commands(), 1);
    }

    #[test]
    fn latency_timeline_records_points() {
        let mut s = CommitStats::new();
        s.record_commit(SimTime::from_secs(1), SimTime::from_secs(2), 5);
        assert_eq!(s.latency_timeline().len(), 1);
        let (t, v) = s.latency_timeline().points()[0];
        assert_eq!(t, 2.0);
        assert_eq!(v, 1000.0);
    }
}
