//! Client commands and the blocks (batches) that consensus orders.

use crypto::{Digest, Hashable};
use serde::{Deserialize, Serialize};

/// A client command: an opaque payload tagged with its origin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Command {
    /// Identifier of the issuing client.
    pub client: u64,
    /// Client-local sequence number (used for reply matching and dedup).
    pub seq: u64,
    /// Causal trace id (a `telemetry::TraceId`): stamped at admission and
    /// carried through propose/commit so span events across layers correlate.
    /// Not part of the digest — observability must not perturb hashes.
    pub trace: u64,
    /// Opaque operation payload. The paper's throughput experiments use empty
    /// payloads; the key-value example application encodes operations here.
    pub payload: Vec<u8>,
}

impl Command {
    /// Create a command. The trace id defaults to `seq` (the traffic layer
    /// overrides it with the global arrival index via [`Command::with_trace`]).
    pub fn new(client: u64, seq: u64, payload: Vec<u8>) -> Self {
        Command {
            client,
            seq,
            trace: seq,
            payload,
        }
    }

    /// An empty-payload command, as used by the benchmark workloads.
    pub fn empty(client: u64, seq: u64) -> Self {
        Command::new(client, seq, Vec::new())
    }

    /// Attach an explicit causal trace id.
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = trace;
        self
    }

    /// Wire size estimate in bytes.
    pub fn wire_bytes(&self) -> usize {
        16 + self.payload.len()
    }
}

impl Hashable for Command {
    fn digest(&self) -> Digest {
        Digest::of_parts(&[
            b"command",
            &self.client.to_le_bytes(),
            &self.seq.to_le_bytes(),
            &self.payload,
        ])
    }
}

/// A block: an ordered batch of commands proposed as one consensus value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Digest of the parent block (chain position), `Digest::ZERO` for genesis.
    pub parent: Digest,
    /// View / round in which the block was proposed.
    pub view: u64,
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Proposer replica.
    pub proposer: usize,
    /// The batched commands.
    pub commands: Vec<Command>,
}

impl Block {
    /// The genesis block.
    pub fn genesis() -> Self {
        Block {
            parent: Digest::ZERO,
            view: 0,
            height: 0,
            proposer: 0,
            commands: Vec::new(),
        }
    }

    /// Create a block extending `parent`.
    pub fn new(
        parent: Digest,
        view: u64,
        height: u64,
        proposer: usize,
        commands: Vec<Command>,
    ) -> Self {
        Block {
            parent,
            view,
            height,
            proposer,
            commands,
        }
    }

    /// Number of commands in the block.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// True if the block carries no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Wire size estimate in bytes (header plus commands).
    pub fn wire_bytes(&self) -> usize {
        32 + 8 + 8 + 8 + self.commands.iter().map(Command::wire_bytes).sum::<usize>()
    }
}

impl Hashable for Block {
    fn digest(&self) -> Digest {
        // Command digests are folded into one running hash to keep block
        // hashing O(commands) without materialising a large buffer.
        let mut acc = Digest::of_parts(&[
            b"block",
            &self.parent.0,
            &self.view.to_le_bytes(),
            &self.height.to_le_bytes(),
            &self.proposer.to_le_bytes(),
            &(self.commands.len() as u64).to_le_bytes(),
        ]);
        for c in &self.commands {
            acc = Digest::of_parts(&[&acc.0, &c.digest().0]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_digest_depends_on_all_fields() {
        let base = Command::new(1, 2, vec![3]);
        assert_ne!(base.digest(), Command::new(2, 2, vec![3]).digest());
        assert_ne!(base.digest(), Command::new(1, 3, vec![3]).digest());
        assert_ne!(base.digest(), Command::new(1, 2, vec![4]).digest());
        assert_eq!(base.digest(), Command::new(1, 2, vec![3]).digest());
    }

    #[test]
    fn genesis_block_is_empty_at_height_zero() {
        let g = Block::genesis();
        assert!(g.is_empty());
        assert_eq!(g.height, 0);
        assert_eq!(g.parent, Digest::ZERO);
    }

    #[test]
    fn block_digest_changes_with_commands_and_parent() {
        let cmds = vec![Command::empty(0, 0), Command::empty(0, 1)];
        let a = Block::new(Digest::ZERO, 1, 1, 0, cmds.clone());
        let b = Block::new(Digest::ZERO, 1, 1, 0, cmds[..1].to_vec());
        let c = Block::new(Digest::of(b"p"), 1, 1, 0, cmds);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn block_digest_is_order_sensitive() {
        let c1 = Command::empty(0, 0);
        let c2 = Command::empty(0, 1);
        let a = Block::new(Digest::ZERO, 1, 1, 0, vec![c1.clone(), c2.clone()]);
        let b = Block::new(Digest::ZERO, 1, 1, 0, vec![c2, c1]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn wire_size_accounts_for_payloads() {
        let small = Block::new(Digest::ZERO, 0, 1, 0, vec![Command::empty(0, 0)]);
        let large = Block::new(
            Digest::ZERO,
            0,
            1,
            0,
            vec![Command::new(0, 0, vec![0u8; 100])],
        );
        assert!(large.wire_bytes() > small.wire_bytes());
    }
}
