//! The append-only log of committed entries.
//!
//! Both client commands and OptiLog measurements are replicated through the
//! same consensus engine and end up in an ordered, append-only log (Fig 1).
//! [`AppendLog`] is that log: entries are appended with consecutive sequence
//! numbers and can never be mutated or removed, which is what lets monitors
//! at different replicas derive identical metrics from identical prefixes.

use crypto::{Digest, Hashable};
use serde::{Deserialize, Serialize};

/// A committed log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry<T> {
    /// Position in the log (0-based, dense).
    pub seq: u64,
    /// The committed value.
    pub value: T,
}

/// An append-only, totally ordered log.
#[derive(Debug, Clone, Default)]
pub struct AppendLog<T> {
    entries: Vec<LogEntry<T>>,
}

impl<T> AppendLog<T> {
    /// Create an empty log.
    pub fn new() -> Self {
        AppendLog {
            entries: Vec::new(),
        }
    }

    /// Append a value, returning its sequence number.
    pub fn append(&mut self, value: T) -> u64 {
        let seq = self.entries.len() as u64;
        self.entries.push(LogEntry { seq, value });
        seq
    }

    /// Number of committed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `seq`, if committed.
    pub fn get(&self, seq: u64) -> Option<&LogEntry<T>> {
        self.entries.get(seq as usize)
    }

    /// The most recently committed entry.
    pub fn last(&self) -> Option<&LogEntry<T>> {
        self.entries.last()
    }

    /// Iterate over all entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry<T>> {
        self.entries.iter()
    }

    /// Iterate over entries starting at `from` (inclusive).
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &LogEntry<T>> {
        self.entries.iter().skip(from as usize)
    }
}

impl<T: Hashable> AppendLog<T> {
    /// A digest of the whole log prefix, for cross-replica consistency checks.
    pub fn prefix_digest(&self) -> Digest {
        let mut acc = Digest::of(b"log");
        for e in &self.entries {
            acc = Digest::of_parts(&[&acc.0, &e.seq.to_le_bytes(), &e.value.digest().0]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_dense_sequence_numbers() {
        let mut log = AppendLog::new();
        assert_eq!(log.append("a"), 0);
        assert_eq!(log.append("b"), 1);
        assert_eq!(log.append("c"), 2);
        assert_eq!(log.len(), 3);
        assert_eq!(log.get(1).unwrap().value, "b");
        assert_eq!(log.last().unwrap().seq, 2);
    }

    #[test]
    fn empty_log_behaviour() {
        let log: AppendLog<u32> = AppendLog::new();
        assert!(log.is_empty());
        assert!(log.get(0).is_none());
        assert!(log.last().is_none());
    }

    #[test]
    fn iter_from_skips_prefix() {
        let mut log = AppendLog::new();
        for i in 0..10u32 {
            log.append(i);
        }
        let tail: Vec<u32> = log.iter_from(7).map(|e| e.value).collect();
        assert_eq!(tail, vec![7, 8, 9]);
    }

    #[test]
    fn prefix_digest_is_order_sensitive() {
        let mut a = AppendLog::new();
        let mut b = AppendLog::new();
        a.append(b"x".to_vec());
        a.append(b"y".to_vec());
        b.append(b"y".to_vec());
        b.append(b"x".to_vec());
        assert_ne!(a.prefix_digest(), b.prefix_digest());

        let mut c = AppendLog::new();
        c.append(b"x".to_vec());
        c.append(b"y".to_vec());
        assert_eq!(a.prefix_digest(), c.prefix_digest());
    }
}
