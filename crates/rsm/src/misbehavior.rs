//! Protocol-level misbehavior scripts shared by the consensus substrates.
//!
//! The paper's performance adversary does not tamper with the network — it
//! *withholds its own protocol messages*: a Byzantine leader/root delays the
//! proposals it is supposed to disseminate (Fig 7, Fig 11). Network-level
//! fault plans (the simulator's `FaultPlan`) cannot express
//! this faithfully, because a network delay slows *every* message of the
//! node, including votes and aggregates it sends as a follower.
//!
//! [`MisbehaviorPlan`] is the substrate-agnostic description of the scripted
//! attack: per replica, a set of time-windowed [`DelayStage`]s. Each
//! substrate installs its replica's stages as a *behaviour*: the PBFT replica
//! delays its Pre-Prepare, the HotStuff leader holds its block proposal, and
//! the Kauri/OptiTree root (or intermediate) holds the payloads it
//! disseminates down the tree — all while keeping honest proposal
//! timestamps, so the delay is protocol-visible exactly the way the paper's
//! suspicion conditions observe it.

use runtime::{Duration, FaultWindow, SimTime};
use std::collections::BTreeMap;

/// One phase of a proposal-delay attack. The first stage whose window
/// contains the send time applies (mirroring the PBFT substrate's
/// behaviour stages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayStage {
    /// Extra hold applied to each proposal sent while the stage is active.
    pub delay: Duration,
    /// When the stage is active.
    pub window: FaultWindow,
}

impl DelayStage {
    /// A stage active in `[from, until)`; `until == SimTime::MAX` means
    /// open-ended.
    pub fn during(delay: Duration, from: SimTime, until: SimTime) -> Self {
        DelayStage {
            delay,
            window: FaultWindow {
                from,
                until: (until != SimTime::MAX).then_some(until),
            },
        }
    }

    /// The hold this stage applies at `now` (zero when inactive).
    pub fn hold_at(&self, now: SimTime) -> Duration {
        if self.window.contains(now) {
            self.delay
        } else {
            Duration::ZERO
        }
    }
}

/// Scripted protocol-level misbehavior for one run: per-replica delay
/// stages, queried by the substrate at every proposal send.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MisbehaviorPlan {
    stages: BTreeMap<usize, Vec<DelayStage>>,
}

impl MisbehaviorPlan {
    /// The empty plan: every replica follows the protocol.
    pub fn none() -> Self {
        MisbehaviorPlan::default()
    }

    /// True if no replica misbehaves.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Script `replica` to hold each of its proposals by `delay` while the
    /// window `[from, until)` is open (`SimTime::MAX` = open-ended). Stages
    /// on the same replica accumulate, so a script can attack, go quiet,
    /// and attack again.
    pub fn delay_proposals_during(
        &mut self,
        replica: usize,
        delay: Duration,
        from: SimTime,
        until: SimTime,
    ) -> &mut Self {
        self.stages
            .entry(replica)
            .or_default()
            .push(DelayStage::during(delay, from, until));
        self
    }

    /// The stages scripted for `replica` (empty for correct replicas).
    pub fn stages_for(&self, replica: usize) -> Vec<DelayStage> {
        self.stages.get(&replica).cloned().unwrap_or_default()
    }

    /// The hold `replica` applies to a proposal sent at `now`: the delay of
    /// the first active stage, or zero.
    pub fn proposal_hold(&self, replica: usize, now: SimTime) -> Duration {
        hold_at(self.stages.get(&replica).map_or(&[][..], |v| v), now)
    }
}

/// The hold a stage list applies at `now`: the first active stage wins.
pub fn hold_at(stages: &[DelayStage], now: SimTime) -> Duration {
    stages
        .iter()
        .find(|s| s.window.contains(now))
        .map(|s| s.delay)
        .unwrap_or(Duration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_holds() {
        let plan = MisbehaviorPlan::none();
        assert!(plan.is_empty());
        assert!(plan.proposal_hold(0, SimTime::from_secs(10)).is_zero());
        assert!(plan.stages_for(3).is_empty());
    }

    #[test]
    fn windowed_stage_holds_only_inside_window() {
        let mut plan = MisbehaviorPlan::none();
        plan.delay_proposals_during(
            2,
            Duration::from_millis(400),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        assert!(plan.proposal_hold(2, SimTime::from_secs(9)).is_zero());
        assert_eq!(plan.proposal_hold(2, SimTime::from_secs(10)).as_millis(), 400);
        assert_eq!(plan.proposal_hold(2, SimTime::from_secs(19)).as_millis(), 400);
        assert!(plan.proposal_hold(2, SimTime::from_secs(20)).is_zero());
        // Other replicas are unaffected.
        assert!(plan.proposal_hold(0, SimTime::from_secs(15)).is_zero());
    }

    #[test]
    fn open_ended_stage_and_accumulated_phases() {
        let mut plan = MisbehaviorPlan::none();
        plan.delay_proposals_during(
            1,
            Duration::from_millis(100),
            SimTime::from_secs(5),
            SimTime::from_secs(8),
        );
        plan.delay_proposals_during(
            1,
            Duration::from_millis(700),
            SimTime::from_secs(12),
            SimTime::MAX,
        );
        assert_eq!(plan.proposal_hold(1, SimTime::from_secs(6)).as_millis(), 100);
        assert!(plan.proposal_hold(1, SimTime::from_secs(9)).is_zero());
        assert_eq!(plan.proposal_hold(1, SimTime::from_secs(500)).as_millis(), 700);
        assert_eq!(plan.stages_for(1).len(), 2);
    }

    #[test]
    fn first_active_stage_wins_on_overlap() {
        let stages = vec![
            DelayStage::during(
                Duration::from_millis(300),
                SimTime::from_secs(0),
                SimTime::from_secs(20),
            ),
            DelayStage::during(
                Duration::from_millis(900),
                SimTime::from_secs(10),
                SimTime::MAX,
            ),
        ];
        assert_eq!(hold_at(&stages, SimTime::from_secs(15)).as_millis(), 300);
        assert_eq!(hold_at(&stages, SimTime::from_secs(25)).as_millis(), 900);
    }
}
