//! System-wide configuration: replica counts, quorum sizes, and role
//! assignments (the paper's "configuration" — an assignment of roles to
//! replicas, §2).

use serde::{Deserialize, Serialize};

/// Static parameters of a replicated system: `n` replicas of which up to `f`
/// may be Byzantine, with quorums of size `q = n - f`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Total number of replicas.
    pub n: usize,
    /// Maximum number of Byzantine replicas tolerated.
    pub f: usize,
    /// The paper's δ multiplier: after GST, observed latencies lie within
    /// `[L, δ·L]` of the actual latency. Stored here because protocol timers
    /// and the SuspicionSensor both need it. Defaults to 1.0 (the value used
    /// in the baseline experiments, §7.4).
    pub delta: f64,
}

impl SystemConfig {
    /// Create a configuration for `n` replicas, tolerating the maximum
    /// `f = ⌊(n-1)/3⌋` faults.
    ///
    /// # Panics
    /// Panics if `n < 4` (BFT requires `n ≥ 3f + 1 ≥ 4`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "BFT requires at least 4 replicas, got {n}");
        SystemConfig {
            n,
            f: (n - 1) / 3,
            delta: 1.0,
        }
    }

    /// Create a configuration with an explicit fault threshold.
    ///
    /// # Panics
    /// Panics unless `n ≥ 3f + 1`.
    pub fn with_f(n: usize, f: usize) -> Self {
        assert!(n > 3 * f, "n={n} must be at least 3f+1 for f={f}");
        SystemConfig { n, f, delta: 1.0 }
    }

    /// Set the δ timer multiplier.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta >= 1.0, "delta must be >= 1.0, got {delta}");
        self.delta = delta;
        self
    }

    /// Quorum size `q = n - f`.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// The `2f + 1` quorum used by PBFT-style protocols when `n = 3f + 1`.
    /// For larger `n` this still returns `n - f`, the intersection-safe size.
    pub fn byzantine_quorum(&self) -> usize {
        self.quorum()
    }

    /// Number of matching replies a client must collect (`f + 1`).
    pub fn reply_quorum(&self) -> usize {
        self.f + 1
    }

    /// All replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = usize> {
        0..self.n
    }

    /// Round-robin leader for a view.
    pub fn round_robin_leader(&self, view: u64) -> usize {
        (view % self.n as u64) as usize
    }

    /// Branch factor used for height-3 trees, `b = (sqrt(4n-3) - 1) / 2`
    /// (§7.3). This makes `1 + b + b²` just cover `n`.
    pub fn tree_branch_factor(&self) -> usize {
        let b = (((4 * self.n - 3) as f64).sqrt() - 1.0) / 2.0;
        b.ceil() as usize
    }
}

/// An assignment of special roles to replicas — the generic notion of
/// "configuration" from §2. Protocol crates attach their own meaning to the
/// entries (leader + voting weights for Aware, tree positions for Kauri).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleAssignment {
    /// The replica holding the leader (or tree-root) role.
    pub leader: usize,
    /// Replicas holding other special roles, in protocol-defined order
    /// (e.g. Aware's max-weight replicas, Kauri's intermediate nodes).
    pub special: Vec<usize>,
    /// Monotonically increasing configuration epoch.
    pub epoch: u64,
}

impl RoleAssignment {
    /// The initial assignment: replica 0 leads, no other special roles.
    pub fn initial() -> Self {
        RoleAssignment {
            leader: 0,
            special: Vec::new(),
            epoch: 0,
        }
    }

    /// All replicas holding special roles, including the leader.
    pub fn special_roles(&self) -> Vec<usize> {
        let mut v = vec![self.leader];
        v.extend(&self.special);
        v.dedup();
        v
    }

    /// True if every special role is held by a replica in `candidates`
    /// (the paper's validity condition for configurations, §4.2.4).
    pub fn is_valid(&self, candidates: &[usize]) -> bool {
        self.special_roles()
            .iter()
            .all(|r| candidates.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes() {
        let c = SystemConfig::new(4);
        assert_eq!(c.f, 1);
        assert_eq!(c.quorum(), 3);
        assert_eq!(c.reply_quorum(), 2);

        let c = SystemConfig::new(21);
        assert_eq!(c.f, 6);
        assert_eq!(c.quorum(), 15);

        let c = SystemConfig::new(73);
        assert_eq!(c.f, 24);
        assert_eq!(c.quorum(), 49);
    }

    #[test]
    fn explicit_f_allows_overprovisioning() {
        let c = SystemConfig::with_f(10, 2);
        assert_eq!(c.quorum(), 8);
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn with_f_rejects_too_many_faults() {
        SystemConfig::with_f(6, 2);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_small_system_rejected() {
        SystemConfig::new(3);
    }

    #[test]
    fn round_robin_rotates() {
        let c = SystemConfig::new(4);
        assert_eq!(c.round_robin_leader(0), 0);
        assert_eq!(c.round_robin_leader(5), 1);
        assert_eq!(c.round_robin_leader(7), 3);
    }

    #[test]
    fn branch_factor_matches_paper_formula() {
        // n=21 -> b=4 (paper §7.6: 21 replicas, branch factor 4)
        assert_eq!(SystemConfig::new(21).tree_branch_factor(), 4);
        // n=13 -> b=3 (Fig 5: 13 replicas, branch factor 3)
        assert_eq!(SystemConfig::new(13).tree_branch_factor(), 3);
        // n=73 -> b=8 (since 1+8+64 = 73)
        assert_eq!(SystemConfig::new(73).tree_branch_factor(), 8);
    }

    #[test]
    fn delta_must_be_at_least_one() {
        let c = SystemConfig::new(4).with_delta(1.4);
        assert_eq!(c.delta, 1.4);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn delta_below_one_rejected() {
        SystemConfig::new(4).with_delta(0.5);
    }

    #[test]
    fn role_assignment_validity() {
        let ra = RoleAssignment {
            leader: 2,
            special: vec![4, 5],
            epoch: 1,
        };
        assert!(ra.is_valid(&[1, 2, 3, 4, 5]));
        assert!(!ra.is_valid(&[1, 2, 3, 4]));
        assert_eq!(ra.special_roles(), vec![2, 4, 5]);
    }
}
