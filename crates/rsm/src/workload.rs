//! Workload generation.
//!
//! The paper's throughput experiments keep the leader saturated: clients are
//! co-located with replicas (zero latency) and replicas batch requests into
//! blocks of 1000 empty commands (§7.3). [`BlockSource`] reproduces that
//! setup: whenever the protocol asks for the next batch, a full block is
//! available.

use crate::block::Command;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A saturated source of command batches.
#[derive(Debug, Clone)]
pub struct BlockSource {
    batch_size: usize,
    payload_bytes: usize,
    next_seq: u64,
    client: u64,
}

impl BlockSource {
    /// A source producing batches of `batch_size` empty commands — the
    /// paper's benchmark workload.
    pub fn saturated(batch_size: usize) -> Self {
        BlockSource {
            batch_size,
            payload_bytes: 0,
            next_seq: 0,
            client: 0,
        }
    }

    /// A source producing batches with fixed-size payloads.
    pub fn with_payload(batch_size: usize, payload_bytes: usize) -> Self {
        BlockSource {
            batch_size,
            payload_bytes,
            next_seq: 0,
            client: 0,
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Produce the next batch of commands.
    pub fn next_batch(&mut self) -> Vec<Command> {
        (0..self.batch_size)
            .map(|_| {
                let seq = self.next_seq;
                self.next_seq += 1;
                Command::new(self.client, seq, vec![0u8; self.payload_bytes])
            })
            .collect()
    }

    /// Total commands generated so far.
    pub fn generated(&self) -> u64 {
        self.next_seq
    }
}

/// A declarative description of the client workload an experiment drives,
/// shared by the scenario layer so every substrate is loaded the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Commands per block (the paper's throughput runs use 1000).
    pub batch_size: usize,
    /// Payload bytes per command (0 = the paper's empty-command benchmark).
    pub payload_bytes: usize,
    /// Closed-loop clients for client-driven substrates; `None` places one
    /// client per replica.
    pub clients: Option<usize>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            batch_size: 1000,
            payload_bytes: 0,
            clients: None,
        }
    }
}

impl WorkloadSpec {
    /// The paper's saturated benchmark workload.
    pub fn saturated() -> Self {
        WorkloadSpec::default()
    }

    /// Override the batch size.
    pub fn with_batch(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Override the client count.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = Some(clients);
        self
    }

    /// The number of clients to run against `n` replicas.
    pub fn clients_for(&self, n: usize) -> usize {
        self.clients.unwrap_or(n)
    }

    /// Build the block source the spec describes.
    pub fn source(&self) -> BlockSource {
        if self.payload_bytes == 0 {
            BlockSource::saturated(self.batch_size)
        } else {
            BlockSource::with_payload(self.batch_size, self.payload_bytes)
        }
    }
}

/// Generates randomized key-value operations for the quickstart example and
/// integration tests, deterministically from a seed.
#[derive(Debug)]
pub struct KvWorkload {
    rng: StdRng,
    keys: usize,
    next_seq: u64,
}

impl KvWorkload {
    /// Create a workload over `keys` distinct keys.
    pub fn new(seed: u64, keys: usize) -> Self {
        KvWorkload {
            rng: StdRng::seed_from_u64(seed),
            keys: keys.max(1),
            next_seq: 0,
        }
    }

    /// Produce the next command: 80% puts, 20% deletes over a small key space.
    pub fn next_command(&mut self, client: u64) -> Command {
        use crate::app::KvOp;
        let key = format!("key-{}", self.rng.gen_range(0..self.keys));
        let op = if self.rng.gen_bool(0.8) {
            KvOp::Put {
                key,
                value: format!("value-{}", self.next_seq),
            }
        } else {
            KvOp::Delete { key }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        Command::new(client, seq, op.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::KvOp;

    #[test]
    fn saturated_source_produces_full_batches() {
        let mut src = BlockSource::saturated(1000);
        let batch = src.next_batch();
        assert_eq!(batch.len(), 1000);
        assert!(batch.iter().all(|c| c.payload.is_empty()));
        assert_eq!(src.generated(), 1000);
        assert_eq!(src.batch_size(), 1000);
    }

    #[test]
    fn sequence_numbers_are_unique_across_batches() {
        let mut src = BlockSource::saturated(10);
        let a = src.next_batch();
        let b = src.next_batch();
        assert_eq!(a[9].seq, 9);
        assert_eq!(b[0].seq, 10);
    }

    #[test]
    fn payload_source_sizes_commands() {
        let mut src = BlockSource::with_payload(5, 64);
        let batch = src.next_batch();
        assert!(batch.iter().all(|c| c.payload.len() == 64));
    }

    #[test]
    fn kv_workload_is_deterministic_and_decodable() {
        let mut a = KvWorkload::new(3, 10);
        let mut b = KvWorkload::new(3, 10);
        for _ in 0..50 {
            let ca = a.next_command(1);
            let cb = b.next_command(1);
            assert_eq!(ca, cb);
            assert!(KvOp::decode(&ca.payload).is_some());
        }
    }
}
