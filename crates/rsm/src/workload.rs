//! Workload generation.
//!
//! The paper's throughput experiments keep the leader saturated: clients are
//! co-located with replicas (zero latency) and replicas batch requests into
//! blocks of 1000 empty commands (§7.3). [`BlockSource`] reproduces that
//! setup: whenever the protocol asks for the next batch, a full block is
//! available.
//!
//! [`TrafficSpec`] is the *open-loop* alternative: instead of an always-full
//! source it describes an offered load — an [`ArrivalProcess`], a client
//! population, a size-or-timeout [`BatchingPolicy`], and a bounded admission
//! queue with an SLO deadline. The spec is pure data (this crate stays
//! sampling-free); the `traffic` crate compiles it into the per-run arrival
//! schedule and admission queue the substrates consume.

use crate::block::Command;
use runtime::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A saturated source of command batches.
#[derive(Debug, Clone)]
pub struct BlockSource {
    batch_size: usize,
    payload_bytes: usize,
    next_seq: u64,
    client: u64,
}

impl BlockSource {
    /// A source producing batches of `batch_size` empty commands — the
    /// paper's benchmark workload.
    pub fn saturated(batch_size: usize) -> Self {
        BlockSource {
            batch_size,
            payload_bytes: 0,
            next_seq: 0,
            client: 0,
        }
    }

    /// A source producing batches with fixed-size payloads.
    pub fn with_payload(batch_size: usize, payload_bytes: usize) -> Self {
        BlockSource {
            batch_size,
            payload_bytes,
            next_seq: 0,
            client: 0,
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Produce the next batch of commands.
    pub fn next_batch(&mut self) -> Vec<Command> {
        (0..self.batch_size)
            .map(|_| {
                let seq = self.next_seq;
                self.next_seq += 1;
                Command::new(self.client, seq, vec![0u8; self.payload_bytes])
            })
            .collect()
    }

    /// Total commands generated so far.
    pub fn generated(&self) -> u64 {
        self.next_seq
    }
}

/// A declarative description of the client workload an experiment drives,
/// shared by the scenario layer so every substrate is loaded the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Commands per block (the paper's throughput runs use 1000).
    pub batch_size: usize,
    /// Payload bytes per command (0 = the paper's empty-command benchmark).
    pub payload_bytes: usize,
    /// Closed-loop clients for client-driven substrates; `None` places one
    /// client per replica.
    pub clients: Option<usize>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            batch_size: 1000,
            payload_bytes: 0,
            clients: None,
        }
    }
}

impl WorkloadSpec {
    /// The paper's saturated benchmark workload.
    pub fn saturated() -> Self {
        WorkloadSpec::default()
    }

    /// Override the batch size.
    pub fn with_batch(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Override the client count.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = Some(clients);
        self
    }

    /// The number of clients to run against `n` replicas.
    pub fn clients_for(&self, n: usize) -> usize {
        self.clients.unwrap_or(n)
    }

    /// Build the block source the spec describes.
    pub fn source(&self) -> BlockSource {
        if self.payload_bytes == 0 {
            BlockSource::saturated(self.batch_size)
        } else {
            BlockSource::with_payload(self.batch_size, self.payload_bytes)
        }
    }
}

/// An open-loop arrival process: how request inter-arrival times are drawn.
/// Rates are in commands per second of virtual time; sampling lives in the
/// `traffic` crate (this is the declarative description a scenario carries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate (exponential inter-arrivals).
    Poisson {
        /// Offered load in commands per second.
        rate: f64,
    },
    /// Bursty on/off traffic: Poisson at `rate` during `on`, silent during
    /// `off`, repeating. The long-run mean rate is `rate · on / (on + off)`.
    OnOff {
        /// Offered load during the on-phase.
        rate: f64,
        /// Length of the on-phase.
        on: Duration,
        /// Length of the off-phase.
        off: Duration,
    },
    /// A linear ramp from `from` to `to` over `over`, constant afterwards —
    /// the load pattern that walks a run across the saturation knee.
    Ramp {
        /// Initial rate.
        from: f64,
        /// Final rate.
        to: f64,
        /// Ramp duration.
        over: Duration,
    },
    /// A sinusoidal day/night pattern: `mean · (1 + amplitude · sin(2πt/period))`.
    Diurnal {
        /// Mean rate over a whole period.
        mean: f64,
        /// Relative swing in `[0, 1)`.
        amplitude: f64,
        /// Period of one day.
        period: Duration,
    },
}

impl ArrivalProcess {
    /// The peak instantaneous rate, used as the thinning envelope by the
    /// sampler and as a sanity bound by capacity planning.
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff { rate, .. } => rate,
            ArrivalProcess::Ramp { from, to, .. } => from.max(to),
            ArrivalProcess::Diurnal { mean, amplitude, .. } => mean * (1.0 + amplitude),
        }
    }

    /// The long-run mean rate over a horizon of `secs` seconds.
    pub fn mean_rate(&self, secs: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff { rate, on, off } => {
                let cycle = on.as_secs_f64() + off.as_secs_f64();
                if cycle == 0.0 {
                    rate
                } else {
                    rate * on.as_secs_f64() / cycle
                }
            }
            ArrivalProcess::Ramp { from, to, over } => {
                let over = over.as_secs_f64();
                if over == 0.0 || secs <= 0.0 {
                    to
                } else if secs <= over {
                    // Mean of the linear segment covered so far.
                    (from + (from + (to - from) * secs / over)) / 2.0
                } else {
                    // Average of the ramp segment and the constant tail.
                    ((from + to) / 2.0 * over + to * (secs - over)) / secs
                }
            }
            ArrivalProcess::Diurnal { mean, .. } => mean,
        }
    }

    /// Compact label for sweep-axis names, e.g. `poisson@2000`.
    pub fn label(&self) -> String {
        match *self {
            ArrivalProcess::Poisson { rate } => format!("poisson@{rate:.0}"),
            ArrivalProcess::OnOff { rate, .. } => format!("onoff@{rate:.0}"),
            ArrivalProcess::Ramp { from, to, .. } => format!("ramp@{from:.0}-{to:.0}"),
            ArrivalProcess::Diurnal { mean, .. } => format!("diurnal@{mean:.0}"),
        }
    }
}

/// The leader-side size-or-timeout batching rule: a batch is flushed when it
/// reaches `max_batch` commands *or* the oldest queued command has waited
/// `max_delay`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchingPolicy {
    /// Commands per batch at the size threshold.
    pub max_batch: usize,
    /// Longest a queued command may wait before a partial batch is flushed.
    pub max_delay: Duration,
}

impl Default for BatchingPolicy {
    fn default() -> Self {
        BatchingPolicy {
            max_batch: 1000,
            max_delay: Duration::from_millis(50),
        }
    }
}

/// A declarative open-loop traffic workload: the offered-load counterpart of
/// the saturated [`WorkloadSpec`]. Pure data — the `traffic` crate turns it
/// into a seeded arrival schedule and a leader-side admission queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// The arrival process generating requests.
    pub arrivals: ArrivalProcess,
    /// Number of geo-distributed clients the arrivals are spread over.
    pub clients: usize,
    /// The leader-side batching rule.
    pub batching: BatchingPolicy,
    /// Admission-queue bound: arrivals beyond this are rejected
    /// (backpressure) instead of queued.
    pub queue_capacity: usize,
    /// End-to-end deadline: commands whose client-observed latency exceeds
    /// it do not count towards *goodput*.
    pub slo: Duration,
    /// How many times a client re-submits a command whose batch was dropped
    /// (e.g. by a tree reconfiguration discarding in-flight views) before
    /// giving up. Retried commands re-enter the admission queue and are
    /// accounted once, with their original send time.
    pub max_retries: u32,
}

impl TrafficSpec {
    /// Poisson arrivals at `rate` commands/s with library defaults:
    /// 64 clients, 1000/50 ms batching, a 10 000-command queue, 1 s SLO,
    /// 3 client retries for dropped batches.
    pub fn poisson(rate: f64) -> Self {
        TrafficSpec {
            arrivals: ArrivalProcess::Poisson { rate },
            clients: 64,
            batching: BatchingPolicy::default(),
            queue_capacity: 10_000,
            slo: Duration::from_secs(1),
            max_retries: 3,
        }
    }

    /// Replace the arrival process.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Override the client-population size.
    pub fn with_clients(mut self, clients: usize) -> Self {
        assert!(clients > 0, "traffic needs at least one client");
        self.clients = clients;
        self
    }

    /// Override the batching rule.
    pub fn with_batching(mut self, max_batch: usize, max_delay: Duration) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        self.batching = BatchingPolicy { max_batch, max_delay };
        self
    }

    /// Override the admission-queue bound.
    pub fn with_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Override the goodput SLO deadline.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.slo = slo;
        self
    }

    /// Override the client retry bound for dropped batches (0 = dropped
    /// batches are lost, the pre-retry behaviour).
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Label for sweep-axis names, e.g. `poisson@2000`.
    pub fn label(&self) -> String {
        self.arrivals.label()
    }
}

/// Generates randomized key-value operations for the quickstart example and
/// integration tests, deterministically from a seed.
#[derive(Debug)]
pub struct KvWorkload {
    rng: StdRng,
    keys: usize,
    next_seq: u64,
}

impl KvWorkload {
    /// Create a workload over `keys` distinct keys.
    pub fn new(seed: u64, keys: usize) -> Self {
        KvWorkload {
            rng: StdRng::seed_from_u64(seed),
            keys: keys.max(1),
            next_seq: 0,
        }
    }

    /// Produce the next command: 80% puts, 20% deletes over a small key space.
    pub fn next_command(&mut self, client: u64) -> Command {
        use crate::app::KvOp;
        let key = format!("key-{}", self.rng.gen_range(0..self.keys));
        let op = if self.rng.gen_bool(0.8) {
            KvOp::Put {
                key,
                value: format!("value-{}", self.next_seq),
            }
        } else {
            KvOp::Delete { key }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        Command::new(client, seq, op.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::KvOp;

    #[test]
    fn saturated_source_produces_full_batches() {
        let mut src = BlockSource::saturated(1000);
        let batch = src.next_batch();
        assert_eq!(batch.len(), 1000);
        assert!(batch.iter().all(|c| c.payload.is_empty()));
        assert_eq!(src.generated(), 1000);
        assert_eq!(src.batch_size(), 1000);
    }

    #[test]
    fn sequence_numbers_are_unique_across_batches() {
        let mut src = BlockSource::saturated(10);
        let a = src.next_batch();
        let b = src.next_batch();
        assert_eq!(a[9].seq, 9);
        assert_eq!(b[0].seq, 10);
    }

    #[test]
    fn payload_source_sizes_commands() {
        let mut src = BlockSource::with_payload(5, 64);
        let batch = src.next_batch();
        assert!(batch.iter().all(|c| c.payload.len() == 64));
    }

    #[test]
    fn arrival_process_rates() {
        let p = ArrivalProcess::Poisson { rate: 1000.0 };
        assert_eq!(p.peak_rate(), 1000.0);
        assert_eq!(p.mean_rate(60.0), 1000.0);

        let oo = ArrivalProcess::OnOff {
            rate: 2000.0,
            on: Duration::from_secs(1),
            off: Duration::from_secs(3),
        };
        assert_eq!(oo.peak_rate(), 2000.0);
        assert_eq!(oo.mean_rate(60.0), 500.0);

        let r = ArrivalProcess::Ramp {
            from: 100.0,
            to: 900.0,
            over: Duration::from_secs(10),
        };
        assert_eq!(r.peak_rate(), 900.0);
        // Over the ramp itself the mean is the midpoint…
        assert_eq!(r.mean_rate(10.0), 500.0);
        // …and the constant tail pulls it towards `to`.
        assert!((r.mean_rate(20.0) - 700.0).abs() < 1e-9);

        let d = ArrivalProcess::Diurnal {
            mean: 400.0,
            amplitude: 0.5,
            period: Duration::from_secs(30),
        };
        assert_eq!(d.peak_rate(), 600.0);
        assert_eq!(d.mean_rate(120.0), 400.0);
    }

    #[test]
    fn traffic_spec_builders_and_labels() {
        let t = TrafficSpec::poisson(2000.0)
            .with_clients(32)
            .with_batching(200, Duration::from_millis(25))
            .with_capacity(4000)
            .with_slo(Duration::from_millis(800));
        assert_eq!(t.clients, 32);
        assert_eq!(t.batching.max_batch, 200);
        assert_eq!(t.batching.max_delay.as_millis(), 25);
        assert_eq!(t.queue_capacity, 4000);
        assert_eq!(t.slo.as_millis(), 800);
        assert_eq!(t.label(), "poisson@2000");
        assert_eq!(
            t.with_arrivals(ArrivalProcess::Ramp {
                from: 10.0,
                to: 90.0,
                over: Duration::from_secs(5)
            })
            .label(),
            "ramp@10-90"
        );
    }

    #[test]
    fn kv_workload_is_deterministic_and_decodable() {
        let mut a = KvWorkload::new(3, 10);
        let mut b = KvWorkload::new(3, 10);
        for _ in 0..50 {
            let ca = a.next_command(1);
            let cb = b.next_command(1);
            assert_eq!(ca, cb);
            assert!(KvOp::decode(&ca.payload).is_some());
        }
    }
}
