//! Property-based tests for OptiLog's core data structures and invariants.

use optilog::{
    CandidateSelector, LatencyMatrix, LatencyVector, SelectionStrategy, Suspicion, SuspicionKind,
    SuspicionGraph, SuspicionMonitor, SuspicionMonitorParams, TreeExclusion,
};
use proptest::prelude::*;

/// Strategy: a random undirected graph over `n` vertices as an edge list.
fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The candidate set returned by the MIS strategy is always an
    /// independent set of the suspicion graph.
    #[test]
    fn mis_candidates_are_independent(edge_list in edges(20, 60)) {
        let mut g = SuspicionGraph::new(0..20);
        for (a, b) in edge_list {
            g.add_edge(a, b);
        }
        let sel = CandidateSelector::new(SelectionStrategy::MaxIndependentSet { budget: 50_000 })
            .select(&g);
        prop_assert!(g.is_independent_set(&sel.candidates));
        prop_assert_eq!(sel.estimate_u, g.vertex_count() - sel.candidates.len());
    }

    /// Lemma 1 (C1): if suspicions only ever involve at most f distinct faulty
    /// replicas, the candidate set keeps at least n − f members.
    #[test]
    fn candidate_floor_holds_when_f_replicas_attack(
        accusations in prop::collection::vec((0usize..4, 4usize..13), 1..40)
    ) {
        // Replicas 0..4 are faulty and suspect correct replicas 4..13.
        let n = 13;
        let f = 4;
        let mut monitor = SuspicionMonitor::new(SuspicionMonitorParams::new(n, f));
        for (i, (faulty, correct)) in accusations.iter().enumerate() {
            monitor.on_suspicion(&Suspicion {
                kind: SuspicionKind::Slow,
                accuser: *faulty,
                accused: *correct,
                round: i as u64,
                phase: 1,
                accuser_is_leader: false,
            });
            monitor.on_suspicion(&Suspicion {
                kind: SuspicionKind::False,
                accuser: *correct,
                accused: *faulty,
                round: i as u64,
                phase: 1,
                accuser_is_leader: false,
            });
        }
        let sel = monitor.selection();
        prop_assert!(sel.candidates.len() >= n - f,
            "only {} candidates left", sel.candidates.len());
    }

    /// The tree-exclusion structure always produces a disjoint, maximal edge
    /// set and an estimate equal to |E_d| + |T| (§6.4).
    #[test]
    fn tree_exclusion_invariants(edge_list in edges(16, 40)) {
        let mut g = SuspicionGraph::new(0..16);
        for (a, b) in edge_list {
            g.add_edge(a, b);
        }
        let excl = TreeExclusion::compute(&g);
        // Disjoint: no vertex covered twice.
        let mut covered = std::collections::BTreeSet::new();
        for &(a, b) in &excl.disjoint_edges {
            prop_assert!(covered.insert(a));
            prop_assert!(covered.insert(b));
        }
        // Maximal: every edge touches a covered vertex.
        for (a, b) in g.edges() {
            prop_assert!(covered.contains(&a) || covered.contains(&b));
        }
        prop_assert_eq!(excl.fault_estimate(), excl.disjoint_edges.len() + excl.triangles.len());
        // Candidates and excluded partition the vertex set.
        let k = excl.candidates(&g);
        prop_assert_eq!(k.len() + excl.excluded().len(), g.vertex_count());
    }

    /// The latency matrix stays symmetric with zero diagonal no matter which
    /// vectors are applied in which order.
    #[test]
    fn latency_matrix_symmetry(
        vectors in prop::collection::vec((0usize..6, prop::collection::vec(0.0f64..500.0, 6)), 0..20)
    ) {
        let mut m = LatencyMatrix::new(6);
        for (reporter, rtts) in vectors {
            m.apply_vector(&LatencyVector::new(reporter, rtts));
        }
        for a in 0..6 {
            prop_assert_eq!(m.rtt(a, a), 0.0);
            for b in 0..6 {
                prop_assert_eq!(m.rtt(a, b), m.rtt(b, a));
            }
        }
    }

    /// Processing the same suspicion stream at two monitors yields identical
    /// candidate sets and estimates (the determinism OptiLog relies on).
    #[test]
    fn suspicion_monitor_is_deterministic(
        stream in prop::collection::vec((0usize..10, 0usize..10, 0u64..30, 1u32..4), 0..60)
    ) {
        let run = || {
            let mut m = SuspicionMonitor::new(SuspicionMonitorParams::new(10, 3));
            for (accuser, accused, round, phase) in &stream {
                m.on_suspicion(&Suspicion {
                    kind: SuspicionKind::Slow,
                    accuser: *accuser,
                    accused: *accused,
                    round: *round,
                    phase: *phase,
                    accuser_is_leader: false,
                });
            }
            m.selection()
        };
        prop_assert_eq!(run(), run());
    }
}
