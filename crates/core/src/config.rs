//! Configuration monitoring (§4.2.4).
//!
//! The ConfigSensor searches for a better configuration (typically with
//! simulated annealing, see [`crate::annealing`]) and proposes the best one
//! it found via the log. The [`ConfigMonitor`] — identical and deterministic
//! at every replica — validates proposals against the candidate set, waits
//! for at least `f + 1` proposals before deciding (so a single faulty replica
//! cannot force a bad configuration), and only replaces a still-valid
//! configuration when the improvement is significant.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A configuration proposal as produced by a ConfigSensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigProposal<C> {
    /// The proposing replica.
    pub proposer: usize,
    /// The epoch this proposal targets (must be `current_epoch + 1`).
    pub epoch: u64,
    /// The proposed configuration.
    pub config: C,
    /// The proposer's claimed score (lower is better). The monitor re-scores
    /// proposals itself; the claim is only used for diagnostics.
    pub claimed_score: f64,
}

/// Outcome of processing a proposal.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigDecision<C> {
    /// A new configuration was adopted; reconfigure the protocol to it.
    Adopt {
        /// The adopted configuration.
        config: C,
        /// Its epoch.
        epoch: u64,
        /// Its (re-computed) score.
        score: f64,
    },
    /// Not enough proposals yet, or no sufficient improvement.
    Pending {
        /// Distinct proposers seen for the next epoch.
        have: usize,
        /// Proposers required before a decision (`f + 1`).
        need: usize,
    },
    /// The proposal was rejected (invalid configuration or wrong epoch).
    Rejected(&'static str),
}

/// Parameters of the ConfigMonitor.
#[derive(Debug, Clone, Copy)]
pub struct ConfigMonitorParams {
    /// Fault threshold `f`: decisions wait for `f + 1` distinct proposers.
    pub f: usize,
    /// When the current configuration is still valid, a replacement must
    /// score below `improvement_factor × current_score` (e.g. `0.8` = at
    /// least 20 % better) to avoid disruptive reconfigurations.
    pub improvement_factor: f64,
}

impl ConfigMonitorParams {
    /// Default: wait for `f + 1` proposals, require 20 % improvement to
    /// replace a valid configuration.
    pub fn new(f: usize) -> Self {
        ConfigMonitorParams {
            f,
            improvement_factor: 0.8,
        }
    }
}

/// The deterministic configuration monitor.
#[derive(Debug, Clone)]
pub struct ConfigMonitor<C> {
    params: ConfigMonitorParams,
    current: Option<C>,
    current_score: f64,
    current_epoch: u64,
    current_valid: bool,
    /// Best pending proposal per proposer for epoch `current_epoch + 1`,
    /// scored by the monitor itself.
    pending: BTreeMap<usize, (C, f64)>,
}

impl<C: Clone> ConfigMonitor<C> {
    /// Create a monitor with no active configuration.
    pub fn new(params: ConfigMonitorParams) -> Self {
        ConfigMonitor {
            params,
            current: None,
            current_score: f64::INFINITY,
            current_epoch: 0,
            current_valid: false,
            pending: BTreeMap::new(),
        }
    }

    /// Install an initial configuration without going through proposals
    /// (system bootstrap).
    pub fn bootstrap(&mut self, config: C, score: f64) {
        self.current = Some(config);
        self.current_score = score;
        self.current_epoch = 1;
        self.current_valid = true;
        self.pending.clear();
    }

    /// The active configuration, if any.
    pub fn current(&self) -> Option<&C> {
        self.current.as_ref()
    }

    /// The active configuration's epoch.
    pub fn epoch(&self) -> u64 {
        self.current_epoch
    }

    /// The active configuration's score.
    pub fn current_score(&self) -> f64 {
        self.current_score
    }

    /// True if the current configuration is still valid w.r.t. the latest
    /// candidate set.
    pub fn is_current_valid(&self) -> bool {
        self.current_valid
    }

    /// Number of distinct proposers pending for the next epoch.
    pub fn pending_proposers(&self) -> usize {
        self.pending.len()
    }

    /// Mark the current configuration invalid (e.g. the candidate set `K`
    /// changed and a special role is now held by a non-candidate).
    pub fn invalidate_current(&mut self) {
        self.current_valid = false;
    }

    /// Re-mark the current configuration valid (e.g. after suspicions expired).
    pub fn revalidate_current(&mut self) {
        if self.current.is_some() {
            self.current_valid = true;
        }
    }

    /// Process a committed proposal.
    ///
    /// * `is_valid` checks the configuration against the candidate set
    ///   (all special roles held by candidates, §4.2.4).
    /// * `rescore` recomputes the score deterministically from the shared
    ///   latency matrix and fault estimate — the monitor never trusts the
    ///   proposer's claimed score.
    pub fn on_proposal(
        &mut self,
        proposal: &ConfigProposal<C>,
        is_valid: impl Fn(&C) -> bool,
        rescore: impl Fn(&C) -> f64,
    ) -> ConfigDecision<C> {
        if proposal.epoch != self.current_epoch + 1 {
            return ConfigDecision::Rejected("wrong epoch");
        }
        if !is_valid(&proposal.config) {
            return ConfigDecision::Rejected("invalid configuration");
        }
        let score = rescore(&proposal.config);
        // Keep the proposer's best proposal.
        match self.pending.get(&proposal.proposer) {
            Some((_, existing)) if *existing <= score => {}
            _ => {
                self.pending
                    .insert(proposal.proposer, (proposal.config.clone(), score));
            }
        }
        self.decide()
    }

    /// Attempt a decision with the proposals collected so far. Exposed so a
    /// caller can also re-evaluate after invalidating the current
    /// configuration without a new proposal arriving.
    pub fn decide(&mut self) -> ConfigDecision<C> {
        let need = self.params.f + 1;
        let have = self.pending.len();
        if have < need {
            return ConfigDecision::Pending { have, need };
        }
        let (best_config, best_score) = self
            .pending
            .values()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
            .cloned()
            .expect("pending non-empty");

        let should_adopt = if !self.current_valid || self.current.is_none() {
            true
        } else {
            best_score < self.current_score * self.params.improvement_factor
        };

        if !should_adopt {
            return ConfigDecision::Pending { have, need };
        }

        self.current = Some(best_config.clone());
        self.current_score = best_score;
        self.current_epoch += 1;
        self.current_valid = true;
        self.pending.clear();
        ConfigDecision::Adopt {
            config: best_config,
            epoch: self.current_epoch,
            score: best_score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Cfg = Vec<usize>; // e.g. list of special-role holders

    fn proposal(proposer: usize, epoch: u64, config: Cfg, score: f64) -> ConfigProposal<Cfg> {
        ConfigProposal {
            proposer,
            epoch,
            config,
            claimed_score: score,
        }
    }

    fn always_valid(_: &Cfg) -> bool {
        true
    }

    #[test]
    fn waits_for_f_plus_one_proposers() {
        let mut m: ConfigMonitor<Cfg> = ConfigMonitor::new(ConfigMonitorParams::new(2));
        let score = |c: &Cfg| c[0] as f64;
        assert_eq!(
            m.on_proposal(&proposal(0, 1, vec![50], 50.0), always_valid, score),
            ConfigDecision::Pending { have: 1, need: 3 }
        );
        assert_eq!(
            m.on_proposal(&proposal(1, 1, vec![40], 40.0), always_valid, score),
            ConfigDecision::Pending { have: 2, need: 3 }
        );
        match m.on_proposal(&proposal(2, 1, vec![60], 60.0), always_valid, score) {
            ConfigDecision::Adopt { config, epoch, score } => {
                assert_eq!(config, vec![40], "best-scoring proposal wins");
                assert_eq!(epoch, 1);
                assert_eq!(score, 40.0);
            }
            other => panic!("expected adoption, got {other:?}"),
        }
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.pending_proposers(), 0);
    }

    #[test]
    fn duplicate_proposer_does_not_count_twice() {
        let mut m: ConfigMonitor<Cfg> = ConfigMonitor::new(ConfigMonitorParams::new(1));
        let score = |c: &Cfg| c[0] as f64;
        m.on_proposal(&proposal(0, 1, vec![50], 50.0), always_valid, score);
        let d = m.on_proposal(&proposal(0, 1, vec![45], 45.0), always_valid, score);
        assert_eq!(d, ConfigDecision::Pending { have: 1, need: 2 });
    }

    #[test]
    fn invalid_and_wrong_epoch_rejected() {
        let mut m: ConfigMonitor<Cfg> = ConfigMonitor::new(ConfigMonitorParams::new(1));
        let score = |_: &Cfg| 1.0;
        assert_eq!(
            m.on_proposal(&proposal(0, 5, vec![1], 1.0), always_valid, score),
            ConfigDecision::Rejected("wrong epoch")
        );
        assert_eq!(
            m.on_proposal(&proposal(0, 1, vec![1], 1.0), |_| false, score),
            ConfigDecision::Rejected("invalid configuration")
        );
    }

    #[test]
    fn valid_current_requires_significant_improvement() {
        let mut m: ConfigMonitor<Cfg> = ConfigMonitor::new(ConfigMonitorParams::new(1));
        m.bootstrap(vec![100], 100.0);
        let score = |c: &Cfg| c[0] as f64;

        // 90 is better but not 20% better than 100 → no reconfiguration.
        m.on_proposal(&proposal(0, 2, vec![90], 90.0), always_valid, score);
        let d = m.on_proposal(&proposal(1, 2, vec![95], 95.0), always_valid, score);
        assert!(matches!(d, ConfigDecision::Pending { .. }));
        assert_eq!(m.epoch(), 1);

        // A 70-scoring proposal clears the 0.8 threshold.
        match m.on_proposal(&proposal(2, 2, vec![70], 70.0), always_valid, score) {
            ConfigDecision::Adopt { config, epoch, .. } => {
                assert_eq!(config, vec![70]);
                assert_eq!(epoch, 2);
            }
            other => panic!("expected adoption, got {other:?}"),
        }
    }

    #[test]
    fn invalidation_forces_adoption_of_best_available() {
        let mut m: ConfigMonitor<Cfg> = ConfigMonitor::new(ConfigMonitorParams::new(1));
        m.bootstrap(vec![10], 10.0);
        let score = |c: &Cfg| c[0] as f64;

        // Current config is great, proposals are worse → pending.
        m.on_proposal(&proposal(0, 2, vec![200], 200.0), always_valid, score);
        m.on_proposal(&proposal(1, 2, vec![150], 150.0), always_valid, score);
        assert_eq!(m.epoch(), 1);

        // The candidate set changed and invalidated the current configuration:
        // the monitor must now reconfigure even to a worse-scoring one.
        m.invalidate_current();
        match m.decide() {
            ConfigDecision::Adopt { config, .. } => assert_eq!(config, vec![150]),
            other => panic!("expected adoption, got {other:?}"),
        }
        assert!(m.is_current_valid());
    }

    #[test]
    fn monitor_rescores_rather_than_trusting_claims() {
        let mut m: ConfigMonitor<Cfg> = ConfigMonitor::new(ConfigMonitorParams::new(0));
        // Claimed score lies (0.0), real score is 500.
        let d = m.on_proposal(
            &proposal(3, 1, vec![500], 0.0),
            always_valid,
            |c| c[0] as f64,
        );
        match d {
            ConfigDecision::Adopt { score, .. } => assert_eq!(score, 500.0),
            other => panic!("expected adoption, got {other:?}"),
        }
    }
}
