//! A ready-made OptiLog instance wiring the whole §4.2 pipeline together.
//!
//! Protocol integrations (OptiAware, OptiTree) need the same plumbing: feed
//! committed measurements to the right monitor, keep the suspicion monitor's
//! faulty set in sync with the misbehavior monitor, and expose the latency
//! matrix, candidate set, and fault estimate. [`OptiLogInstance`] provides
//! that plumbing so each integration only supplies its protocol-specific
//! `score(·)` function and timeout derivation.

use crate::candidates::CandidateSelection;
use crate::latency::{LatencyMatrix, LatencyMonitor, LatencyVector};
use crate::measurement::{Measurement, MeasurementLog};
use crate::misbehavior::MisbehaviorMonitor;
use crate::suspicion::{Suspicion, SuspicionMonitor, SuspicionMonitorParams};
use crypto::{Complaint, Keyring};
use std::collections::BTreeSet;

/// One replica's view of the OptiLog monitors, fed from the shared log.
///
/// Because every replica feeds the same committed measurements in the same
/// order, all instances derive identical matrices, candidate sets, and fault
/// estimates — the consistency property of Table 1.
#[derive(Debug, Clone)]
pub struct OptiLogInstance {
    log: MeasurementLog,
    latency: LatencyMonitor,
    misbehavior: MisbehaviorMonitor,
    suspicion: SuspicionMonitor,
}

impl OptiLogInstance {
    /// Create an instance for an `n`-replica system.
    pub fn new(keyring: Keyring, params: SuspicionMonitorParams) -> Self {
        let n = params.n;
        OptiLogInstance {
            log: MeasurementLog::new(),
            latency: LatencyMonitor::new(n),
            misbehavior: MisbehaviorMonitor::new(keyring),
            suspicion: SuspicionMonitor::new(params),
        }
    }

    /// Feed one committed measurement (in log order).
    pub fn on_measurement(&mut self, m: &Measurement) {
        self.log.append(m.clone());
        match m {
            Measurement::Latency(v) => self.on_latency(v),
            Measurement::Suspicion(s) => self.on_suspicion(s),
            Measurement::Complaint(c) => self.on_complaint(c),
            Measurement::Config(_) => {
                // Config proposals are consumed by the protocol-specific
                // ConfigMonitor; the shared instance only records them.
            }
        }
    }

    /// Feed a committed latency vector.
    pub fn on_latency(&mut self, v: &LatencyVector) {
        self.latency.on_vector(v);
    }

    /// Feed a committed suspicion.
    pub fn on_suspicion(&mut self, s: &Suspicion) {
        self.suspicion.on_suspicion(s);
    }

    /// Feed a committed misbehavior complaint; the suspicion monitor's
    /// faulty set is updated if the proof verifies.
    pub fn on_complaint(&mut self, c: &Complaint) {
        if self.misbehavior.on_complaint(c) {
            self.suspicion.set_faulty(self.misbehavior.faulty().clone());
        }
    }

    /// Advance to a new view (leader change) — drives reciprocation windows
    /// and suspicion expiry.
    pub fn on_view(&mut self, view: u64) {
        self.suspicion.on_view(view);
    }

    /// The shared latency matrix `L`.
    pub fn latency_matrix(&self) -> &LatencyMatrix {
        self.latency.matrix()
    }

    /// The provably faulty set `F`.
    pub fn faulty(&self) -> &BTreeSet<usize> {
        self.misbehavior.faulty()
    }

    /// The crash set `C`.
    pub fn crashed(&self) -> &BTreeSet<usize> {
        self.suspicion.crashed()
    }

    /// The candidate set `K` and estimate `u`.
    pub fn selection(&mut self) -> CandidateSelection {
        self.suspicion.selection()
    }

    /// The underlying measurement log (for overhead accounting and forensics).
    pub fn log(&self) -> &MeasurementLog {
        &self.log
    }

    /// Mutable access to the suspicion monitor (protocol-specific tuning).
    pub fn suspicion_monitor_mut(&mut self) -> &mut SuspicionMonitor {
        &mut self.suspicion
    }

    /// Access to the misbehavior monitor.
    pub fn misbehavior_monitor(&self) -> &MisbehaviorMonitor {
        &self.misbehavior
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suspicion::SuspicionKind;
    use crypto::{Digest, MisbehaviorKind, MisbehaviorProof};

    fn instance(n: usize, f: usize) -> (OptiLogInstance, Keyring) {
        let ring = Keyring::new(7, n);
        (
            OptiLogInstance::new(ring.clone(), SuspicionMonitorParams::new(n, f)),
            ring,
        )
    }

    fn slow(accuser: usize, accused: usize) -> Measurement {
        Measurement::Suspicion(Suspicion {
            kind: SuspicionKind::Slow,
            accuser,
            accused,
            round: 1,
            phase: 1,
            accuser_is_leader: false,
        })
    }

    #[test]
    fn identical_inputs_produce_identical_state() {
        let feed = |inst: &mut OptiLogInstance| {
            inst.on_measurement(&Measurement::Latency(LatencyVector::new(
                0,
                vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            )));
            inst.on_measurement(&slow(1, 2));
            inst.on_measurement(&slow(2, 1));
        };
        let (mut a, _) = instance(7, 2);
        let (mut b, _) = instance(7, 2);
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.log().prefix_digest(), b.log().prefix_digest());
        assert_eq!(a.selection(), b.selection());
        assert_eq!(a.latency_matrix().rtt(0, 1), b.latency_matrix().rtt(0, 1));
    }

    #[test]
    fn complaint_flows_into_suspicion_monitor_faulty_set() {
        let (mut inst, ring) = instance(7, 2);
        let d1 = Digest::of(b"a");
        let d2 = Digest::of(b"b");
        let proof = MisbehaviorProof {
            accused: 5,
            kind: MisbehaviorKind::Equivocation {
                view: 1,
                first: (d1, ring.key(5).sign(&d1)),
                second: (d2, ring.key(5).sign(&d2)),
            },
        };
        inst.on_measurement(&Measurement::Complaint(Complaint::new(0, proof, &ring)));
        assert!(inst.faulty().contains(&5));
        let sel = inst.selection();
        assert!(!sel.contains(5));
    }

    #[test]
    fn full_pipeline_excludes_suspected_pair_and_counts_bytes() {
        let (mut inst, _) = instance(7, 2);
        inst.on_measurement(&Measurement::Latency(LatencyVector::new(
            1,
            vec![15.0, 0.0, 25.0, 35.0, 45.0, 55.0, 65.0],
        )));
        inst.on_measurement(&slow(3, 4));
        inst.on_measurement(&slow(4, 3));
        let sel = inst.selection();
        assert_eq!(sel.estimate_u, 1);
        assert_eq!(sel.candidates.len(), 6);
        assert!(inst.log().bytes_for("latency") > 0);
        assert!(inst.log().bytes_for("suspicion") > 0);
        assert_eq!(inst.log().len(), 3);
    }

    #[test]
    fn view_progression_moves_unreciprocated_to_crashed() {
        let (mut inst, _) = instance(7, 2);
        inst.on_view(1);
        inst.on_measurement(&slow(0, 6));
        inst.on_view(10);
        assert!(inst.crashed().contains(&6));
    }
}
