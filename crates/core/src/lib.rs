//! # optilog — a logging framework for role assignment in Byzantine consensus
//!
//! This crate implements the paper's primary contribution: a framework of
//! *sensors* and *monitors* built around a shared, consensus-ordered,
//! append-only log of measurements. Sensors capture local, possibly
//! non-deterministic measurements (link latencies, suspicions, misbehavior
//! proofs, configuration search results) and propose them to the log; the
//! corresponding monitors consume the *committed* measurements — identical at
//! every replica — and deterministically derive metrics and reconfiguration
//! decisions (§4).
//!
//! The low-latency role-assignment pipeline of §4.2 is provided in full:
//!
//! * [`latency`] — LatencySensor / LatencyMonitor and the latency matrix `L`
//!   with the symmetric `max(Lr(A,B), Lr(B,A))` rule.
//! * [`misbehavior`] — MisbehaviorMonitor maintaining the provably-faulty set
//!   `F` from verified complaints.
//! * [`suspicion`] — SuspicionSensor (conditions (a), (b), (c)) and
//!   SuspicionMonitor (causal filtering, crash set `C`, suspicion graph `G`,
//!   candidate set `K`, estimate `u`, sliding-window expiry).
//! * [`graph`] — the suspicion graph with Bron-Kerbosch maximum-independent-
//!   set selection (§4.2.3) and the disjoint-edge/triangle variant used by
//!   OptiTree (§6.4).
//! * [`candidates`] — the two candidate-selection strategies packaged behind
//!   one interface.
//! * [`config`] — ConfigSensor / ConfigMonitor: validity against `K`, waiting
//!   for `f+1` proposals, score-based selection, improvement thresholds.
//! * [`annealing`] — the generic simulated-annealing search used by
//!   configuration sensors (§4.2.4).
//! * [`timing`] — timeout derivation: round duration `d_rnd`, per-message
//!   delays `d_m`, and the δ-scaled checks of Appendix C (TR1–TR3).
//! * [`measurement`] — the measurement types appended to the log and their
//!   wire-size model (Fig 13).
//! * [`pipeline`] — a ready-made [`pipeline::OptiLogInstance`] wiring all
//!   monitors together the way OptiAware and OptiTree consume them.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod annealing;
pub mod candidates;
pub mod config;
pub mod graph;
pub mod latency;
pub mod measurement;
pub mod misbehavior;
pub mod pipeline;
pub mod suspicion;
pub mod timing;

// The replicated configuration log every substrate adopts role configs
// through (weights, trees, suspicion-pair evidence) — re-exported so policy
// crates reach the whole pipeline from one place.
pub use configlog::{AdoptedConfig, ConfigCommand, ConfigLog, PhaseFilter, SuspicionPair};

pub use annealing::{Annealer, AnnealingParams, SearchSpace};
pub use candidates::{CandidateSelection, CandidateSelector, SelectionStrategy};
pub use config::{ConfigDecision, ConfigMonitor, ConfigMonitorParams, ConfigProposal};
pub use graph::{SuspicionGraph, TreeExclusion};
pub use latency::{LatencyMatrix, LatencyMonitor, LatencyVector};
pub use measurement::{Measurement, MeasurementLog};
pub use misbehavior::MisbehaviorMonitor;
pub use suspicion::{
    MessageExpectation, RoundObservation, Suspicion, SuspicionKind, SuspicionMonitor,
    SuspicionMonitorParams, SuspicionSensor, DEADLINE_SLACK,
};
pub use timing::{MessageTimeout, RoundTimeouts};
