//! Latency sensing and monitoring (§4.2.1).
//!
//! Each replica's LatencySensor compiles a *latency vector* of round-trip
//! times towards every other replica (from protocol messages or dedicated
//! probes) and proposes it to the log. The LatencyMonitor at every replica
//! folds committed vectors into the shared latency matrix `L`, preserving
//! symmetry with `L[A][B] = L[B][A] = max(Lr(A,B), Lr(B,A))`. Replicas that
//! fail to reply are recorded as unreachable (∞).

use runtime::Duration;
use serde::{Deserialize, Serialize};

/// Sentinel for an unreachable replica (the paper's ∞ entry).
pub const UNREACHABLE_MS: f64 = f64::INFINITY;

/// One replica's reported round-trip latencies towards all replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyVector {
    /// The reporting replica.
    pub reporter: usize,
    /// Round-trip latency in milliseconds to each replica; `f64::INFINITY`
    /// marks replicas that failed to reply, `0.0` at the reporter's own index.
    pub rtt_ms: Vec<f64>,
}

impl LatencyVector {
    /// Create a vector of `n` unreachable entries for `reporter`.
    pub fn unreachable(reporter: usize, n: usize) -> Self {
        let mut rtt_ms = vec![UNREACHABLE_MS; n];
        if reporter < n {
            rtt_ms[reporter] = 0.0;
        }
        LatencyVector { reporter, rtt_ms }
    }

    /// Create a vector from measured RTTs.
    pub fn new(reporter: usize, rtt_ms: Vec<f64>) -> Self {
        LatencyVector { reporter, rtt_ms }
    }

    /// Record a measurement towards `target`.
    pub fn record(&mut self, target: usize, rtt: Duration) {
        if target < self.rtt_ms.len() {
            self.rtt_ms[target] = rtt.as_millis_f64();
        }
    }

    /// Number of replicas covered.
    pub fn len(&self) -> usize {
        self.rtt_ms.len()
    }

    /// True if the vector covers no replicas.
    pub fn is_empty(&self) -> bool {
        self.rtt_ms.is_empty()
    }

    /// Wire size in bytes: 2 bytes per entry using the compact encoding the
    /// paper describes for keeping proposal overhead low (§7.8), plus the
    /// reporter id.
    pub fn wire_bytes(&self) -> usize {
        8 + 2 * self.rtt_ms.len()
    }
}

/// The shared latency matrix `L` derived from committed latency vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyMatrix {
    n: usize,
    /// Row-major RTT in milliseconds; `INFINITY` where unknown/unreachable.
    rtt_ms: Vec<f64>,
    /// Raw per-reporter recorded values, kept to re-derive symmetry on update.
    recorded: Vec<f64>,
}

impl LatencyMatrix {
    /// Create an empty (all-unknown) matrix for `n` replicas.
    pub fn new(n: usize) -> Self {
        let mut m = LatencyMatrix {
            n,
            rtt_ms: vec![UNREACHABLE_MS; n * n],
            recorded: vec![UNREACHABLE_MS; n * n],
        };
        for i in 0..n {
            m.rtt_ms[i * n + i] = 0.0;
            m.recorded[i * n + i] = 0.0;
        }
        m
    }

    /// Build a fully known matrix directly from RTT data (used by harnesses
    /// that bootstrap from the city dataset).
    pub fn from_rtt_ms(n: usize, rtt_ms: Vec<f64>) -> Self {
        assert_eq!(rtt_ms.len(), n * n, "matrix must be n*n");
        LatencyMatrix {
            n,
            recorded: rtt_ms.clone(),
            rtt_ms,
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers no replicas.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Symmetric RTT between two replicas in milliseconds.
    pub fn rtt(&self, a: usize, b: usize) -> f64 {
        self.rtt_ms[a * self.n + b]
    }

    /// One-way latency estimate (half the RTT) in milliseconds.
    pub fn one_way(&self, a: usize, b: usize) -> f64 {
        self.rtt(a, b) / 2.0
    }

    /// True if the latency between `a` and `b` is known (not ∞).
    pub fn is_known(&self, a: usize, b: usize) -> bool {
        self.rtt(a, b).is_finite()
    }

    /// True if every pair of replicas has a known latency.
    pub fn is_complete(&self) -> bool {
        (0..self.n).all(|a| (0..self.n).all(|b| self.is_known(a, b)))
    }

    /// Apply a committed latency vector: overwrite the reporter's row with
    /// the recorded values, then re-derive the symmetric matrix entry as
    /// `max` of the two directions (§4.2.1).
    pub fn apply_vector(&mut self, v: &LatencyVector) {
        if v.rtt_ms.len() != self.n || v.reporter >= self.n {
            return;
        }
        let r = v.reporter;
        for b in 0..self.n {
            if b == r {
                continue;
            }
            self.recorded[r * self.n + b] = v.rtt_ms[b];
            let ab = self.recorded[r * self.n + b];
            let ba = self.recorded[b * self.n + r];
            // max(recorded both ways); if only one direction known, use it.
            let sym = match (ab.is_finite(), ba.is_finite()) {
                (true, true) => ab.max(ba),
                (true, false) => ab,
                (false, true) => ba,
                (false, false) => UNREACHABLE_MS,
            };
            self.rtt_ms[r * self.n + b] = sym;
            self.rtt_ms[b * self.n + r] = sym;
        }
    }

    /// The full symmetric RTT matrix in milliseconds (row-major copy).
    pub fn to_vec(&self) -> Vec<f64> {
        self.rtt_ms.clone()
    }
}

/// The LatencyMonitor: consumes committed latency vectors and maintains `L`.
#[derive(Debug, Clone)]
pub struct LatencyMonitor {
    matrix: LatencyMatrix,
    vectors_applied: u64,
}

impl LatencyMonitor {
    /// Create a monitor for `n` replicas.
    pub fn new(n: usize) -> Self {
        LatencyMonitor {
            matrix: LatencyMatrix::new(n),
            vectors_applied: 0,
        }
    }

    /// Process a committed latency vector.
    pub fn on_vector(&mut self, v: &LatencyVector) {
        self.matrix.apply_vector(v);
        self.vectors_applied += 1;
    }

    /// The current latency matrix.
    pub fn matrix(&self) -> &LatencyMatrix {
        &self.matrix
    }

    /// Number of vectors applied so far.
    pub fn vectors_applied(&self) -> u64 {
        self.vectors_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_construction_and_recording() {
        let mut v = LatencyVector::unreachable(1, 4);
        assert_eq!(v.rtt_ms[1], 0.0);
        assert!(v.rtt_ms[0].is_infinite());
        v.record(0, Duration::from_millis(30));
        assert_eq!(v.rtt_ms[0], 30.0);
        assert_eq!(v.len(), 4);
        assert_eq!(v.wire_bytes(), 8 + 8);
    }

    #[test]
    fn matrix_symmetry_uses_max() {
        let mut m = LatencyMatrix::new(3);
        m.apply_vector(&LatencyVector::new(0, vec![0.0, 10.0, 20.0]));
        m.apply_vector(&LatencyVector::new(1, vec![14.0, 0.0, 30.0]));
        // L[0][1] = max(10, 14) = 14, both directions.
        assert_eq!(m.rtt(0, 1), 14.0);
        assert_eq!(m.rtt(1, 0), 14.0);
        // 0->2 known only from 0's report.
        assert_eq!(m.rtt(0, 2), 20.0);
        assert_eq!(m.rtt(2, 0), 20.0);
        assert_eq!(m.one_way(0, 1), 7.0);
    }

    #[test]
    fn later_vector_updates_symmetry() {
        let mut m = LatencyMatrix::new(2);
        m.apply_vector(&LatencyVector::new(0, vec![0.0, 10.0]));
        m.apply_vector(&LatencyVector::new(1, vec![50.0, 0.0]));
        assert_eq!(m.rtt(0, 1), 50.0);
        // Replica 1 re-reports a lower latency; max with 0's 10 -> 10.
        m.apply_vector(&LatencyVector::new(1, vec![5.0, 0.0]));
        assert_eq!(m.rtt(0, 1), 10.0);
    }

    #[test]
    fn unreachable_entries_stay_infinite() {
        let mut m = LatencyMatrix::new(3);
        let mut v = LatencyVector::unreachable(0, 3);
        v.record(1, Duration::from_millis(25));
        m.apply_vector(&v);
        assert!(m.is_known(0, 1));
        assert!(!m.is_known(0, 2));
        assert!(!m.is_complete());
    }

    #[test]
    fn completeness_after_all_reports() {
        let mut mon = LatencyMonitor::new(3);
        mon.on_vector(&LatencyVector::new(0, vec![0.0, 10.0, 20.0]));
        mon.on_vector(&LatencyVector::new(1, vec![10.0, 0.0, 15.0]));
        mon.on_vector(&LatencyVector::new(2, vec![20.0, 15.0, 0.0]));
        assert!(mon.matrix().is_complete());
        assert_eq!(mon.vectors_applied(), 3);
    }

    #[test]
    fn malformed_vector_ignored() {
        let mut m = LatencyMatrix::new(3);
        m.apply_vector(&LatencyVector::new(0, vec![0.0, 1.0])); // wrong length
        m.apply_vector(&LatencyVector::new(7, vec![0.0, 1.0, 2.0])); // bad reporter
        assert!(!m.is_known(0, 1));
    }

    #[test]
    fn from_rtt_matrix_is_complete() {
        let m = LatencyMatrix::from_rtt_ms(2, vec![0.0, 42.0, 42.0, 0.0]);
        assert!(m.is_complete());
        assert_eq!(m.rtt(0, 1), 42.0);
        assert_eq!(m.to_vec().len(), 4);
    }
}
