//! Misbehavior monitoring (§4.2.2).
//!
//! The MisbehaviorSensor lives inside the consensus engine (protocol crates
//! raise [`crypto::Complaint`]s when they observe provable violations); the
//! [`MisbehaviorMonitor`] here verifies committed complaints and maintains
//! the set `F` of provably faulty replicas, which the SuspicionMonitor and
//! the configuration search exclude from special roles.

use crypto::{Complaint, Keyring};
use std::collections::BTreeSet;

/// The MisbehaviorMonitor: verifies complaints and maintains `F`.
#[derive(Debug, Clone)]
pub struct MisbehaviorMonitor {
    keyring: Keyring,
    faulty: BTreeSet<usize>,
    verified_complaints: Vec<Complaint>,
    rejected: u64,
}

impl MisbehaviorMonitor {
    /// Create a monitor that verifies complaints against `keyring`.
    pub fn new(keyring: Keyring) -> Self {
        MisbehaviorMonitor {
            keyring,
            faulty: BTreeSet::new(),
            verified_complaints: Vec::new(),
            rejected: 0,
        }
    }

    /// Process a committed complaint: if the proof verifies, the accused is
    /// added to `F`. Returns `true` if the complaint was accepted.
    pub fn on_complaint(&mut self, complaint: &Complaint) -> bool {
        if complaint.verify(&self.keyring) {
            self.faulty.insert(complaint.proof.accused);
            self.verified_complaints.push(complaint.clone());
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// The provably faulty set `F`.
    pub fn faulty(&self) -> &BTreeSet<usize> {
        &self.faulty
    }

    /// True if `replica` is provably faulty.
    pub fn is_faulty(&self, replica: usize) -> bool {
        self.faulty.contains(&replica)
    }

    /// All verified complaints, retained for forensic analysis (§4.1).
    pub fn complaints(&self) -> &[Complaint] {
        &self.verified_complaints
    }

    /// Number of complaints rejected as unverifiable.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crypto::{Digest, MisbehaviorKind, MisbehaviorProof};

    fn equivocation(ring: &Keyring, accused: usize) -> MisbehaviorProof {
        let d1 = Digest::of(b"block-a");
        let d2 = Digest::of(b"block-b");
        MisbehaviorProof {
            accused,
            kind: MisbehaviorKind::Equivocation {
                view: 3,
                first: (d1, ring.key(accused).sign(&d1)),
                second: (d2, ring.key(accused).sign(&d2)),
            },
        }
    }

    #[test]
    fn valid_complaint_adds_to_faulty_set() {
        let ring = Keyring::new(5, 7);
        let mut m = MisbehaviorMonitor::new(ring.clone());
        let c = Complaint::new(0, equivocation(&ring, 4), &ring);
        assert!(m.on_complaint(&c));
        assert!(m.is_faulty(4));
        assert_eq!(m.faulty().len(), 1);
        assert_eq!(m.complaints().len(), 1);
    }

    #[test]
    fn invalid_complaint_rejected() {
        let ring = Keyring::new(5, 7);
        let mut m = MisbehaviorMonitor::new(ring.clone());
        // Frame attempt: proof accuses 4 but uses signatures from 3.
        let d1 = Digest::of(b"a");
        let d2 = Digest::of(b"b");
        let bogus = MisbehaviorProof {
            accused: 4,
            kind: MisbehaviorKind::Equivocation {
                view: 1,
                first: (d1, ring.key(3).sign(&d1)),
                second: (d2, ring.key(3).sign(&d2)),
            },
        };
        let c = Complaint::new(0, bogus, &ring);
        assert!(!m.on_complaint(&c));
        assert!(m.faulty().is_empty());
        assert_eq!(m.rejected(), 1);
    }

    #[test]
    fn duplicate_complaints_idempotent() {
        let ring = Keyring::new(5, 7);
        let mut m = MisbehaviorMonitor::new(ring.clone());
        let c = Complaint::new(1, equivocation(&ring, 2), &ring);
        assert!(m.on_complaint(&c));
        assert!(m.on_complaint(&c));
        assert_eq!(m.faulty().len(), 1);
        assert_eq!(m.complaints().len(), 2, "both retained for forensics");
    }
}
