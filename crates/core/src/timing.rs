//! Timeout derivation: round duration `d_rnd` and per-message delays `d_m`.
//!
//! The SuspicionSensor needs, for every protocol message `m`, the expected
//! delay `d_m` from the leader's proposal timestamp until `m` arrives, and
//! the expected round duration `d_rnd` (§4.2.3). The protocol provides these
//! based on the latency matrix; Appendix C states the requirements TR1–TR3
//! they must satisfy. This module holds the shared representation and the
//! δ-scaled checks; the protocol-specific derivations live in the OptiAware
//! and OptiTree crates.

use runtime::Duration;
use serde::{Deserialize, Serialize};

/// Expected delay of one message within a round, relative to the leader's
/// proposal timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageTimeout {
    /// The replica expected to send the message.
    pub from: usize,
    /// Protocol-specific message kind tag (e.g. Write/Accept phase, Vote,
    /// Aggregate). Used by causal filtering to order protocol phases.
    pub kind: u32,
    /// Expected delay `d_m` from the proposal timestamp.
    pub d_m: Duration,
}

impl MessageTimeout {
    /// Create a message timeout.
    pub fn new(from: usize, kind: u32, d_m: Duration) -> Self {
        MessageTimeout { from, kind, d_m }
    }

    /// The deadline after which the message is considered late, scaled by δ.
    pub fn deadline(&self, delta: f64) -> Duration {
        self.d_m.mul_f64(delta)
    }
}

/// The complete timing expectation for one round of a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RoundTimeouts {
    /// Expected round duration `d_rnd` (proposal timestamp to commit).
    pub d_rnd: Duration,
    /// Expected per-message delays.
    pub messages: Vec<MessageTimeout>,
}

impl RoundTimeouts {
    /// Create round timeouts.
    pub fn new(d_rnd: Duration, messages: Vec<MessageTimeout>) -> Self {
        RoundTimeouts { d_rnd, messages }
    }

    /// The expected delay for a message of `kind` from `from`, if any.
    pub fn expected(&self, from: usize, kind: u32) -> Option<Duration> {
        self.messages
            .iter()
            .find(|m| m.from == from && m.kind == kind)
            .map(|m| m.d_m)
    }

    /// True if two consecutive proposal timestamps `prev` → `next` are within
    /// the δ-scaled round duration (condition (a) of §4.2.3 is the negation).
    pub fn proposal_interval_ok(&self, interval: Duration, delta: f64) -> bool {
        interval <= self.d_rnd.mul_f64(delta)
    }

    /// True if a message that arrived `elapsed` after the proposal timestamp
    /// met its δ-scaled deadline.
    pub fn arrival_ok(&self, from: usize, kind: u32, elapsed: Duration, delta: f64) -> bool {
        match self.expected(from, kind) {
            Some(d_m) => elapsed <= d_m.mul_f64(delta),
            // No expectation registered for this message: cannot be late.
            None => true,
        }
    }

    /// Check the structural timeout requirements of Appendix C against a
    /// one-way latency matrix (milliseconds):
    ///
    /// * TR3 — `d_rnd` equals the delay of some expected message;
    /// * TR1/TR2 — every message's `d_m` is at least the one-way latency of
    ///   its final hop towards `to` (the recipient), i.e. timeouts are not
    ///   tighter than physically possible.
    ///
    /// Returns a list of human-readable violations (empty = satisfied).
    pub fn check_requirements(&self, recipient: usize, one_way_ms: &[f64], n: usize) -> Vec<String> {
        let mut violations = Vec::new();
        if !self.messages.is_empty()
            && !self
                .messages
                .iter()
                .any(|m| m.d_m == self.d_rnd)
        {
            violations.push(format!(
                "TR3: d_rnd {} does not match any message timeout",
                self.d_rnd
            ));
        }
        for m in &self.messages {
            if m.from < n && recipient < n {
                let link = one_way_ms[m.from * n + recipient];
                if link.is_finite() && m.d_m.as_millis_f64() + 1e-9 < link {
                    violations.push(format!(
                        "TR1/TR2: message kind {} from {} has d_m {} below link latency {link} ms",
                        m.kind, m.from, m.d_m
                    ));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeouts() -> RoundTimeouts {
        RoundTimeouts::new(
            Duration::from_millis(100),
            vec![
                MessageTimeout::new(1, 0, Duration::from_millis(40)),
                MessageTimeout::new(2, 1, Duration::from_millis(100)),
            ],
        )
    }

    #[test]
    fn expected_lookup() {
        let t = timeouts();
        assert_eq!(t.expected(1, 0), Some(Duration::from_millis(40)));
        assert_eq!(t.expected(1, 1), None);
        assert_eq!(t.expected(9, 0), None);
    }

    #[test]
    fn proposal_interval_scaled_by_delta() {
        let t = timeouts();
        assert!(t.proposal_interval_ok(Duration::from_millis(100), 1.0));
        assert!(!t.proposal_interval_ok(Duration::from_millis(101), 1.0));
        assert!(t.proposal_interval_ok(Duration::from_millis(140), 1.5));
    }

    #[test]
    fn arrival_deadline_scaled_by_delta() {
        let t = timeouts();
        assert!(t.arrival_ok(1, 0, Duration::from_millis(40), 1.0));
        assert!(!t.arrival_ok(1, 0, Duration::from_millis(41), 1.0));
        assert!(t.arrival_ok(1, 0, Duration::from_millis(55), 1.4));
        // Unknown messages are never late.
        assert!(t.arrival_ok(5, 7, Duration::from_secs(10), 1.0));
    }

    #[test]
    fn deadline_helper() {
        let m = MessageTimeout::new(0, 0, Duration::from_millis(50));
        assert_eq!(m.deadline(1.2).as_millis(), 60);
    }

    #[test]
    fn requirements_satisfied_for_consistent_timeouts() {
        let t = timeouts();
        // one-way latencies: from 1 -> 0 is 30ms (below 40), from 2 -> 0 is 80ms (below 100).
        let n = 3;
        let mut one_way = vec![0.0; 9];
        one_way[3] = 30.0; // (1, 0)
        one_way[6] = 80.0; // (2, 0)
        assert!(t.check_requirements(0, &one_way, n).is_empty());
    }

    #[test]
    fn requirements_flag_too_tight_timeout_and_missing_round_anchor() {
        let t = RoundTimeouts::new(
            Duration::from_millis(10),
            vec![MessageTimeout::new(1, 0, Duration::from_millis(5))],
        );
        let n = 2;
        let mut one_way = vec![0.0; 4];
        one_way[2] = 50.0; // (1, 0)
        let violations = t.check_requirements(0, &one_way, n);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("TR3")));
        assert!(violations.iter().any(|v| v.contains("TR1/TR2")));
    }
}
