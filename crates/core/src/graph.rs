//! The suspicion graph `G` and the candidate-selection algorithms that run
//! on it.
//!
//! `G = (V, E)` is an undirected graph whose vertices are the replicas that
//! are neither provably faulty (`F`) nor considered crashed (`C`), and whose
//! edges are two-way suspicions (§4.2.3). Two selection algorithms are
//! implemented:
//!
//! * **Maximum independent set** (OptiLog default): computed with a
//!   Bron-Kerbosch maximum-clique search on the complement graph — the same
//!   approach the paper benchmarks in Fig 8 — with a work budget that turns
//!   the search into a heuristic on adversarially large graphs. A greedy
//!   min-degree fallback is also provided.
//! * **Disjoint-edge / triangle exclusion** (OptiTree, §6.4): maintain a
//!   maximal set of disjoint edges `E_d` and the triangle set `T`; exclude
//!   both endpoints of every `E_d` edge and every `T` vertex, giving a
//!   smaller candidate set but a ≤2f reconfiguration bound.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An undirected graph over replica ids with deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspicionGraph {
    vertices: BTreeSet<usize>,
    adjacency: BTreeMap<usize, BTreeSet<usize>>,
}

impl SuspicionGraph {
    /// Create a graph over the given vertex set with no edges.
    pub fn new(vertices: impl IntoIterator<Item = usize>) -> Self {
        let vertices: BTreeSet<usize> = vertices.into_iter().collect();
        SuspicionGraph {
            vertices,
            adjacency: BTreeMap::new(),
        }
    }

    /// The vertex set.
    pub fn vertices(&self) -> &BTreeSet<usize> {
        &self.vertices
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|s| s.len()).sum::<usize>() / 2
    }

    /// All edges as normalized `(min, max)` pairs, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (&a, nbrs) in &self.adjacency {
            for &b in nbrs {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Add a vertex (no-op if present).
    pub fn add_vertex(&mut self, v: usize) {
        self.vertices.insert(v);
    }

    /// Remove a vertex and all incident edges.
    pub fn remove_vertex(&mut self, v: usize) {
        self.vertices.remove(&v);
        if let Some(nbrs) = self.adjacency.remove(&v) {
            for n in nbrs {
                if let Some(s) = self.adjacency.get_mut(&n) {
                    s.remove(&v);
                }
            }
        }
    }

    /// Add an undirected edge. Both endpoints are added to the vertex set if
    /// missing. Self-loops are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.vertices.insert(a);
        self.vertices.insert(b);
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Remove an edge if present.
    pub fn remove_edge(&mut self, a: usize, b: usize) {
        if let Some(s) = self.adjacency.get_mut(&a) {
            s.remove(&b);
        }
        if let Some(s) = self.adjacency.get_mut(&b) {
            s.remove(&a);
        }
    }

    /// True if the edge `(a, b)` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency
            .get(&a)
            .map(|s| s.contains(&b))
            .unwrap_or(false)
    }

    /// Neighbours of a vertex.
    pub fn neighbors(&self, v: usize) -> BTreeSet<usize> {
        self.adjacency
            .get(&v)
            .cloned()
            .unwrap_or_default()
            .intersection(&self.vertices)
            .copied()
            .collect()
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// An independent set is a set of vertices with no edge between any pair.
    pub fn is_independent_set(&self, set: &BTreeSet<usize>) -> bool {
        for &a in set {
            for &b in set {
                if a < b && self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum independent set via Bron-Kerbosch with pivoting on the
    /// complement graph (max clique of the complement = MIS of the graph).
    ///
    /// The search is bounded by `budget` recursive expansions; when the
    /// budget is exhausted the best set found so far is returned, making the
    /// algorithm a heuristic on pathological inputs — this mirrors the
    /// "heuristic variant of the Bron-Kerbosch algorithm" used in §7.2. The
    /// result is deterministic for a given graph.
    pub fn maximum_independent_set(&self, budget: usize) -> BTreeSet<usize> {
        // Isolated vertices (no suspicions) are always in the MIS; run the
        // expensive search only on the subgraph touched by edges.
        let mut best: BTreeSet<usize> = self
            .vertices
            .iter()
            .copied()
            .filter(|&v| self.degree(v) == 0)
            .collect();
        let active: BTreeSet<usize> = self
            .vertices
            .iter()
            .copied()
            .filter(|&v| self.degree(v) > 0)
            .collect();
        if active.is_empty() {
            return best;
        }

        // Complement adjacency restricted to active vertices.
        let comp: BTreeMap<usize, BTreeSet<usize>> = active
            .iter()
            .map(|&v| {
                let nbrs = self.neighbors(v);
                let comp_nbrs: BTreeSet<usize> = active
                    .iter()
                    .copied()
                    .filter(|&u| u != v && !nbrs.contains(&u))
                    .collect();
                (v, comp_nbrs)
            })
            .collect();

        let mut best_clique: BTreeSet<usize> = BTreeSet::new();
        let mut budget_left = budget;
        bron_kerbosch(
            &comp,
            &mut BTreeSet::new(),
            active.clone(),
            BTreeSet::new(),
            &mut best_clique,
            &mut budget_left,
        );
        best.extend(best_clique);
        best
    }

    /// Greedy minimum-degree independent set: repeatedly pick the vertex of
    /// minimum degree and remove its neighbourhood. Deterministic, `O(V·E)`.
    pub fn greedy_independent_set(&self) -> BTreeSet<usize> {
        let mut remaining = self.vertices.clone();
        let mut result = BTreeSet::new();
        while !remaining.is_empty() {
            // Min degree within the remaining subgraph; ties broken by id.
            let v = *remaining
                .iter()
                .min_by_key(|&&v| {
                    (
                        self.neighbors(v).intersection(&remaining).count(),
                        v,
                    )
                })
                .expect("remaining non-empty");
            result.insert(v);
            let nbrs = self.neighbors(v);
            remaining.remove(&v);
            for n in nbrs {
                remaining.remove(&n);
            }
        }
        result
    }

    /// Vertices that form a triangle with the edge `(a, b)`.
    pub fn triangle_vertices(&self, a: usize, b: usize) -> BTreeSet<usize> {
        self.neighbors(a)
            .intersection(&self.neighbors(b))
            .copied()
            .collect()
    }
}

/// Bron-Kerbosch with pivoting, tracking the largest clique found.
fn bron_kerbosch(
    adj: &BTreeMap<usize, BTreeSet<usize>>,
    r: &mut BTreeSet<usize>,
    mut p: BTreeSet<usize>,
    mut x: BTreeSet<usize>,
    best: &mut BTreeSet<usize>,
    budget: &mut usize,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    if p.is_empty() && x.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    // Prune: even taking all of P cannot beat the current best.
    if r.len() + p.len() <= best.len() {
        return;
    }
    // Pivot: vertex in P ∪ X with most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| (adj[&u].intersection(&p).count(), usize::MAX - u))
        .expect("P ∪ X non-empty");
    let candidates: Vec<usize> = p.difference(&adj[&pivot]).copied().collect();
    for v in candidates {
        r.insert(v);
        let nv = &adj[&v];
        let p_next: BTreeSet<usize> = p.intersection(nv).copied().collect();
        let x_next: BTreeSet<usize> = x.intersection(nv).copied().collect();
        bron_kerbosch(adj, r, p_next, x_next, best, budget);
        r.remove(&v);
        p.remove(&v);
        x.insert(v);
    }
}

/// The OptiTree exclusion structure of §6.4: a maximal set of disjoint edges
/// `E_d` and the triangle vertex set `T` derived from the suspicion graph.
///
/// Invariants maintained:
/// * edges in `E_d` are pairwise vertex-disjoint;
/// * `E_d` is maximal: every edge of `G` shares a vertex with some `E_d` edge;
/// * `T` contains vertices not covered by `E_d` that form a triangle with an
///   `E_d` edge.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeExclusion {
    /// The maximal disjoint edge set `E_d`, normalized `(min, max)` pairs.
    pub disjoint_edges: BTreeSet<(usize, usize)>,
    /// The triangle set `T`.
    pub triangles: BTreeSet<usize>,
}

impl TreeExclusion {
    /// Recompute `E_d` and `T` from scratch for a graph. Deterministic:
    /// edges are considered in sorted order, which yields the same result at
    /// every replica. The cost is O(e²) as stated in the paper.
    pub fn compute(graph: &SuspicionGraph) -> Self {
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        let mut disjoint_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (a, b) in graph.edges() {
            if !covered.contains(&a) && !covered.contains(&b) {
                disjoint_edges.insert((a, b));
                covered.insert(a);
                covered.insert(b);
            }
        }
        // T: vertices not covered by E_d that close a triangle with an E_d edge.
        let mut triangles: BTreeSet<usize> = BTreeSet::new();
        for &(a, b) in &disjoint_edges {
            for v in graph.triangle_vertices(a, b) {
                if !covered.contains(&v) {
                    triangles.insert(v);
                }
            }
        }
        TreeExclusion {
            disjoint_edges,
            triangles,
        }
    }

    /// Vertices excluded from the candidate set: endpoints of `E_d` edges and
    /// members of `T`.
    pub fn excluded(&self) -> BTreeSet<usize> {
        let mut out: BTreeSet<usize> = self
            .disjoint_edges
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect();
        out.extend(self.triangles.iter().copied());
        out
    }

    /// The estimate of misbehaving replicas `u = |E_d| + |T|` (§6.4).
    pub fn fault_estimate(&self) -> usize {
        self.disjoint_edges.len() + self.triangles.len()
    }

    /// The candidate set: vertices of the graph not excluded.
    pub fn candidates(&self, graph: &SuspicionGraph) -> BTreeSet<usize> {
        let excluded = self.excluded();
        graph
            .vertices()
            .iter()
            .copied()
            .filter(|v| !excluded.contains(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_edges(n: usize, edges: &[(usize, usize)]) -> SuspicionGraph {
        let mut g = SuspicionGraph::new(0..n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn edge_bookkeeping() {
        let mut g = graph_with_edges(5, &[(0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        g.remove_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
        g.remove_vertex(2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_count(), 4);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = SuspicionGraph::new(0..3);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn mis_of_empty_graph_is_all_vertices() {
        let g = graph_with_edges(6, &[]);
        let mis = g.maximum_independent_set(10_000);
        assert_eq!(mis.len(), 6);
    }

    #[test]
    fn mis_of_single_edge_excludes_one_endpoint() {
        let g = graph_with_edges(4, &[(0, 1)]);
        let mis = g.maximum_independent_set(10_000);
        assert_eq!(mis.len(), 3);
        assert!(g.is_independent_set(&mis));
    }

    #[test]
    fn mis_of_triangle_is_one_plus_isolated() {
        let g = graph_with_edges(5, &[(0, 1), (1, 2), (0, 2)]);
        let mis = g.maximum_independent_set(10_000);
        // vertices 3,4 isolated + exactly one of {0,1,2}
        assert_eq!(mis.len(), 3);
        assert!(g.is_independent_set(&mis));
    }

    #[test]
    fn mis_of_path_graph() {
        // Path 0-1-2-3-4: MIS = {0,2,4}
        let g = graph_with_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mis = g.maximum_independent_set(10_000);
        assert_eq!(mis.len(), 3);
        assert!(g.is_independent_set(&mis));
    }

    #[test]
    fn mis_is_deterministic() {
        let g = graph_with_edges(10, &[(0, 1), (2, 3), (4, 5), (1, 2), (5, 6), (7, 8)]);
        assert_eq!(
            g.maximum_independent_set(10_000),
            g.maximum_independent_set(10_000)
        );
    }

    #[test]
    fn greedy_is_valid_and_reasonable() {
        let g = graph_with_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]);
        let greedy = g.greedy_independent_set();
        assert!(g.is_independent_set(&greedy));
        let exact = g.maximum_independent_set(100_000);
        assert!(greedy.len() <= exact.len());
        assert!(greedy.len() + 1 >= exact.len(), "greedy close to exact on small graphs");
    }

    #[test]
    fn budget_exhaustion_still_returns_independent_set() {
        // Dense-ish random-like graph; tiny budget forces the heuristic path.
        let edges: Vec<(usize, usize)> = (0..20)
            .flat_map(|a| ((a + 1)..20).filter(move |b| (a * 7 + b) % 3 == 0).map(move |b| (a, b)))
            .collect();
        let g = graph_with_edges(20, &edges);
        let mis = g.maximum_independent_set(5);
        assert!(g.is_independent_set(&mis));
    }

    #[test]
    fn tree_exclusion_paper_example() {
        // Fig 6: E_d = {(S1,S4),(S2,S3)}, T = {At}, one-way suspicion Bc
        // handled outside the graph (crash set). Encode: S1=0,S2=1,S3=2,S4=3,
        // At=4, N1=5, N2=6, N3=7, R=8.
        // Two-way suspicions: (S1,S4), (S2,S3), (S1,S2)(extra edge), (At,S1),(At,S4) triangle.
        let mut g = SuspicionGraph::new(0..9);
        g.add_edge(0, 3); // S1-S4
        g.add_edge(1, 2); // S2-S3
        g.add_edge(0, 1); // S1-S2 (shares vertices with both E_d edges)
        g.add_edge(4, 0); // At-S1
        g.add_edge(4, 3); // At-S4 -> At forms triangle with (S1,S4)
        let excl = TreeExclusion::compute(&g);
        // E_d is a maximal set of disjoint edges covering the suspected
        // replicas; the exact choice depends on tie-breaking, but it must
        // have exactly two edges here and only involve S1..S4 and At.
        assert_eq!(excl.disjoint_edges.len(), 2);
        for &(a, b) in &excl.disjoint_edges {
            assert!(a <= 4 && b <= 4);
        }
        // Between 2 and 3 replicas are estimated faulty (2 disjoint edges,
        // plus At if it closes a triangle with the chosen E_d).
        assert!((2..=3).contains(&excl.fault_estimate()));
        // The unsuspected replicas N1..N3 and R always remain candidates.
        let k = excl.candidates(&g);
        for r in [5, 6, 7, 8] {
            assert!(k.contains(&r), "replica {r} must be a candidate");
        }
        // And every excluded replica is one of the suspected ones.
        for e in excl.excluded() {
            assert!(e <= 4);
        }
    }

    #[test]
    fn tree_exclusion_disjointness_and_maximality() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7), (0, 7)];
        let g = graph_with_edges(10, &edges);
        let excl = TreeExclusion::compute(&g);
        // Disjointness: no vertex appears twice.
        let mut seen = BTreeSet::new();
        for &(a, b) in &excl.disjoint_edges {
            assert!(seen.insert(a));
            assert!(seen.insert(b));
        }
        // Maximality: every graph edge touches a covered vertex.
        let covered: BTreeSet<usize> = excl.disjoint_edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        for (a, b) in g.edges() {
            assert!(covered.contains(&a) || covered.contains(&b));
        }
    }

    #[test]
    fn tree_exclusion_fault_estimate_bounds() {
        // A star of suspicions around one faulty vertex: E_d has one edge,
        // u = 1, and only two vertices are excluded.
        let g = graph_with_edges(8, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let excl = TreeExclusion::compute(&g);
        assert_eq!(excl.disjoint_edges.len(), 1);
        assert_eq!(excl.fault_estimate(), 1);
        assert_eq!(excl.candidates(&g).len(), 6);
    }

    #[test]
    fn triangle_vertices_found() {
        let g = graph_with_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3)]);
        assert_eq!(g.triangle_vertices(0, 1), [2].into_iter().collect());
        assert!(g.triangle_vertices(0, 3).is_empty());
    }
}
