//! Candidate selection strategies.
//!
//! From the suspicion graph `G`, OptiLog derives the *candidate set* `K` of
//! replicas considered correct (eligible for special roles) and the estimate
//! `u` of misbehaving replicas. Two strategies are implemented:
//!
//! * [`SelectionStrategy::MaxIndependentSet`] — the default of §4.2.3:
//!   `K` is a maximum independent set of `G`, `u = |V| − |K|`. Guarantees
//!   `|K| ≥ n − f` (C1) but may require `Ω(f²)` reconfigurations.
//! * [`SelectionStrategy::TreeExclusion`] — the OptiTree variant of §6.4:
//!   exclude both endpoints of a maximal disjoint edge set `E_d` and the
//!   triangle set `T`; `u = |E_d| + |T|`. Yields a smaller `K` but bounds the
//!   number of reconfigurations by `2f` (CT4).

use crate::graph::{SuspicionGraph, TreeExclusion};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How the candidate set is derived from the suspicion graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Maximum independent set (Bron-Kerbosch on the complement, bounded by
    /// the given expansion budget).
    MaxIndependentSet {
        /// Work budget for the exact search before falling back to the best
        /// set found so far.
        budget: usize,
    },
    /// Disjoint-edge / triangle exclusion (OptiTree, §6.4).
    TreeExclusion,
}

impl Default for SelectionStrategy {
    fn default() -> Self {
        SelectionStrategy::MaxIndependentSet { budget: 200_000 }
    }
}

/// The result of candidate selection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateSelection {
    /// The candidate set `K`: replicas eligible for special roles.
    pub candidates: BTreeSet<usize>,
    /// Estimated number of misbehaving (non-crash faulty) replicas `u`.
    pub estimate_u: usize,
}

impl CandidateSelection {
    /// True if `replica` is a candidate.
    pub fn contains(&self, replica: usize) -> bool {
        self.candidates.contains(&replica)
    }

    /// Candidates as a sorted vector.
    pub fn as_vec(&self) -> Vec<usize> {
        self.candidates.iter().copied().collect()
    }
}

/// Applies a [`SelectionStrategy`] to a suspicion graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct CandidateSelector {
    strategy: SelectionStrategy,
}

impl CandidateSelector {
    /// Create a selector with the given strategy.
    pub fn new(strategy: SelectionStrategy) -> Self {
        CandidateSelector { strategy }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Compute the candidate set and fault estimate from the graph.
    ///
    /// The graph's vertex set must already exclude provably faulty (`F`) and
    /// crashed (`C`) replicas; the caller (SuspicionMonitor) is responsible
    /// for that.
    pub fn select(&self, graph: &SuspicionGraph) -> CandidateSelection {
        match self.strategy {
            SelectionStrategy::MaxIndependentSet { budget } => {
                let k = graph.maximum_independent_set(budget);
                let u = graph.vertex_count().saturating_sub(k.len());
                CandidateSelection {
                    candidates: k,
                    estimate_u: u,
                }
            }
            SelectionStrategy::TreeExclusion => {
                let excl = TreeExclusion::compute(graph);
                CandidateSelection {
                    candidates: excl.candidates(graph),
                    estimate_u: excl.fault_estimate(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> SuspicionGraph {
        let mut g = SuspicionGraph::new(0..n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn mis_strategy_counts_excluded_as_u() {
        let g = graph(7, &[(0, 1), (2, 3)]);
        let sel = CandidateSelector::new(SelectionStrategy::MaxIndependentSet { budget: 10_000 })
            .select(&g);
        assert_eq!(sel.candidates.len(), 5);
        assert_eq!(sel.estimate_u, 2);
        assert!(g.is_independent_set(&sel.candidates));
    }

    #[test]
    fn tree_strategy_excludes_both_endpoints() {
        let g = graph(7, &[(0, 1), (2, 3)]);
        let sel = CandidateSelector::new(SelectionStrategy::TreeExclusion).select(&g);
        // Both endpoints of both disjoint edges excluded: K = {4,5,6}, u = 2.
        assert_eq!(sel.as_vec(), vec![4, 5, 6]);
        assert_eq!(sel.estimate_u, 2);
    }

    #[test]
    fn tree_strategy_excludes_triangle_vertices() {
        // Edge (0,1) in E_d plus triangle vertex 2 adjacent to both.
        let g = graph(6, &[(0, 1), (0, 2), (1, 2)]);
        let sel = CandidateSelector::new(SelectionStrategy::TreeExclusion).select(&g);
        assert!(!sel.contains(0));
        assert!(!sel.contains(1));
        assert!(!sel.contains(2));
        assert_eq!(sel.estimate_u, 2, "one E_d edge + one triangle vertex");
        assert_eq!(sel.candidates.len(), 3);
    }

    #[test]
    fn strategies_agree_on_empty_graph() {
        let g = graph(10, &[]);
        for strategy in [
            SelectionStrategy::default(),
            SelectionStrategy::TreeExclusion,
        ] {
            let sel = CandidateSelector::new(strategy).select(&g);
            assert_eq!(sel.candidates.len(), 10);
            assert_eq!(sel.estimate_u, 0);
        }
    }

    #[test]
    fn mis_never_smaller_than_correct_set_under_f_attackers() {
        // f attackers each suspect one distinct correct replica: the correct
        // replicas still form an independent set of size n - f (Lemma 1).
        let n = 13;
        let f = 4;
        let edges: Vec<(usize, usize)> = (0..f).map(|i| (i, f + i)).collect();
        let g = graph(n, &edges);
        let sel = CandidateSelector::default().select(&g);
        assert!(sel.candidates.len() >= n - f);
    }
}

