//! Suspicion sensing and monitoring (§4.2.3).
//!
//! Proof-of-misbehavior is often unattainable for timing and omission faults,
//! so OptiLog adds *suspicions*. The [`SuspicionSensor`] raises a suspicion
//! when:
//!
//! * (a) consecutive proposal timestamps are further apart than `δ·d_rnd`
//!   → `⟨Slow, A d L⟩`;
//! * (b) an expected message does not arrive within `δ·d_m` of the round's
//!   proposal timestamp → `⟨Slow, A d B⟩`;
//! * (c) a suspicion is raised against this replica → reciprocate with
//!   `⟨False, A d B⟩`.
//!
//! The [`SuspicionMonitor`] consumes committed suspicions in log order,
//! filters causally related ones, separates crash suspicions (set `C`) from
//! mutual suspicions (graph `G`), and produces the candidate set `K` and the
//! fault estimate `u` via a [`CandidateSelector`]. Old suspicions are expired
//! after a stable window `w` or when `K` would drop below `n − f`
//! (maximum-independent-set strategy only).

use crate::candidates::{CandidateSelection, CandidateSelector, SelectionStrategy};
use crate::graph::SuspicionGraph;
use crate::timing::RoundTimeouts;
use configlog::PhaseFilter;
use runtime::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Protocol phase tag for the proposal-timestamp check (condition (a)).
/// Message kinds passed by the protocol must be strictly greater.
pub const PHASE_PROPOSAL: u32 = 0;

/// Fixed slack added to every δ-scaled deadline before raising a suspicion.
///
/// In a real deployment the δ multiplier absorbs clock granularity and
/// small scheduling jitter; in the deterministic simulator timeouts and
/// message delays are rounded to microseconds independently, so a deadline
/// can fall a few microseconds short of an on-time arrival. The slack keeps
/// such rounding artifacts from being reported as timing faults without
/// masking real delays (which are orders of magnitude larger).
pub const DEADLINE_SLACK: Duration = Duration(2_000);

/// The two suspicion flavours of §4.2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuspicionKind {
    /// `⟨Slow, A d B⟩`: A observed B violating a timing expectation.
    Slow,
    /// `⟨False, A d B⟩`: A reciprocates a suspicion B raised against A.
    False,
}

/// A suspicion as appended to the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suspicion {
    /// Slow or False.
    pub kind: SuspicionKind,
    /// The replica raising the suspicion.
    pub accuser: usize,
    /// The suspected replica.
    pub accused: usize,
    /// The consensus round that triggered the suspicion.
    pub round: u64,
    /// Protocol phase of the late message ([`PHASE_PROPOSAL`] for condition
    /// (a)); used for causal filtering.
    pub phase: u32,
    /// True if the accuser held the leader role in `round` — enables the
    /// leader-chain filtering rule.
    pub accuser_is_leader: bool,
}

impl Suspicion {
    /// Wire size in bytes using the compact encoding of §7.8.
    pub fn wire_bytes(&self) -> usize {
        1 + 2 + 2 + 8 + 1
    }

    /// Lift a committed reciprocal suspicion pair (tree-staleness evidence
    /// replicated through the configuration log, §6.4) into the monitor's
    /// vocabulary: a forward pair is a `⟨Slow, receiver d upstream⟩`
    /// suspicion, a reciprocation the matching `⟨False, …⟩`. The pair's
    /// topology depth rides in as the phase, so the causal filter keeps the
    /// root-most evidence of one withheld payload and drops its echoes
    /// further down the tree.
    pub fn from_pair(pair: &configlog::SuspicionPair) -> Suspicion {
        Suspicion {
            kind: if pair.reciprocal {
                SuspicionKind::False
            } else {
                SuspicionKind::Slow
            },
            accuser: pair.accuser,
            accused: pair.accused,
            round: pair.round,
            phase: pair.phase,
            accuser_is_leader: false,
        }
    }
}

/// One expected message within a round, as registered with the sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageExpectation {
    /// Sender the message is expected from.
    pub from: usize,
    /// Protocol phase / message kind (must be > [`PHASE_PROPOSAL`]).
    pub kind: u32,
}

/// Everything the sensor needs to evaluate one completed round.
#[derive(Debug, Clone)]
pub struct RoundObservation {
    /// The round number.
    pub round: u64,
    /// The leader of the round.
    pub leader: usize,
    /// The leader's proposal timestamp for this round.
    pub proposal_ts: SimTime,
    /// The previous round's proposal timestamp, if known.
    pub prev_proposal_ts: Option<SimTime>,
    /// The timing expectations for this round (protocol-provided, TR1–TR3).
    pub timeouts: RoundTimeouts,
    /// Observed arrivals: (sender, message kind, arrival time).
    pub arrivals: Vec<(usize, u32, SimTime)>,
}

/// The SuspicionSensor: evaluates local observations against expectations.
#[derive(Debug, Clone)]
pub struct SuspicionSensor {
    /// The replica this sensor runs on.
    pub id: usize,
    /// The δ latency-variation multiplier.
    pub delta: f64,
    /// Pairs (accuser, round) this replica has already reciprocated, to
    /// avoid duplicate False suspicions. Keyed per round rather than per
    /// accuser: a reciprocation blob can be lost (e.g. a leader change while
    /// it is in flight), and the next committed suspicion from the same
    /// accuser must be able to trigger a fresh one, or the accused ends up
    /// falsely classified as crashed.
    reciprocated: BTreeSet<(usize, u64)>,
    /// Pairs (accused, round) already suspected by this replica, to avoid
    /// flooding the log with duplicates.
    raised: BTreeSet<(usize, u64)>,
}

impl SuspicionSensor {
    /// Create a sensor for replica `id` with latency multiplier `delta`.
    pub fn new(id: usize, delta: f64) -> Self {
        SuspicionSensor {
            id,
            delta,
            reciprocated: BTreeSet::new(),
            raised: BTreeSet::new(),
        }
    }

    /// Evaluate a completed round and return the suspicions to log
    /// (conditions (a) and (b)).
    pub fn evaluate_round(&mut self, obs: &RoundObservation, is_leader: bool) -> Vec<Suspicion> {
        let mut out = Vec::new();

        // Condition (a): consecutive proposal timestamps within δ·d_rnd.
        if let Some(prev) = obs.prev_proposal_ts {
            let interval = obs.proposal_ts.since(prev).saturating_sub(DEADLINE_SLACK);
            if !obs.timeouts.proposal_interval_ok(interval, self.delta)
                && obs.leader != self.id
                && self.raised.insert((obs.leader, obs.round))
            {
                out.push(Suspicion {
                    kind: SuspicionKind::Slow,
                    accuser: self.id,
                    accused: obs.leader,
                    round: obs.round,
                    phase: PHASE_PROPOSAL,
                    accuser_is_leader: is_leader,
                });
            }
        }

        // Condition (b): every expected message arrived within δ·d_m of the
        // proposal timestamp.
        for mt in &obs.timeouts.messages {
            if mt.from == self.id {
                continue;
            }
            let deadline = obs.proposal_ts + mt.deadline(self.delta) + DEADLINE_SLACK;
            let arrived_in_time = obs
                .arrivals
                .iter()
                .any(|&(from, kind, at)| from == mt.from && kind == mt.kind && at <= deadline);
            if !arrived_in_time && self.raised.insert((mt.from, obs.round)) {
                out.push(Suspicion {
                    kind: SuspicionKind::Slow,
                    accuser: self.id,
                    accused: mt.from,
                    round: obs.round,
                    phase: mt.kind,
                    accuser_is_leader: is_leader,
                });
            }
        }
        out
    }

    /// Condition (c): when a committed suspicion accuses this replica,
    /// reciprocate with a False suspicion (once per accuser).
    pub fn reciprocate(&mut self, committed: &Suspicion) -> Option<Suspicion> {
        if committed.accused != self.id || committed.accuser == self.id {
            return None;
        }
        if !self.reciprocated.insert((committed.accuser, committed.round)) {
            return None;
        }
        Some(Suspicion {
            kind: SuspicionKind::False,
            accuser: self.id,
            accused: committed.accuser,
            round: committed.round,
            phase: committed.phase,
            accuser_is_leader: false,
        })
    }
}

/// Parameters of the SuspicionMonitor.
#[derive(Debug, Clone, Copy)]
pub struct SuspicionMonitorParams {
    /// Total number of replicas `n`.
    pub n: usize,
    /// Fault threshold `f`.
    pub f: usize,
    /// Stable-window length `w` (views) after which old suspicions expire.
    pub window: u64,
    /// Views an un-reciprocated suspicion waits before the accused is
    /// considered crashed (the paper uses `f + 1` leader terms; callers whose
    /// views advance faster — e.g. once per commit — should scale it up so
    /// the window covers a reciprocation round-trip through the log).
    pub reciprocation_views: u64,
    /// Candidate-selection strategy.
    pub strategy: SelectionStrategy,
}

impl SuspicionMonitorParams {
    /// Default parameters for an `n`-replica system: `w = 10` views,
    /// reciprocation window `f + 1`, MIS selection.
    pub fn new(n: usize, f: usize) -> Self {
        SuspicionMonitorParams {
            n,
            f,
            window: 10,
            reciprocation_views: (f as u64) + 1,
            strategy: SelectionStrategy::default(),
        }
    }

    /// Use the OptiTree disjoint-edge/triangle strategy.
    pub fn with_tree_strategy(mut self) -> Self {
        self.strategy = SelectionStrategy::TreeExclusion;
        self
    }

    /// Override the stability window.
    pub fn with_window(mut self, w: u64) -> Self {
        self.window = w;
        self
    }

    /// Override the reciprocation window.
    pub fn with_reciprocation_views(mut self, v: u64) -> Self {
        self.reciprocation_views = v;
        self
    }
}

/// State of one suspicion edge waiting for reciprocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EdgeState {
    /// The replica that raised the first suspicion on this pair.
    first_accuser: usize,
    /// View in which the edge was added.
    view_added: u64,
    /// True once the accused has reciprocated (or counter-suspected).
    reciprocated: bool,
    /// Log order for expiry.
    order: u64,
}

/// The SuspicionMonitor: deterministic processing of committed suspicions.
#[derive(Debug, Clone)]
pub struct SuspicionMonitor {
    params: SuspicionMonitorParams,
    selector: CandidateSelector,
    /// Provably faulty replicas (from the MisbehaviorMonitor).
    faulty: BTreeSet<usize>,
    /// Replicas considered crashed.
    crashed: BTreeSet<usize>,
    /// Active suspicion edges keyed by normalized pair.
    edges: BTreeMap<(usize, usize), EdgeState>,
    /// Monotonic counter giving each edge its log order.
    next_order: u64,
    /// Current view (leader changes).
    current_view: u64,
    /// View in which the last new suspicion was accepted.
    last_suspicion_view: u64,
    /// Causal filter: lowest phase accepted per round (shared with the
    /// tree substrates' pair-trigger path via `configlog`).
    phase_filter: PhaseFilter,
    /// Rounds in which the round's leader raised a suspicion (leader-chain filter).
    leader_suspected_round: BTreeSet<u64>,
    /// Count of accepted (non-filtered) suspicions, for diagnostics.
    accepted: u64,
    /// Count of filtered suspicions, for diagnostics.
    filtered: u64,
}

impl SuspicionMonitor {
    /// Create a monitor.
    pub fn new(params: SuspicionMonitorParams) -> Self {
        SuspicionMonitor {
            selector: CandidateSelector::new(params.strategy),
            params,
            faulty: BTreeSet::new(),
            crashed: BTreeSet::new(),
            edges: BTreeMap::new(),
            next_order: 0,
            current_view: 0,
            last_suspicion_view: 0,
            phase_filter: PhaseFilter::new(),
            leader_suspected_round: BTreeSet::new(),
            accepted: 0,
            filtered: 0,
        }
    }

    /// Update the set of provably faulty replicas (from the MisbehaviorMonitor).
    pub fn set_faulty(&mut self, faulty: BTreeSet<usize>) {
        self.faulty = faulty;
    }

    /// The crash set `C`.
    pub fn crashed(&self) -> &BTreeSet<usize> {
        &self.crashed
    }

    /// Number of suspicions accepted after filtering.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of suspicions discarded by the causal filter.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Advance to a new view (leader change). Un-reciprocated edges older
    /// than the reciprocation window move the accused into `C`; during a
    /// stable window, old suspicions are expired one per view.
    pub fn on_view(&mut self, view: u64) {
        self.current_view = self.current_view.max(view);

        // One-way suspicions: accused treated as crashed.
        let expired: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|(_, e)| {
                !e.reciprocated
                    && self.current_view.saturating_sub(e.view_added) > self.params.reciprocation_views
            })
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            let e = self.edges.remove(&key).expect("edge existed");
            let accused = if key.0 == e.first_accuser { key.1 } else { key.0 };
            self.crashed.insert(accused);
        }

        // Stability expiry: no new suspicions for `window` views → drop the
        // oldest suspicion each view.
        if self.current_view.saturating_sub(self.last_suspicion_view) > self.params.window {
            if let Some((&key, _)) = self.edges.iter().min_by_key(|(_, e)| e.order) {
                self.edges.remove(&key);
            }
        }
    }

    /// Process one committed suspicion (in log order).
    pub fn on_suspicion(&mut self, s: &Suspicion) {
        if s.accuser == s.accused || s.accuser >= self.params.n || s.accused >= self.params.n {
            return;
        }

        match s.kind {
            SuspicionKind::False => {
                // Reciprocation: mark the edge as two-way.
                let key = normalize(s.accuser, s.accused);
                if let Some(e) = self.edges.get_mut(&key) {
                    e.reciprocated = true;
                } else {
                    // Reciprocation may arrive before the original suspicion
                    // commits (censoring attempts); record the edge anyway.
                    self.insert_edge(key, s.accused);
                }
                return;
            }
            SuspicionKind::Slow => {}
        }

        // Causal filtering: keep only the earliest-phase suspicion per round.
        if !self.phase_filter.accept(s.round, s.phase) {
            self.filtered += 1;
            return;
        }

        // Leader-chain filter: a leader suspicion in round i filters
        // proposal-timestamp suspicions in round i+1.
        if s.phase == PHASE_PROPOSAL
            && s.round > 0
            && self.leader_suspected_round.contains(&(s.round - 1))
        {
            self.filtered += 1;
            return;
        }
        if s.accuser_is_leader {
            self.leader_suspected_round.insert(s.round);
        }

        // Ignore suspicions involving already-excluded replicas.
        if self.faulty.contains(&s.accused)
            || self.crashed.contains(&s.accused)
            || self.faulty.contains(&s.accuser)
        {
            return;
        }

        self.accepted += 1;
        self.last_suspicion_view = self.current_view;

        let key = normalize(s.accuser, s.accused);
        if let Some(e) = self.edges.get_mut(&key) {
            // A suspicion in the opposite direction counts as reciprocation.
            let original_accused = if key.0 == e.first_accuser { key.1 } else { key.0 };
            if s.accuser == original_accused {
                e.reciprocated = true;
            }
        } else {
            self.insert_edge(key, s.accuser);
        }
    }

    fn insert_edge(&mut self, key: (usize, usize), first_accuser: usize) {
        let order = self.next_order;
        self.next_order += 1;
        self.edges.insert(
            key,
            EdgeState {
                first_accuser,
                view_added: self.current_view,
                reciprocated: false,
                order,
            },
        );
    }

    /// Build the current suspicion graph `G` over `V = Π \ F \ C`.
    pub fn graph(&self) -> SuspicionGraph {
        let vertices: Vec<usize> = (0..self.params.n)
            .filter(|v| !self.faulty.contains(v) && !self.crashed.contains(v))
            .collect();
        let mut g = SuspicionGraph::new(vertices.iter().copied());
        for &(a, b) in self.edges.keys() {
            if vertices.contains(&a) && vertices.contains(&b) {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Compute the candidate set `K` and the estimate `u`.
    ///
    /// For the maximum-independent-set strategy, Lemma 1's guarantee
    /// (`|K| ≥ n − f`) is enforced by discarding the oldest suspicions until
    /// a sufficiently large independent set exists.
    pub fn selection(&mut self) -> CandidateSelection {
        loop {
            let graph = self.graph();
            let sel = self.selector.select(&graph);
            let needs_enforcement = matches!(
                self.params.strategy,
                SelectionStrategy::MaxIndependentSet { .. }
            );
            if !needs_enforcement
                || sel.candidates.len() >= self.params.n.saturating_sub(self.params.f)
                || self.edges.is_empty()
            {
                return sel;
            }
            // Too many suspicions: discard the oldest (§4.2.3).
            if let Some((&key, _)) = self.edges.iter().min_by_key(|(_, e)| e.order) {
                self.edges.remove(&key);
            }
        }
    }

    /// Number of active suspicion edges (for tests and diagnostics).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

fn normalize(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MessageTimeout;
    use runtime::Duration;

    fn slow(accuser: usize, accused: usize, round: u64, phase: u32) -> Suspicion {
        Suspicion {
            kind: SuspicionKind::Slow,
            accuser,
            accused,
            round,
            phase,
            accuser_is_leader: false,
        }
    }

    fn monitor(n: usize, f: usize) -> SuspicionMonitor {
        SuspicionMonitor::new(SuspicionMonitorParams::new(n, f))
    }

    // ---- sensor tests -----------------------------------------------------

    fn observation(leader: usize, proposal_ms: u64, prev_ms: Option<u64>) -> RoundObservation {
        RoundObservation {
            round: 3,
            leader,
            proposal_ts: SimTime::from_millis(proposal_ms),
            prev_proposal_ts: prev_ms.map(SimTime::from_millis),
            timeouts: RoundTimeouts::new(
                Duration::from_millis(100),
                vec![
                    MessageTimeout::new(1, 1, Duration::from_millis(40)),
                    MessageTimeout::new(2, 1, Duration::from_millis(60)),
                ],
            ),
            arrivals: vec![],
        }
    }

    #[test]
    fn sensor_condition_a_detects_late_proposal() {
        let mut sensor = SuspicionSensor::new(0, 1.0);
        let mut obs = observation(3, 1000, Some(850));
        obs.arrivals = vec![
            (1, 1, SimTime::from_millis(1030)),
            (2, 1, SimTime::from_millis(1050)),
        ];
        let sus = sensor.evaluate_round(&obs, false);
        assert_eq!(sus.len(), 1);
        assert_eq!(sus[0].accused, 3);
        assert_eq!(sus[0].phase, PHASE_PROPOSAL);
    }

    #[test]
    fn sensor_condition_a_respects_delta() {
        let mut sensor = SuspicionSensor::new(0, 2.0);
        let mut obs = observation(3, 1000, Some(850));
        obs.arrivals = vec![
            (1, 1, SimTime::from_millis(1030)),
            (2, 1, SimTime::from_millis(1050)),
        ];
        // interval 150 <= 2.0 * 100 → no suspicion
        assert!(sensor.evaluate_round(&obs, false).is_empty());
    }

    #[test]
    fn sensor_condition_b_detects_missing_and_late_messages() {
        let mut sensor = SuspicionSensor::new(0, 1.0);
        let mut obs = observation(3, 1000, Some(950));
        // Replica 1 arrives late (1000+40=1040 deadline), replica 2 never arrives.
        obs.arrivals = vec![(1, 1, SimTime::from_millis(1045))];
        let sus = sensor.evaluate_round(&obs, false);
        let accused: BTreeSet<usize> = sus.iter().map(|s| s.accused).collect();
        assert_eq!(accused, [1, 2].into_iter().collect());
        assert!(sus.iter().all(|s| s.kind == SuspicionKind::Slow));
        assert!(sus.iter().all(|s| s.phase == 1));
    }

    #[test]
    fn sensor_on_time_messages_raise_nothing() {
        let mut sensor = SuspicionSensor::new(0, 1.0);
        let mut obs = observation(3, 1000, Some(950));
        obs.arrivals = vec![
            (1, 1, SimTime::from_millis(1040)),
            (2, 1, SimTime::from_millis(1055)),
        ];
        assert!(sensor.evaluate_round(&obs, false).is_empty());
    }

    #[test]
    fn sensor_does_not_suspect_itself_and_dedups() {
        let mut sensor = SuspicionSensor::new(1, 1.0);
        let obs = observation(3, 1000, Some(950));
        // Replica 1's own expected message is skipped; replica 2 missing.
        let first = sensor.evaluate_round(&obs, false);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].accused, 2);
        // Evaluating the same round again raises no duplicates.
        assert!(sensor.evaluate_round(&obs, false).is_empty());
    }

    #[test]
    fn sensor_reciprocates_once() {
        let mut sensor = SuspicionSensor::new(2, 1.0);
        let incoming = slow(5, 2, 7, 1);
        let rec = sensor.reciprocate(&incoming).expect("reciprocation");
        assert_eq!(rec.kind, SuspicionKind::False);
        assert_eq!(rec.accuser, 2);
        assert_eq!(rec.accused, 5);
        assert!(sensor.reciprocate(&incoming).is_none(), "only once per accuser");
        assert!(sensor.reciprocate(&slow(5, 3, 7, 1)).is_none(), "not about us");
    }

    #[test]
    fn pair_lifts_to_slow_and_reciprocation_to_false() {
        let pair = configlog::SuspicionPair {
            accuser: 4,
            accused: 1,
            round: 12,
            phase: 2,
            reciprocal: false,
        };
        let s = Suspicion::from_pair(&pair);
        assert_eq!(s.kind, SuspicionKind::Slow);
        assert_eq!((s.accuser, s.accused, s.round, s.phase), (4, 1, 12, 2));
        let r = Suspicion::from_pair(&pair.reciprocation());
        assert_eq!(r.kind, SuspicionKind::False);
        assert_eq!((r.accuser, r.accused), (1, 4));
        // The lifted pair drives the monitor exactly like a native mutual
        // suspicion: the pair stays in the graph as one excluded edge.
        let mut m = monitor(7, 2);
        m.on_suspicion(&s);
        m.on_suspicion(&r);
        assert_eq!(m.edge_count(), 1);
        assert_eq!(m.selection().estimate_u, 1);
    }

    // ---- monitor tests ----------------------------------------------------

    #[test]
    fn mutual_suspicion_excludes_one_of_the_pair() {
        let mut m = monitor(7, 2);
        m.on_suspicion(&slow(0, 1, 1, 1));
        m.on_suspicion(&slow(1, 0, 2, 1));
        let sel = m.selection();
        // The pair {0,1} contributes exactly one candidate.
        assert_eq!(sel.estimate_u, 1);
        assert_eq!(sel.candidates.len(), 6);
        assert!(sel.candidates.len() >= 7 - 2);
    }

    #[test]
    fn unreciprocated_suspicion_moves_accused_to_crashed() {
        let mut m = monitor(7, 2);
        m.on_view(1);
        m.on_suspicion(&slow(0, 3, 1, 1));
        assert_eq!(m.edge_count(), 1);
        // After f+1 = 3 views without reciprocation, replica 3 is crashed.
        m.on_view(5);
        assert!(m.crashed().contains(&3));
        assert_eq!(m.edge_count(), 0);
        let sel = m.selection();
        assert!(!sel.contains(3));
        // A crashed replica does not count towards u (it is not misbehaving).
        assert_eq!(sel.estimate_u, 0);
    }

    #[test]
    fn reciprocated_suspicion_stays_in_graph() {
        let mut m = monitor(7, 2);
        m.on_view(1);
        m.on_suspicion(&slow(0, 3, 1, 1));
        m.on_suspicion(&Suspicion {
            kind: SuspicionKind::False,
            accuser: 3,
            accused: 0,
            round: 1,
            phase: 1,
            accuser_is_leader: false,
        });
        m.on_view(10);
        assert!(m.crashed().is_empty());
        assert_eq!(m.edge_count(), 1);
        let sel = m.selection();
        assert_eq!(sel.estimate_u, 1);
    }

    #[test]
    fn causal_filter_keeps_only_earliest_phase_per_round() {
        let mut m = monitor(7, 2);
        m.on_suspicion(&slow(0, 1, 5, 1));
        m.on_suspicion(&slow(2, 3, 5, 2)); // later phase, same round → filtered
        assert_eq!(m.accepted(), 1);
        assert_eq!(m.filtered(), 1);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn leader_chain_filter_suppresses_next_round_proposal_suspicion() {
        let mut m = monitor(7, 2);
        // The leader of round 4 suspects replica 2 for a phase-1 message.
        m.on_suspicion(&Suspicion {
            kind: SuspicionKind::Slow,
            accuser: 0,
            accused: 2,
            round: 4,
            phase: 1,
            accuser_is_leader: true,
        });
        // Round 5: someone suspects the leader for a delayed proposal → filtered.
        m.on_suspicion(&slow(3, 0, 5, PHASE_PROPOSAL));
        assert_eq!(m.accepted(), 1);
        assert_eq!(m.filtered(), 1);
    }

    #[test]
    fn provably_faulty_replicas_excluded_before_selection() {
        let mut m = monitor(7, 2);
        m.set_faulty([4].into_iter().collect());
        m.on_suspicion(&slow(0, 4, 1, 1)); // ignored: already provably faulty
        let sel = m.selection();
        assert!(!sel.contains(4));
        assert_eq!(sel.estimate_u, 0);
        assert_eq!(sel.candidates.len(), 6);
    }

    #[test]
    fn mis_strategy_enforces_candidate_floor() {
        // n=7, f=2: K must always contain at least 5 replicas, even when an
        // adversary floods the log with suspicions among many pairs.
        let mut m = monitor(7, 2);
        let pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (0, 2), (1, 3)];
        for (i, &(a, b)) in pairs.iter().enumerate() {
            m.on_suspicion(&slow(a, b, i as u64, 1));
            m.on_suspicion(&slow(b, a, i as u64, 1));
        }
        let sel = m.selection();
        assert!(
            sel.candidates.len() >= 5,
            "C1 violated: |K| = {}",
            sel.candidates.len()
        );
    }

    #[test]
    fn stable_window_expires_old_suspicions() {
        let mut m = SuspicionMonitor::new(SuspicionMonitorParams::new(7, 2).with_window(3));
        m.on_view(1);
        m.on_suspicion(&slow(0, 1, 1, 1));
        m.on_suspicion(&slow(1, 0, 1, 1)); // reciprocated pair stays in G
        assert_eq!(m.edge_count(), 1);
        // Views pass with no new suspicions; after window+1 views the edge expires.
        for v in 2..=6 {
            m.on_view(v);
        }
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.selection().estimate_u, 0);
    }

    #[test]
    fn tree_strategy_counts_u_as_disjoint_edges_plus_triangles() {
        let mut m = SuspicionMonitor::new(SuspicionMonitorParams::new(9, 2).with_tree_strategy());
        // Mutual suspicions 0<->1 and 2<->3, plus 4 forming a triangle with (0,1).
        for &(a, b) in &[(0usize, 1usize), (2, 3), (0, 4), (1, 4)] {
            m.on_suspicion(&slow(a, b, 1, 1));
            m.on_suspicion(&slow(b, a, 1, 1));
        }
        let sel = m.selection();
        assert_eq!(sel.estimate_u, 3, "|E_d|=2 plus |T|=1");
        for r in [0, 1, 2, 3, 4] {
            assert!(!sel.contains(r), "replica {r} should be excluded");
        }
        assert_eq!(sel.candidates.len(), 4);
    }

    // ---- edge cases: empty graph, saturation, expiry boundaries -----------

    #[test]
    fn empty_suspicion_graph_keeps_every_replica_a_candidate() {
        let mut m = monitor(7, 2);
        let g = m.graph();
        assert_eq!(g.vertex_count(), 7);
        assert!(g.edges().is_empty());
        let sel = m.selection();
        assert_eq!(sel.candidates.len(), 7);
        assert_eq!(sel.estimate_u, 0);
        assert!(m.crashed().is_empty());
        assert_eq!(m.edge_count(), 0);
        // Views passing over an empty monitor change nothing.
        for v in 1..50 {
            m.on_view(v);
        }
        assert_eq!(m.selection().candidates.len(), 7);
    }

    #[test]
    fn all_replicas_suspected_still_meets_candidate_floor() {
        // Every pair accuses each other: the suspicion graph is complete, so
        // any independent set has size 1. The MIS strategy must discard old
        // suspicions until Lemma 1's floor |K| >= n - f holds again.
        let n = 7;
        let f = 2;
        let mut m = monitor(n, f);
        let mut round = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                m.on_suspicion(&slow(a, b, round, 1));
                m.on_suspicion(&slow(b, a, round, 1));
                round += 1;
            }
        }
        let sel = m.selection();
        assert!(
            sel.candidates.len() >= n - f,
            "floor violated with complete graph: |K| = {}",
            sel.candidates.len()
        );
        // The estimate is consistent with the remaining (post-discard) graph.
        assert_eq!(sel.estimate_u, m.graph().vertex_count() - sel.candidates.len());
    }

    #[test]
    fn stable_window_expiry_boundary_is_exclusive() {
        // window = 3: with the last suspicion accepted at view 1, views 2..=4
        // (difference <= window) must NOT expire anything; view 5 is the
        // first that may.
        let mut m = SuspicionMonitor::new(SuspicionMonitorParams::new(7, 2).with_window(3));
        m.on_view(1);
        m.on_suspicion(&slow(0, 1, 1, 1));
        m.on_suspicion(&slow(1, 0, 1, 1)); // reciprocated: survives crash expiry
        assert_eq!(m.edge_count(), 1);
        for v in 2..=4 {
            m.on_view(v);
            assert_eq!(m.edge_count(), 1, "expired too early at view {v}");
        }
        m.on_view(5);
        assert_eq!(m.edge_count(), 0, "view 5 exceeds the stable window");
    }

    #[test]
    fn reciprocation_window_boundary_is_exclusive() {
        // reciprocation_views = f + 1 = 3: an un-reciprocated suspicion from
        // view 1 leaves the accused un-crashed through view 4 (difference
        // exactly 3) and crashes them at view 5.
        let mut m = monitor(7, 2);
        m.on_view(1);
        m.on_suspicion(&slow(0, 3, 1, 1));
        m.on_view(4);
        assert!(
            m.crashed().is_empty(),
            "crashed exactly at the boundary instead of past it"
        );
        m.on_view(5);
        assert!(m.crashed().contains(&3));
        // Crashed replicas leave the vertex set entirely.
        assert_eq!(m.graph().vertex_count(), 6);
        assert!(!m.selection().contains(3));
    }

    #[test]
    fn stable_window_expires_oldest_edge_first() {
        let mut m = SuspicionMonitor::new(SuspicionMonitorParams::new(9, 2).with_window(2));
        m.on_view(1);
        m.on_suspicion(&slow(0, 1, 1, 1));
        m.on_suspicion(&slow(1, 0, 1, 1));
        m.on_suspicion(&slow(2, 3, 2, 1));
        m.on_suspicion(&slow(3, 2, 2, 1));
        assert_eq!(m.edge_count(), 2);
        // Quiet views: expiry drops one edge per view, oldest first.
        m.on_view(4);
        assert_eq!(m.edge_count(), 1);
        let g = m.graph();
        assert!(
            g.has_edge(2, 3) && !g.has_edge(0, 1),
            "oldest edge (0,1) should expire before (2,3)"
        );
        m.on_view(5);
        assert_eq!(m.edge_count(), 0);
    }

    #[test]
    fn self_and_out_of_range_suspicions_ignored() {
        let mut m = monitor(4, 1);
        m.on_suspicion(&slow(2, 2, 1, 1));
        m.on_suspicion(&slow(9, 0, 1, 1));
        m.on_suspicion(&slow(0, 9, 1, 1));
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.accepted(), 0);
    }
}
