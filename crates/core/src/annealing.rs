//! Generic simulated annealing for configuration search (§4.2.4, \[40\]).
//!
//! Configuration spaces grow exponentially with the number of replicas, so
//! OptiLog's ConfigSensor explores them heuristically. The search is
//! intentionally *non-deterministic across replicas* (different seeds /
//! starting points increase the chance that some replica finds a good
//! configuration); determinism is restored by logging the results and letting
//! the deterministic ConfigMonitor pick among them.
//!
//! The [`SearchSpace`] trait supplies a random initial configuration, a
//! mutation operator, and a score (lower is better); [`Annealer`] runs the
//! exponential-cooling schedule with an iteration budget standing in for the
//! paper's wall-clock search time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A configuration search problem.
pub trait SearchSpace {
    /// The configuration type being optimised.
    type Config: Clone;

    /// A random valid starting configuration.
    fn random_config(&self, rng: &mut StdRng) -> Self::Config;

    /// Mutate a configuration into a neighbouring one. Implementations must
    /// preserve validity (e.g. only swap special roles with candidates).
    fn mutate(&self, config: &Self::Config, rng: &mut StdRng) -> Self::Config;

    /// Score a configuration; lower is better (predicted latency in ms).
    fn score(&self, config: &Self::Config) -> f64;
}

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingParams {
    /// Iteration budget (stands in for the paper's search timer).
    pub iterations: usize,
    /// Initial temperature, in score units.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied every iteration.
    pub cooling: f64,
    /// Stop early once the temperature falls below this threshold
    /// ("simulated annealing converges", §4.2.4).
    pub min_temperature: f64,
    /// Number of independent restarts; the best result across restarts wins.
    pub restarts: usize,
}

impl Default for AnnealingParams {
    fn default() -> Self {
        AnnealingParams {
            iterations: 10_000,
            initial_temperature: 100.0,
            cooling: 0.999,
            min_temperature: 1e-3,
            restarts: 1,
        }
    }
}

impl AnnealingParams {
    /// A budget roughly equivalent to a wall-clock search time, given an
    /// estimated iteration rate (iterations per second). Used by the Fig 12
    /// harness to map the paper's 250 ms – 4 s search times to budgets.
    pub fn from_search_time(seconds: f64, iterations_per_second: f64) -> Self {
        Self::budgeted((seconds * iterations_per_second).max(1.0) as usize)
    }

    /// A schedule whose cooling is tied to the iteration budget: the
    /// temperature reaches `min_temperature` right at the end of the budget
    /// instead of after a fixed ~11.5 k iterations (the default cooling's
    /// convergence point). Without this, every budget beyond that point
    /// early-stops at the same place and search time stops mattering — the
    /// Fig 12 score-vs-search-time curve came out flat. With it, longer
    /// searches cool slower and actually explore more.
    pub fn budgeted(iterations: usize) -> Self {
        let d = AnnealingParams::default();
        let cooling = (d.min_temperature / d.initial_temperature)
            .powf(1.0 / iterations.max(1) as f64);
        AnnealingParams {
            iterations,
            cooling,
            ..d
        }
    }
}

/// The result of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealingResult<C> {
    /// The best configuration found.
    pub config: C,
    /// Its score.
    pub score: f64,
    /// Iterations actually executed (across restarts).
    pub iterations: usize,
    /// Number of accepted moves (diagnostics).
    pub accepted_moves: usize,
}

/// The simulated-annealing driver.
#[derive(Debug, Clone)]
pub struct Annealer {
    params: AnnealingParams,
}

impl Annealer {
    /// Create an annealer with the given schedule.
    pub fn new(params: AnnealingParams) -> Self {
        Annealer { params }
    }

    /// The schedule parameters.
    pub fn params(&self) -> &AnnealingParams {
        &self.params
    }

    /// Run the search with a seeded RNG (seed differs per replica in the
    /// paper's collaborative search).
    pub fn search<S: SearchSpace>(&self, space: &S, seed: u64) -> AnnealingResult<S::Config> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best_overall: Option<(S::Config, f64)> = None;
        let mut total_iterations = 0;
        let mut accepted_moves = 0;

        for restart in 0..self.params.restarts.max(1) {
            let mut current = space.random_config(&mut rng);
            let mut current_score = space.score(&current);
            let mut best = current.clone();
            let mut best_score = current_score;
            let mut temperature = self.params.initial_temperature;
            let per_restart = self.params.iterations / self.params.restarts.max(1);

            for _ in 0..per_restart.max(1) {
                total_iterations += 1;
                if temperature < self.params.min_temperature {
                    break;
                }
                let candidate = space.mutate(&current, &mut rng);
                let candidate_score = space.score(&candidate);
                let delta = candidate_score - current_score;
                let accept = delta <= 0.0 || {
                    let p = (-delta / temperature).exp();
                    rng.gen::<f64>() < p
                };
                if accept {
                    current = candidate;
                    current_score = candidate_score;
                    accepted_moves += 1;
                    if current_score < best_score {
                        best = current.clone();
                        best_score = current_score;
                    }
                }
                temperature *= self.params.cooling;
            }

            match &best_overall {
                Some((_, s)) if *s <= best_score => {}
                _ => best_overall = Some((best, best_score)),
            }
            // Vary the trajectory across restarts deterministically.
            rng = StdRng::seed_from_u64(seed.wrapping_add(restart as u64 + 1));
        }

        let (config, score) = best_overall.expect("at least one restart ran");
        AnnealingResult {
            config,
            score,
            iterations: total_iterations,
            accepted_moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy search space: find a permutation of 0..n minimising the sum of
    /// |position - value| (identity permutation is optimal with score 0).
    struct PermutationSpace {
        n: usize,
    }

    impl SearchSpace for PermutationSpace {
        type Config = Vec<usize>;

        fn random_config(&self, rng: &mut StdRng) -> Vec<usize> {
            let mut v: Vec<usize> = (0..self.n).collect();
            for i in (1..v.len()).rev() {
                let j = rng.gen_range(0..=i);
                v.swap(i, j);
            }
            v
        }

        fn mutate(&self, config: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
            let mut c = config.clone();
            let i = rng.gen_range(0..c.len());
            let j = rng.gen_range(0..c.len());
            c.swap(i, j);
            c
        }

        fn score(&self, config: &Vec<usize>) -> f64 {
            config
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 - v as f64).abs())
                .sum()
        }
    }

    #[test]
    fn annealing_improves_over_random() {
        let space = PermutationSpace { n: 20 };
        let mut rng = StdRng::seed_from_u64(0);
        let random_score = space.score(&space.random_config(&mut rng));
        let result = Annealer::new(AnnealingParams {
            iterations: 20_000,
            ..Default::default()
        })
        .search(&space, 1);
        assert!(result.score < random_score);
        assert!(result.score <= 4.0, "near-optimal, got {}", result.score);
        assert!(result.accepted_moves > 0);
    }

    #[test]
    fn longer_search_is_no_worse() {
        let space = PermutationSpace { n: 40 };
        let short = Annealer::new(AnnealingParams {
            iterations: 200,
            ..Default::default()
        })
        .search(&space, 7);
        let long = Annealer::new(AnnealingParams {
            iterations: 50_000,
            ..Default::default()
        })
        .search(&space, 7);
        assert!(long.score <= short.score);
    }

    #[test]
    fn same_seed_same_result_different_seed_may_differ() {
        let space = PermutationSpace { n: 15 };
        let annealer = Annealer::new(AnnealingParams {
            iterations: 2_000,
            ..Default::default()
        });
        let a = annealer.search(&space, 42);
        let b = annealer.search(&space, 42);
        assert_eq!(a.config, b.config);
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn restarts_never_hurt() {
        let space = PermutationSpace { n: 30 };
        let single = Annealer::new(AnnealingParams {
            iterations: 10_000,
            restarts: 1,
            ..Default::default()
        })
        .search(&space, 3);
        let multi = Annealer::new(AnnealingParams {
            iterations: 10_000,
            restarts: 4,
            ..Default::default()
        })
        .search(&space, 3);
        // Not a strict guarantee in general, but with the same total budget
        // on this small space both should be near-optimal; just check both
        // produced valid permutations and finite scores.
        assert!(single.score.is_finite());
        assert!(multi.score.is_finite());
    }

    #[test]
    fn from_search_time_scales_budget() {
        let a = AnnealingParams::from_search_time(0.25, 1000.0);
        let b = AnnealingParams::from_search_time(4.0, 1000.0);
        assert_eq!(a.iterations, 250);
        assert_eq!(b.iterations, 4000);
        // The cooling schedule spans the budget: shorter searches cool faster.
        assert!(a.cooling < b.cooling);
        assert!(b.cooling < 1.0);
    }

    /// The Fig 12 regression: with the fixed default cooling, every budget
    /// beyond ~11.5 k iterations early-stopped at the min-temperature
    /// convergence point, so larger budgets explored nothing extra. A
    /// budget-tied schedule must spend its whole budget.
    #[test]
    fn budgeted_schedule_spends_the_whole_budget() {
        let space = PermutationSpace { n: 40 };
        let stuck = Annealer::new(AnnealingParams {
            iterations: 50_000,
            ..Default::default()
        })
        .search(&space, 5);
        assert!(
            stuck.iterations < 50_000,
            "the default schedule early-stops (documents the old behaviour), ran {}",
            stuck.iterations
        );
        let full = Annealer::new(AnnealingParams::budgeted(50_000)).search(&space, 5);
        assert_eq!(full.iterations, 50_000, "budget-tied cooling must not early-stop");
    }

    #[test]
    fn budgeted_longer_search_explores_more_and_is_no_worse() {
        let space = PermutationSpace { n: 60 };
        let short = Annealer::new(AnnealingParams::budgeted(300)).search(&space, 11);
        let long = Annealer::new(AnnealingParams::budgeted(60_000)).search(&space, 11);
        assert_eq!(short.iterations, 300);
        assert_eq!(long.iterations, 60_000);
        assert!(
            long.score < short.score,
            "60k iterations should beat 300 on a 60-element space: {} vs {}",
            long.score,
            short.score
        );
    }
}
