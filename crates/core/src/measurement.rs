//! Measurement types appended to the shared log, and their wire-size model.
//!
//! Everything OptiLog records — latency vectors, suspicions, misbehavior
//! complaints, and configuration proposals — is replicated through the same
//! consensus engine as client commands and appended to an ordered log
//! (Fig 1). [`Measurement`] is the union of those entry types;
//! [`MeasurementLog`] is a thin wrapper over [`rsm::AppendLog`] that also
//! tracks per-sensor byte overhead, which the Fig 13 experiment reports.

use crate::latency::LatencyVector;
use crate::suspicion::Suspicion;
use crypto::{Complaint, Digest, Hashable};
use rsm::AppendLog;
use serde::{Deserialize, Serialize};

/// A generic, protocol-agnostic configuration proposal recorded in the log.
/// The payload encodes the protocol-specific configuration (weights, tree
/// layout, …); the score lets other replicas rank proposals without
/// re-running the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedConfigProposal {
    /// The replica proposing the configuration.
    pub proposer: usize,
    /// Configuration epoch the proposal targets.
    pub epoch: u64,
    /// The proposer's claimed score (lower is better — predicted round latency in ms).
    pub score: f64,
    /// Opaque encoding of the configuration.
    pub payload: Vec<u8>,
}

impl LoggedConfigProposal {
    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + 8 + 8 + self.payload.len()
    }
}

/// One entry of the OptiLog measurement log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Measurement {
    /// A latency vector from the LatencySensor.
    Latency(LatencyVector),
    /// A suspicion from the SuspicionSensor.
    Suspicion(Suspicion),
    /// A misbehavior complaint from the MisbehaviorSensor.
    Complaint(Complaint),
    /// A configuration proposal from the ConfigSensor.
    Config(LoggedConfigProposal),
}

impl Measurement {
    /// Wire size of the entry in bytes, following the compact encoding the
    /// paper uses to keep proposal overhead low (§7.8).
    pub fn wire_bytes(&self) -> usize {
        1 + match self {
            Measurement::Latency(v) => v.wire_bytes(),
            Measurement::Suspicion(s) => s.wire_bytes(),
            Measurement::Complaint(c) => c.wire_bytes(),
            Measurement::Config(p) => p.wire_bytes(),
        }
    }

    /// Short label for diagnostics and the overhead harness.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Measurement::Latency(_) => "latency",
            Measurement::Suspicion(_) => "suspicion",
            Measurement::Complaint(_) => "complaint",
            Measurement::Config(_) => "config",
        }
    }
}

impl Hashable for Measurement {
    fn digest(&self) -> Digest {
        match self {
            Measurement::Latency(v) => {
                let bytes: Vec<u8> = v
                    .rtt_ms
                    .iter()
                    .flat_map(|x| x.to_bits().to_le_bytes())
                    .collect();
                Digest::of_parts(&[b"m-latency", &v.reporter.to_le_bytes(), &bytes])
            }
            Measurement::Suspicion(s) => Digest::of_parts(&[
                b"m-suspicion",
                &s.accuser.to_le_bytes(),
                &s.accused.to_le_bytes(),
                &s.round.to_le_bytes(),
                &s.phase.to_le_bytes(),
            ]),
            Measurement::Complaint(c) => {
                Digest::of_parts(&[b"m-complaint", &c.reporter.to_le_bytes(), &c.proof.digest().0])
            }
            Measurement::Config(p) => Digest::of_parts(&[
                b"m-config",
                &p.proposer.to_le_bytes(),
                &p.epoch.to_le_bytes(),
                &p.score.to_bits().to_le_bytes(),
                &p.payload,
            ]),
        }
    }
}

/// The ordered log of committed measurements, with per-kind byte accounting.
#[derive(Debug, Clone)]
pub struct MeasurementLog {
    log: AppendLog<Measurement>,
    latency_bytes: usize,
    suspicion_bytes: usize,
    complaint_bytes: usize,
    config_bytes: usize,
}

impl Default for MeasurementLog {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementLog {
    /// Create an empty log.
    pub fn new() -> Self {
        MeasurementLog {
            log: AppendLog::new(),
            latency_bytes: 0,
            suspicion_bytes: 0,
            complaint_bytes: 0,
            config_bytes: 0,
        }
    }

    /// Append a committed measurement; returns its sequence number.
    pub fn append(&mut self, m: Measurement) -> u64 {
        let bytes = m.wire_bytes();
        match &m {
            Measurement::Latency(_) => self.latency_bytes += bytes,
            Measurement::Suspicion(_) => self.suspicion_bytes += bytes,
            Measurement::Complaint(_) => self.complaint_bytes += bytes,
            Measurement::Config(_) => self.config_bytes += bytes,
        }
        self.log.append(m)
    }

    /// Number of committed measurements.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if no measurements have been committed.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Iterate over committed measurements in order.
    pub fn iter(&self) -> impl Iterator<Item = &Measurement> {
        self.log.iter().map(|e| &e.value)
    }

    /// Digest of the whole log prefix (cross-replica consistency checks).
    pub fn prefix_digest(&self) -> Digest {
        self.log.prefix_digest()
    }

    /// Total bytes appended for a given measurement kind label.
    pub fn bytes_for(&self, kind: &str) -> usize {
        match kind {
            "latency" => self.latency_bytes,
            "suspicion" => self.suspicion_bytes,
            "complaint" => self.complaint_bytes,
            "config" => self.config_bytes,
            _ => 0,
        }
    }

    /// Total bytes across all measurement kinds.
    pub fn total_bytes(&self) -> usize {
        self.latency_bytes + self.suspicion_bytes + self.complaint_bytes + self.config_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suspicion::SuspicionKind;
    use crypto::{Keyring, MisbehaviorKind, MisbehaviorProof};

    fn sample_suspicion() -> Suspicion {
        Suspicion {
            kind: SuspicionKind::Slow,
            accuser: 1,
            accused: 2,
            round: 9,
            phase: 1,
            accuser_is_leader: false,
        }
    }

    #[test]
    fn append_tracks_per_kind_bytes() {
        let mut log = MeasurementLog::new();
        log.append(Measurement::Latency(LatencyVector::new(0, vec![0.0; 20])));
        log.append(Measurement::Suspicion(sample_suspicion()));
        assert_eq!(log.len(), 2);
        assert!(log.bytes_for("latency") > log.bytes_for("suspicion"));
        assert_eq!(log.bytes_for("complaint"), 0);
        assert_eq!(
            log.total_bytes(),
            log.bytes_for("latency") + log.bytes_for("suspicion")
        );
    }

    #[test]
    fn wire_sizes_match_paper_relations() {
        // Latency vectors scale with n; suspicions are tiny and constant;
        // complaints with embedded proofs are the largest (Fig 13).
        let lv20 = Measurement::Latency(LatencyVector::new(0, vec![0.0; 20])).wire_bytes();
        let lv80 = Measurement::Latency(LatencyVector::new(0, vec![0.0; 80])).wire_bytes();
        assert!(lv80 > lv20);

        let sus = Measurement::Suspicion(sample_suspicion()).wire_bytes();
        assert!(sus < 32);

        let ring = Keyring::new(1, 4);
        let d1 = crypto::Digest::of(b"a");
        let d2 = crypto::Digest::of(b"b");
        let proof = MisbehaviorProof {
            accused: 2,
            kind: MisbehaviorKind::Equivocation {
                view: 1,
                first: (d1, ring.key(2).sign(&d1)),
                second: (d2, ring.key(2).sign(&d2)),
            },
        };
        let complaint = Measurement::Complaint(Complaint::new(0, proof, &ring)).wire_bytes();
        assert!(complaint > sus);
        assert!(complaint > lv80 / 2);
    }

    #[test]
    fn identical_logs_have_identical_digests() {
        let build = || {
            let mut log = MeasurementLog::new();
            log.append(Measurement::Latency(LatencyVector::new(0, vec![0.0, 5.0])));
            log.append(Measurement::Suspicion(sample_suspicion()));
            log
        };
        assert_eq!(build().prefix_digest(), build().prefix_digest());

        let mut other = build();
        other.append(Measurement::Config(LoggedConfigProposal {
            proposer: 0,
            epoch: 1,
            score: 10.0,
            payload: vec![1, 2, 3],
        }));
        assert_ne!(build().prefix_digest(), other.prefix_digest());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(
            Measurement::Suspicion(sample_suspicion()).kind_label(),
            "suspicion"
        );
        assert_eq!(
            Measurement::Latency(LatencyVector::new(0, vec![])).kind_label(),
            "latency"
        );
    }
}
