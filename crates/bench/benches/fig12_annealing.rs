//! Criterion bench for Fig 12: simulated-annealing tree search cost per
//! iteration budget and configuration size.

use bench::Deployment;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optilog::AnnealingParams;
use optitree::{search_tree, TreeSearchSpace};
use rsm::SystemConfig;

fn space(n: usize) -> TreeSearchSpace {
    let system = SystemConfig::new(n);
    TreeSearchSpace {
        n,
        branch: system.tree_branch_factor(),
        matrix_rtt_ms: Deployment::WorldRandom.rtt_matrix(n, 0),
        candidates: (0..n).collect(),
        k: system.quorum(),
    }
}

fn bench_tree_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_tree_search");
    group.sample_size(10);
    for &n in &[57usize, 111, 211] {
        let sp = space(n);
        group.bench_with_input(BenchmarkId::new("sa_1000_iters", n), &n, |b, _| {
            b.iter(|| {
                search_tree(
                    &sp,
                    AnnealingParams {
                        iterations: 1_000,
                        ..Default::default()
                    },
                    1,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_search);
criterion_main!(benches);
