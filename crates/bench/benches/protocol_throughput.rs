//! Criterion bench comparing one second of simulated consensus for the three
//! protocol substrates (supports the Fig 9 shape at micro scale).

use bench::Deployment;
use criterion::{criterion_group, criterion_main, Criterion};
use hotstuff::{run_hotstuff, HotStuffConfig, Pacemaker};
use kauri::{run_kauri, KauriBinsPolicy, KauriConfig, TreePolicy};
use netsim::{Duration, FaultPlan, MatrixLatency};
use optitree::OptiTreePolicy;
use rsm::SystemConfig;

fn bench_protocols(c: &mut Criterion) {
    let n = 21;
    let rtt = Deployment::Europe21.rtt_matrix(n, 0);
    let system = SystemConfig::new(n);
    let mut group = c.benchmark_group("protocol_1s_europe21");
    group.sample_size(10);

    group.bench_function("hotstuff_fixed", |b| {
        b.iter(|| {
            let mut cfg = HotStuffConfig::new(n, Pacemaker::Fixed { leader: 0 });
            cfg.run_for = Duration::from_secs(1);
            run_hotstuff(&cfg, Box::new(MatrixLatency::from_rtt_millis(n, &rtt)), FaultPlan::none())
        })
    });
    group.bench_function("kauri_pipeline", |b| {
        b.iter(|| {
            let mut cfg = KauriConfig::new(n);
            cfg.run_for = Duration::from_secs(1);
            run_kauri(
                &cfg,
                Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
                FaultPlan::none(),
                |_| Box::new(KauriBinsPolicy::new(n, 4, 1)) as Box<dyn TreePolicy>,
            )
        })
    });
    group.bench_function("optitree_pipeline", |b| {
        b.iter(|| {
            let mut cfg = KauriConfig::new(n);
            cfg.run_for = Duration::from_secs(1);
            let rtt_clone = rtt.clone();
            run_kauri(
                &cfg,
                Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
                FaultPlan::none(),
                move |_| Box::new(OptiTreePolicy::new(system, rtt_clone.clone(), 7)) as Box<dyn TreePolicy>,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
