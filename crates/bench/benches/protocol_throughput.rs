//! Criterion bench timing one second of simulated consensus for all four
//! substrate families (BFT-SMaRt/PBFT, HotStuff, Kauri, OptiTree) at
//! n ∈ {7, 25, 100} replicas, with an events/sec engine-throughput metric.
//!
//! Replicas are placed on the Europe21 city sample (round-robin, so any `n`
//! is valid). Each benchmark simulates `sim_run_for(n)` of virtual time —
//! one second at n ∈ {7, 25}, a quarter second at n = 100 so the big
//! configurations stay inside CI smoke time. Before timing, each
//! configuration prints one `events:` line (simulator events processed and
//! events/sec over a probe run) — the engine-throughput view of the same
//! runs; `bench_engine` records the wheel-vs-heap comparison to
//! `BENCH_engine.json`.
//!
//! Run with `cargo bench --bench protocol_throughput`.

use bench::Deployment;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotstuff::{HotStuffConfig, Pacemaker};
use kauri::{KauriBinsPolicy, KauriConfig, TreePolicy};
use lab::{run_hotstuff, run_kauri, PbftHarness, PbftHarnessConfig};
use netsim::{Duration, FaultPlan, MatrixLatency};
use optitree::OptiTreePolicy;
use pbft::StaticPolicy;
use rsm::SystemConfig;
use std::time::Instant;

const SIZES: [usize; 3] = [7, 25, 100];

fn sim_run_for(n: usize) -> Duration {
    if n >= 100 {
        Duration::from_millis(250)
    } else {
        Duration::from_secs(1)
    }
}

fn latency(n: usize, rtt: &[f64]) -> Box<MatrixLatency> {
    Box::new(MatrixLatency::from_rtt_millis(n, rtt))
}

fn run_pbft(n: usize, rtt: &[f64]) -> u64 {
    let f = (n - 1) / 3;
    let cfg = PbftHarnessConfig::new(n, f, 2 * n, rtt.to_vec()).run_for(sim_run_for(n));
    PbftHarness::run(&cfg, "static", |_| Box::new(StaticPolicy)).events
}

fn run_hotstuff_bench(n: usize, rtt: &[f64]) -> u64 {
    let mut cfg = HotStuffConfig::new(n, Pacemaker::Fixed { leader: 0 });
    cfg.run_for = sim_run_for(n);
    run_hotstuff(&cfg, latency(n, rtt), FaultPlan::none()).events
}

fn run_kauri_bench(n: usize, rtt: &[f64]) -> u64 {
    let mut cfg = KauriConfig::new(n);
    cfg.run_for = sim_run_for(n);
    run_kauri(&cfg, latency(n, rtt), FaultPlan::none(), |_| {
        Box::new(KauriBinsPolicy::new(n, 4, 1)) as Box<dyn TreePolicy>
    })
    .events
}

fn run_optitree_bench(n: usize, rtt: &[f64]) -> u64 {
    let system = SystemConfig::new(n);
    let mut cfg = KauriConfig::new(n);
    cfg.run_for = sim_run_for(n);
    let rtt_owned = rtt.to_vec();
    run_kauri(&cfg, latency(n, rtt), FaultPlan::none(), move |_| {
        Box::new(OptiTreePolicy::new(system, rtt_owned.clone(), 7)) as Box<dyn TreePolicy>
    })
    .events
}

type FamilyRunner = fn(usize, &[f64]) -> u64;

fn bench_protocols(c: &mut Criterion) {
    let families: [(&str, FamilyRunner); 4] = [
        ("pbft_static", run_pbft),
        ("hotstuff_fixed", run_hotstuff_bench),
        ("kauri_pipeline", run_kauri_bench),
        ("optitree_pipeline", run_optitree_bench),
    ];
    let mut group = c.benchmark_group("protocol_throughput_europe21");
    group.sample_size(10);
    for &n in &SIZES {
        let rtt = Deployment::Europe21.rtt_matrix(n, 0);
        for (name, runner) in families {
            // Engine-throughput probe: events processed and events/sec for
            // one run of this configuration.
            let start = Instant::now();
            let events = runner(n, &rtt);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            println!(
                "events: {name}/n={n:<3} {events:>9} events  {:>12.0} events/sec",
                events as f64 / secs
            );
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| runner(n, &rtt))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
