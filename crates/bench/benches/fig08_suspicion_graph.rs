//! Criterion bench for Fig 8: candidate-set computation (maximum independent
//! set via Bron-Kerbosch on the inverted graph) for growing suspicion graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optilog::{CandidateSelector, SelectionStrategy, SuspicionGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, edge_prob: f64, seed: u64) -> SuspicionGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SuspicionGraph::new(0..n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(edge_prob) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

fn bench_candidate_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_candidate_set");
    group.sample_size(10);
    for &n in &[16usize, 48, 100] {
        let graph = random_graph(n, 0.15, n as u64);
        let mis = CandidateSelector::new(SelectionStrategy::MaxIndependentSet { budget: 500_000 });
        let tree = CandidateSelector::new(SelectionStrategy::TreeExclusion);
        group.bench_with_input(BenchmarkId::new("max_independent_set", n), &n, |b, _| {
            b.iter(|| mis.select(&graph))
        });
        group.bench_with_input(BenchmarkId::new("tree_exclusion", n), &n, |b, _| {
            b.iter(|| tree.select(&graph))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_selection);
criterion_main!(benches);
