//! The acceptance test for the reciprocal-suspicion-pair machinery (§6.4):
//! an *overtly-delaying intermediate* withholds everything it forwards, so
//! its subtree observes silence/staleness it cannot attribute beyond its own
//! upstream hop. Under the old rule the subtree deposed one innocent root
//! after another; now the (receiver, upstream) pairs commit through the
//! replicated configuration log and the whole cluster rotates coordinately:
//! the delayer loses its internal position, the innocent root is exonerated,
//! and recovery costs a single reconfiguration instead of a churn spiral.

use bench::intermediate_delay_spec;
use lab::{run_sweep, SweepOptions};

#[test]
fn intermediate_delayer_is_rotated_out_and_the_root_exonerated() {
    // 60 s run, seed 1, n = 13: the attacker is the initial tree's first
    // intermediate on every substrate (resolved through the same seeded
    // policy the run uses); the hold (2.5 s) is overt for every detector.
    let spec = intermediate_delay_spec(60, 13, vec![1]);
    let report = run_sweep(&spec, &SweepOptions::serial());

    for label in ["Kauri", "Kauri-sa", "OptiTree"] {
        let p = report.point(label).unwrap_or_else(|| panic!("missing point {label}"));
        // The §6.4 pairs committed through the log and they name the
        // delayer, not the root.
        assert!(
            p.metric("committed_pairs") >= 1.0,
            "{label}: the withheld subtree must commit pair evidence"
        );
        assert_eq!(
            p.metric("pairs_accuse_attacker"),
            1.0,
            "{label}: committed pairs must accuse the delaying intermediate"
        );
        // The rotation is coordinated — one reconfiguration driven by the
        // committed evidence, not a per-subtree churn spiral.
        let reconfigs = p.metric("reconfigurations");
        assert!(
            (1.0..=2.0).contains(&reconfigs),
            "{label}: expected a single coordinated rotation, got {reconfigs}"
        );
        // The attacker no longer holds an internal position afterwards.
        assert_eq!(
            p.metric("attacker_internal_final"),
            0.0,
            "{label}: the delayer must be rotated out of internal positions"
        );
        // The tree keeps committing through and after the episode: the
        // recovered window is no worse than 2x the clean one.
        let (clean, recovered) = (p.metric("lat_clean_ms"), p.metric("lat_recovered_ms"));
        assert!(clean > 0.0 && recovered > 0.0, "{label}: windows must be populated");
        assert!(
            recovered < clean * 2.0,
            "{label}: latency must recover, clean={clean:.1}ms recovered={recovered:.1}ms"
        );
    }

    // OptiTree's pair-driven candidate exclusion: the delayer is excluded,
    // the innocent root is exonerated (stays a candidate).
    let ot = report.point("OptiTree").expect("OptiTree point");
    assert_eq!(ot.metric("attacker_excluded"), 1.0, "pairs must exclude the delayer");
    assert_eq!(
        ot.metric("initial_root_excluded"),
        0.0,
        "the innocent root must stay eligible for roles"
    );

    // The §7.5 baseline shows why pairs matter: Kauri-sa's
    // exclude-all-internals rule throws the innocent root out with the
    // attacker.
    let sa = report.point("Kauri-sa").expect("Kauri-sa point");
    assert_eq!(
        sa.metric("initial_root_excluded"),
        1.0,
        "the baseline's whole-tree blame should depose the innocent root"
    );
}
