//! Acceptance tests for the open-loop load subsystem: the throughput–latency
//! sweep must show a monotone curve with a saturation knee on every
//! substrate family, byte-identical across worker-thread counts, and the
//! load-under-delay-attack scenario must show OptiAware preserving goodput
//! where the fixed-role policies collapse.

use bench::{load_attack_spec, load_latency_spec, LOAD_ATTACK_RATE};
use lab::{run_sweep, ScenarioReport, SweepOptions};

/// A reduced grid with the same shape as the full sweep: one load well
/// below every substrate's capacity, one near the slowest substrate's knee,
/// one far past every substrate's capacity (OptiTree, the fastest family,
/// saturates around 8.5 k ops/s on this topology).
const LOADS: [f64; 3] = [500.0, 2000.0, 16_000.0];

fn curve<'r>(report: &'r ScenarioReport, substrate: &str) -> Vec<&'r lab::PointReport> {
    LOADS
        .iter()
        .map(|&rate| {
            let label = format!("{substrate} | poisson@{rate:.0}");
            report
                .point(&label)
                .unwrap_or_else(|| panic!("missing point {label}"))
        })
        .collect()
}

#[test]
fn load_sweep_shows_saturation_knee_on_every_substrate() {
    let spec = load_latency_spec(20, 7, &LOADS, vec![1]);
    let report = run_sweep(&spec, &SweepOptions::serial().with_threads(4));

    for substrate in ["BFT-SMaRt", "HotStuff-fixed", "Kauri", "OptiTree"] {
        let points = curve(&report, substrate);

        // Committed throughput rises monotonically along the offered-load
        // axis (the curve), and tracks offered load below saturation.
        let committed: Vec<f64> = points.iter().map(|p| p.metric("committed_ops")).collect();
        let offered: Vec<f64> = points.iter().map(|p| p.metric("offered_ops")).collect();
        assert!(
            committed.windows(2).all(|w| w[1] >= w[0] * 0.98),
            "{substrate}: committed throughput must be monotone along the load axis: {committed:?}"
        );
        assert!(
            committed[0] >= offered[0] * 0.9,
            "{substrate}: below saturation committed ({}) must track offered ({})",
            committed[0],
            offered[0]
        );

        // The knee: at the top of the grid, committed throughput has
        // plateaued *below* the offered load and the bounded queue rejects
        // the excess…
        let top = points.last().expect("top point");
        assert!(
            *committed.last().unwrap() < offered.last().unwrap() * 0.9,
            "{substrate}: committed must plateau below offered at the top of the grid"
        );
        assert!(
            top.metric("rejected") > 0.0,
            "{substrate}: backpressure must reject load past the knee"
        );

        // …and end-to-end p99 has left the consensus-latency regime for the
        // queue-drain regime.
        let p99_low = points[0].metric("e2e_p99_ms");
        let p99_top = top.metric("e2e_p99_ms");
        assert!(p99_low > 0.0, "{substrate}: low-load p99 must be populated");
        assert!(
            p99_top >= 3.0 * p99_low,
            "{substrate}: saturated p99 ({p99_top:.1} ms) must be ≥ 3× the low-load p99 ({p99_low:.1} ms)"
        );

        // Every point carries the client-side timelines for the BENCH json.
        for p in &points {
            let cell = &p.cells[0];
            assert!(!cell.metrics.series["e2e_timeline"].is_empty());
            assert!(!cell.metrics.series["goodput_timeline"].is_empty());
            assert!(!cell.metrics.series["queue_depth_timeline"].is_empty());
        }
    }
}

#[test]
fn load_sweep_json_is_byte_identical_across_thread_counts() {
    let spec = load_latency_spec(10, 7, &[1000.0, 6000.0], vec![0, 1]);
    let serial = run_sweep(&spec, &SweepOptions::serial());
    let parallel = run_sweep(&spec, &SweepOptions::serial().with_threads(4));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "BENCH_load_latency.json must not depend on --threads"
    );
}

#[test]
fn optiaware_preserves_goodput_under_the_delay_attack() {
    let spec = load_attack_spec(90, 7, vec![1]);
    let report = run_sweep(&spec, &SweepOptions::serial().with_threads(3));

    // Everyone runs clean phases at the offered rate.
    for substrate in ["Aware", "OptiAware", "HotStuff-fixed"] {
        let p = report.point(substrate).expect("point exists");
        assert!(
            p.metric("goodput_clean_ops") > LOAD_ATTACK_RATE * 0.9,
            "{substrate}: clean-phase goodput {} below the offered {LOAD_ATTACK_RATE}",
            p.metric("goodput_clean_ops")
        );
    }

    // During the attack the fixed-role policies collapse (the attacked
    // leader's capacity is ~125/s and every commit blows the SLO), while
    // OptiAware strips the attacker of the role and keeps serving.
    let opti = report.metric("OptiAware", "goodput_attack_ops");
    let aware = report.metric("Aware", "goodput_attack_ops");
    let hotstuff = report.metric("HotStuff-fixed", "goodput_attack_ops");
    assert!(
        opti >= LOAD_ATTACK_RATE * 0.5,
        "OptiAware must preserve most of the offered goodput under attack, got {opti:.0}/s"
    );
    assert!(
        opti >= 2.0 * aware.max(1.0),
        "OptiAware ({opti:.0}/s) must beat Aware ({aware:.0}/s) by ≥ 2× during the attack"
    );
    assert!(
        opti >= 2.0 * hotstuff.max(1.0),
        "OptiAware ({opti:.0}/s) must beat HotStuff-fixed ({hotstuff:.0}/s) by ≥ 2× during the attack"
    );

    // The collapse is visible as backpressure and blown deadlines, not as a
    // silent accounting artefact.
    assert!(report.metric("Aware", "rejected") > 0.0);
    assert!(
        report.metric("Aware", "lat_attack_ms") > 10.0 * report.metric("Aware", "lat_clean_ms"),
        "the attacked fixed policy must show queue-drain latencies"
    );

    // Once the attack stage closes, everyone drains back to offered rate.
    for substrate in ["Aware", "OptiAware", "HotStuff-fixed"] {
        let p = report.point(substrate).expect("point exists");
        assert!(
            p.metric("goodput_recovered_ops") > LOAD_ATTACK_RATE * 0.8,
            "{substrate}: post-attack goodput {} should recover",
            p.metric("goodput_recovered_ops")
        );
    }
}
