//! The latency-anatomy acceptance test for the critical-path attribution:
//! under the Fig 7 root-delay attack, the `hold` phase — time the committed
//! commands spent behind the root's withheld disseminations — must account
//! for the majority of the latency the attack *adds* over the clean phase,
//! and must be near-zero outside it. A breakdown that smears the added
//! latency into `dissem`/`vote` (e.g. by only crediting holds of the
//! command's own view and missing the pipelined overlap) fails here.

use bench::tree_delay_attack_spec;
use lab::CellMetrics;

const PHASES: [&str; 7] = [
    "ingress",
    "admission",
    "hold",
    "dissem",
    "vote",
    "reply",
    "other",
];

fn metric(m: &CellMetrics, key: &str) -> f64 {
    *m.values
        .get(key)
        .unwrap_or_else(|| panic!("missing breakdown metric {key}: {:?}", m.values.keys()))
}

/// Per-window mean e2e latency, reassembled from the phase means (the
/// phases partition each command's e2e exactly, so the sum is the mean).
fn window_e2e_mean(m: &CellMetrics, window: &str) -> f64 {
    PHASES
        .iter()
        .map(|p| metric(m, &format!("breakdown.{window}.{p}.mean_ms")))
        .sum()
}

#[test]
fn hold_dominates_added_latency_under_root_delay() {
    // Same cell as tree_delay_attack_shows_fig7_shape: 60 s, n=13, seed 1 —
    // covert 600 ms holds start at t=20 s; the `attack` window is the two
    // seconds after onset, `clean` the pre-attack steady state.
    let spec = tree_delay_attack_spec(60, 13, vec![1]);
    let points = spec.points();

    for label in [
        "HotStuff-fixed",
        "Kauri",
        "OptiTree",
        "OptiTree (no pipeline)",
    ] {
        let point = points
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("missing point {label}"));
        let m = spec.run_cell_breakdown(point, 1);

        for w in ["clean", "attack"] {
            assert!(
                metric(&m, &format!("breakdown.{w}.commands")) > 0.0,
                "{label}: no committed commands attributed in the {w} window"
            );
        }

        let clean_e2e = window_e2e_mean(&m, "clean");
        let attack_e2e = window_e2e_mean(&m, "attack");
        let clean_hold = metric(&m, "breakdown.clean.hold.mean_ms");
        let attack_hold = metric(&m, "breakdown.attack.hold.mean_ms");

        // Outside the attack nothing is withheld: hold must be a rounding
        // error next to the clean-phase commit latency.
        assert!(
            clean_hold < (clean_e2e * 0.05).max(2.0),
            "{label}: clean-window hold should be near-zero, \
             got {clean_hold:.1} ms of {clean_e2e:.1} ms e2e"
        );

        // During the attack the added latency IS the hold: the withheld
        // dissemination shows up as `hold`, not smeared into other phases.
        let added = attack_e2e - clean_e2e;
        let added_hold = attack_hold - clean_hold;
        assert!(
            added > clean_e2e,
            "{label}: the 600 ms hold must visibly spike the attack window, \
             clean={clean_e2e:.1} ms attack={attack_e2e:.1} ms"
        );
        assert!(
            added_hold > 0.5 * added,
            "{label}: hold must account for the majority of added latency, \
             added={added:.1} ms of which hold={added_hold:.1} ms"
        );

        // And hold is the single largest mover between the two windows.
        for phase in PHASES {
            if phase == "hold" {
                continue;
            }
            let delta = metric(&m, &format!("breakdown.attack.{phase}.mean_ms"))
                - metric(&m, &format!("breakdown.clean.{phase}.mean_ms"));
            assert!(
                delta < added_hold,
                "{label}: phase {phase} moved more than hold did \
                 ({delta:.1} ms vs {added_hold:.1} ms)"
            );
        }

        // The whole-run rollup carries the same phases, quantiles and
        // shares the sweep tables and BENCH json expose.
        let share_sum: f64 = PHASES
            .iter()
            .map(|p| metric(&m, &format!("breakdown.{p}.share")))
            .sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-6,
            "{label}: phase shares must partition the run, sum={share_sum}"
        );

        // Run-level hold p99: only the fixed leader suffers the full attack
        // (the role-aware trees reconfigure the attacker away within
        // seconds, so attacked commands are a sliver of their runs — which
        // is the paper's point).
        if label == "HotStuff-fixed" {
            assert!(
                metric(&m, "breakdown.hold.p99_ms") >= 500.0,
                "{label}: the covert holds must surface in the run-level hold p99"
            );
        }
    }
}
