//! The acceptance test for the tree-substrate Fig 7 reproduction: the
//! `sweep_tree_delay_attack` scenario must show windowed latency spiking
//! while the initial root withholds its disseminations, a reconfiguration
//! that strips the root of its role on Kauri/OptiTree, and a return to
//! within 2× of the clean-phase latency afterwards — with `LatencyWindow`
//! metrics populated for every substrate, PBFT-special-casing gone.

use bench::tree_delay_attack_spec;
use lab::{run_sweep, SweepOptions};

#[test]
fn tree_delay_attack_shows_fig7_shape() {
    // 60 s run, seed 1: the smallest configuration where every tree
    // substrate's detector fires *after* the first withheld views commit,
    // so the spike is visible before recovery (the values are deterministic;
    // see BENCH_sweep_tree_delay_attack.json for the full-scale sweep).
    let spec = tree_delay_attack_spec(60, 13, vec![1]);
    let report = run_sweep(&spec, &SweepOptions::serial());

    // Every substrate — HotStuff included — exposes populated latency
    // windows now that the per-commit timelines are uniform.
    for label in [
        "HotStuff-fixed",
        "Kauri",
        "OptiTree",
        "OptiTree (no pipeline)",
    ] {
        let p = report.point(label).unwrap_or_else(|| panic!("missing point {label}"));
        for w in ["lat_clean_ms", "lat_attack_ms", "lat_recovered_ms"] {
            assert!(
                p.metric(w) > 0.0,
                "{label}: window metric {w} must be populated, got {}",
                p.metric(w)
            );
        }
        let cell = &p.cells[0];
        let timeline = &cell.metrics.series["latency_timeline"];
        assert!(!timeline.is_empty(), "{label}: empty latency timeline");
        assert!(
            timeline.windows(2).all(|w| w[0].0 <= w[1].0),
            "{label}: timeline must be in commit order"
        );
    }

    // The role-aware tree substrates show the Fig 7 sawtooth: the withheld
    // views commit with the hold attached (spike), the stale proposals fail
    // the tree (reconfiguration), and the new root restores clean latency.
    for label in ["Kauri", "OptiTree", "OptiTree (no pipeline)"] {
        let p = report.point(label).expect("tree point");
        let (clean, attack, recovered) = (
            p.metric("lat_clean_ms"),
            p.metric("lat_attack_ms"),
            p.metric("lat_recovered_ms"),
        );
        assert!(
            attack > clean * 2.0,
            "{label}: attack window should spike, clean={clean:.1}ms attack={attack:.1}ms"
        );
        assert!(
            recovered < clean * 2.0,
            "{label}: latency should return within 2x of clean after reconfiguration, \
             clean={clean:.1}ms recovered={recovered:.1}ms"
        );
        assert!(
            p.metric("reconfigurations") >= 1.0,
            "{label}: the delaying root must be reconfigured away"
        );
    }

    // HotStuff cannot reassign its fixed leader: it spikes harder and only
    // recovers because the attack stage ends.
    let hs = report.point("HotStuff-fixed").expect("hotstuff point");
    assert!(hs.metric("lat_attack_ms") > hs.metric("lat_clean_ms") * 2.0);
    assert!(hs.metric("lat_recovered_ms") < hs.metric("lat_clean_ms") * 2.0);
}
