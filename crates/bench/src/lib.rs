//! Shared helpers for the figure-reproduction harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation; this library holds the plumbing they share: building RTT
//! matrices for the evaluation's geographic deployments and small
//! command-line helpers.

use netsim::CityDataset;

/// The geographic deployments used in the evaluation (§7.3, §7.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// 21 European cities.
    Europe21,
    /// 43 cities across Europe and North America.
    NaEu43,
    /// 56 cities approximating the Stellar validator distribution.
    Stellar56,
    /// 73 cities worldwide.
    Global73,
    /// Replicas drawn at random from all 220 cities (Fig 10, Fig 12, Fig 14).
    WorldRandom,
}

impl Deployment {
    /// Human-readable label matching the paper's x-axis.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::Europe21 => "Europe21",
            Deployment::NaEu43 => "NA-EU43",
            Deployment::Stellar56 => "Stellar56",
            Deployment::Global73 => "Global73",
            Deployment::WorldRandom => "World(random)",
        }
    }

    /// Default configuration size for the deployment.
    pub fn default_n(&self) -> usize {
        match self {
            Deployment::Europe21 => 21,
            Deployment::NaEu43 => 43,
            Deployment::Stellar56 => 56,
            Deployment::Global73 => 73,
            Deployment::WorldRandom => 211,
        }
    }

    /// Build the replica-to-replica RTT matrix (ms) for `n` replicas of this
    /// deployment, assigning replicas to cities round-robin (or at random for
    /// [`Deployment::WorldRandom`]).
    pub fn rtt_matrix(&self, n: usize, seed: u64) -> Vec<f64> {
        let ds = CityDataset::worldwide();
        let subset = match self {
            Deployment::Europe21 => ds.europe21(),
            Deployment::NaEu43 => ds.na_eu43(),
            Deployment::Stellar56 => ds.stellar56(),
            Deployment::Global73 => ds.global73(),
            Deployment::WorldRandom => (0..ds.len()).collect(),
        };
        let assignment = match self {
            Deployment::WorldRandom => ds.assign_random(&subset, n, seed),
            _ => ds.assign_round_robin(&subset, n),
        };
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                m[a * n + b] = ds.rtt_ms(assignment[a], assignment[b]);
            }
        }
        m
    }
}

/// Parse an optional positional argument as a number with a default — the
/// harness binaries accept `<run-seconds>` / `<repetitions>` overrides so a
/// quick smoke run and a full paper-scale run use the same binary.
pub fn arg_or(idx: usize, default: u64) -> u64 {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Half-width of the 95% confidence interval of the mean.
pub fn ci95(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n as f64 - 1.0);
    1.96 * (var / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployments_produce_square_matrices() {
        for d in [
            Deployment::Europe21,
            Deployment::NaEu43,
            Deployment::Stellar56,
            Deployment::Global73,
        ] {
            let n = d.default_n();
            let m = d.rtt_matrix(n, 0);
            assert_eq!(m.len(), n * n);
            assert_eq!(m[0], 0.0);
            assert!(m.iter().all(|&x| x.is_finite()));
        }
    }

    #[test]
    fn europe_is_faster_than_global() {
        let e = Deployment::Europe21.rtt_matrix(21, 0);
        let g = Deployment::Global73.rtt_matrix(73, 0);
        assert!(mean(&e) < mean(&g));
    }

    #[test]
    fn world_random_is_seed_dependent() {
        let a = Deployment::WorldRandom.rtt_matrix(50, 1);
        let b = Deployment::WorldRandom.rtt_matrix(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(ci95(&[1.0, 2.0, 3.0, 4.0]) > 0.0);
        assert_eq!(ci95(&[5.0]), 0.0);
    }
}
