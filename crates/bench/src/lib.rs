//! Shared surface for the figure-reproduction harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation. Since the `lab` crate landed, a harness is a thin constructor:
//! it builds a declarative [`lab::ScenarioSpec`] and hands it to the shared
//! sweep runner ([`lab::run_and_report`]), which fans the seed grid across
//! worker threads, prints the metric table, and writes
//! `BENCH_<scenario>.json`. This crate re-exports the pieces the binaries
//! (and the criterion benches) use.

pub use lab::{ci95, mean, Deployment};

/// Parse an optional positional argument as a number with a default — the
/// harness binaries accept `<run-seconds>` / `<repetitions>` overrides so a
/// quick smoke run and a full paper-scale run use the same binary.
/// (Prefer [`lab::LabArgs`] in new binaries: it also understands
/// `--threads` / `--seeds` / `--out`.)
pub fn arg_or(idx: usize, default: u64) -> u64 {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployments_produce_square_matrices() {
        for d in [
            Deployment::Europe21,
            Deployment::NaEu43,
            Deployment::Stellar56,
            Deployment::Global73,
        ] {
            let n = d.default_n();
            let m = d.rtt_matrix(n, 0);
            assert_eq!(m.len(), n * n);
            assert_eq!(m[0], 0.0);
            assert!(m.iter().all(|&x| x.is_finite()));
        }
    }

    #[test]
    fn europe_is_faster_than_global() {
        let e = Deployment::Europe21.rtt_matrix(21, 0);
        let g = Deployment::Global73.rtt_matrix(73, 0);
        assert!(mean(&e) < mean(&g));
    }

    #[test]
    fn world_random_is_seed_dependent() {
        let a = Deployment::WorldRandom.rtt_matrix(50, 1);
        let b = Deployment::WorldRandom.rtt_matrix(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(ci95(&[1.0, 2.0, 3.0, 4.0]) > 0.0);
        assert_eq!(ci95(&[5.0]), 0.0);
    }
}
