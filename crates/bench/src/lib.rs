//! Shared surface for the figure-reproduction harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation. Since the `lab` crate landed, a harness is a thin constructor:
//! it builds a declarative [`lab::ScenarioSpec`] and hands it to the shared
//! sweep runner ([`lab::run_and_report`]), which fans the seed grid across
//! worker threads, prints the metric table, and writes
//! `BENCH_<scenario>.json`. This crate re-exports the pieces the binaries
//! (and the criterion benches) use.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub use lab::{ci95, mean, Deployment};

use lab::{
    AdversaryScript, Attack, LatencyWindow, ProtocolScenario, ScenarioKind, ScenarioSpec,
    Substrate, Target, Topology, TrafficSpec,
};
use netsim::{Duration, SimTime};

/// The covert hold of the tree-delay sweep's first phase: above OptiTree's
/// tight tree-derived view timeouts (a few hundred ms on Europe21) but below
/// Kauri's fixed 2 s timeout, so OptiTree's staleness detection catches it
/// while Kauri silently absorbs the inflated latency.
pub const TREE_DELAY_COVERT_MS: u64 = 600;

/// The overt hold of the second phase: above Kauri's 2 s view timeout, so
/// even its conservative detector classifies the withheld proposals as a
/// failed tree and moves to the next conformity bin.
pub const TREE_DELAY_OVERT_MS: u64 = 2_500;

/// The Fig 7 scenario on the tree substrates: the initial root withholds
/// every payload it disseminates for the middle of the run — first by a
/// covert amount, then escalating to an overt one — and the per-commit
/// latency timelines show the spike-and-recover sawtooth at the moment each
/// substrate's failure detection catches the hold: OptiTree reconfigures
/// away from the root during the covert phase already, Kauri during the
/// overt one. HotStuff-fixed rides along as the baseline that cannot
/// reassign the leader role and stays degraded until the attack stage
/// closes.
///
/// Phases scale with `run_secs` (floor 60 s): the covert hold starts at
/// `run/3` and escalates at `run/3 + run/8` until `run/3 + run/4`. Windows:
/// `clean` (pre-attack), `attack` (the two seconds after onset, capturing
/// the withheld commits before reconfiguration dilutes them) and
/// `recovered` (the final third).
pub fn tree_delay_attack_spec(run_secs: u64, n: usize, seeds: Vec<u64>) -> ScenarioSpec {
    assert!(run_secs >= 60, "phases need at least a 60 s run, got {run_secs}");
    let attack_start = run_secs / 3;
    let escalate = attack_start + run_secs / 8;
    let attack_end = attack_start + run_secs / 4;
    let mut scenario = ProtocolScenario::new(
        vec![
            Substrate::HotStuffFixed,
            Substrate::Kauri,
            Substrate::OptiTree,
            Substrate::OptiTreeNoPipeline,
        ],
        vec![Topology::with_n(Deployment::Europe21, n)],
    )
    .with_adversaries(vec![AdversaryScript::named("root-delay")
        .during(
            SimTime::from_secs(attack_start),
            SimTime::from_secs(escalate),
            Attack::DelayProposals {
                target: Target::Root,
                delay: Duration::from_millis(TREE_DELAY_COVERT_MS),
            },
        )
        .during(
            SimTime::from_secs(escalate),
            SimTime::from_secs(attack_end),
            Attack::DelayProposals {
                target: Target::Root,
                delay: Duration::from_millis(TREE_DELAY_OVERT_MS),
            },
        )])
    .run_for(Duration::from_secs(run_secs));
    scenario.windows = vec![
        LatencyWindow::new("clean", (run_secs / 12) as f64, attack_start as f64),
        LatencyWindow::new("attack", attack_start as f64, attack_start as f64 + 2.0),
        LatencyWindow::new("recovered", (run_secs - run_secs / 3) as f64, run_secs as f64),
    ];
    ScenarioSpec::new("sweep_tree_delay_attack", seeds, ScenarioKind::Protocol(scenario))
}

/// The Fig 7 counterpart this repo adds: an overtly-delaying *intermediate*
/// (not the root) withholds every payload it forwards for the middle of the
/// run, on the three tree substrates. Under the old root-blame staleness
/// rule this deposed one innocent root after another; with the §6.4
/// reciprocal suspicion pairs flowing through the replicated configuration
/// log, the evidence implicates the delayer itself: conformity binning
/// (Kauri), exclude-all-internals (Kauri-sa), and pair-driven candidate
/// exclusion (OptiTree) all rotate the attacker out of internal positions
/// while the innocent root keeps its role — which the `root_retained` /
/// `attacker_internal_final` metrics assert per cell.
///
/// Phases scale with `run_secs` (floor 60 s): the overt hold runs from
/// `run/3` to `run·3/4`. Windows: `clean` (pre-attack), `attack` (the two
/// seconds after onset), `recovered` (the final sixth).
pub fn intermediate_delay_spec(run_secs: u64, n: usize, seeds: Vec<u64>) -> ScenarioSpec {
    assert!(run_secs >= 60, "phases need at least a 60 s run, got {run_secs}");
    let attack_start = run_secs / 3;
    let attack_end = run_secs * 3 / 4;
    let mut scenario = ProtocolScenario::new(
        vec![Substrate::Kauri, Substrate::KauriSa, Substrate::OptiTree],
        vec![Topology::with_n(Deployment::Europe21, n)],
    )
    .with_adversaries(vec![AdversaryScript::named("intermediate-delay").during(
        SimTime::from_secs(attack_start),
        SimTime::from_secs(attack_end),
        Attack::DelayProposals {
            target: Target::TreeIntermediates { count: 1 },
            delay: Duration::from_millis(TREE_DELAY_OVERT_MS),
        },
    )])
    .run_for(Duration::from_secs(run_secs));
    scenario.windows = vec![
        LatencyWindow::new("clean", (run_secs / 12) as f64, attack_start as f64),
        LatencyWindow::new("attack", attack_start as f64, attack_start as f64 + 2.0),
        LatencyWindow::new("recovered", (run_secs - run_secs / 6) as f64, run_secs as f64),
    ];
    ScenarioSpec::new("intermediate_delay", seeds, ScenarioKind::Protocol(scenario))
}

/// Commands per batch in the load sweeps: small enough that every substrate
/// saturates inside the swept load range on the 7-replica Europe sample.
pub const LOAD_BATCH: usize = 100;

/// Size-or-timeout batching delay of the load sweeps: small enough that the
/// low-load end of the curve is dominated by consensus latency, not by
/// waiting for a batch to fill.
pub const LOAD_BATCH_DELAY_MS: u64 = 25;

/// Admission-queue bound of the load sweeps (50 batches): deep enough to
/// make queueing delay visible at the knee, bounded so saturation shows as a
/// latency *plateau* plus rejected load instead of an unbounded blow-up.
pub const LOAD_QUEUE_CAPACITY: usize = 50 * LOAD_BATCH;

/// The offered-load grid of the throughput–latency sweep (commands/s): from
/// far below every substrate's capacity to far above it.
pub const LOAD_LEVELS: [f64; 6] = [500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16_000.0];

/// Build the load-sweep traffic spec for one offered rate.
fn load_traffic(rate: f64, slo: Duration) -> TrafficSpec {
    TrafficSpec::poisson(rate)
        .with_clients(64)
        .with_batching(LOAD_BATCH, Duration::from_millis(LOAD_BATCH_DELAY_MS))
        .with_capacity(LOAD_QUEUE_CAPACITY)
        .with_slo(slo)
}

/// The throughput–latency sweep (`BENCH_load_latency.json`): one
/// representative of each substrate family (PBFT, HotStuff, Kauri,
/// OptiTree) driven by open-loop Poisson load at each level of `loads`,
/// on the Europe21 sample with `n` replicas. Each point's end-to-end p50/p99
/// and committed/goodput rates trace the curve; the knee appears where
/// committed throughput plateaus below the offered load and p99 jumps to
/// the queue-drain time.
pub fn load_latency_spec(run_secs: u64, n: usize, loads: &[f64], seeds: Vec<u64>) -> ScenarioSpec {
    let traffics = loads
        .iter()
        // A generous SLO: the knee sweep reads latency percentiles; the SLO
        // mainly separates goodput from committed at the saturated end.
        .map(|&rate| load_traffic(rate, Duration::from_secs(2)))
        .collect();
    let scenario = ProtocolScenario::new(
        vec![
            Substrate::BftSmart,
            Substrate::HotStuffFixed,
            Substrate::Kauri,
            Substrate::OptiTree,
        ],
        vec![Topology::with_n(Deployment::Europe21, n)],
    )
    .with_traffic_axis(traffics)
    .run_for(Duration::from_secs(run_secs));
    ScenarioSpec::new("load_latency", seeds, ScenarioKind::Protocol(scenario))
}

/// The proposal hold of the load-under-attack scenario: far beyond the SLO
/// and the clean round time, so a leader that keeps the role while delaying
/// collapses both capacity (rounds stretch to ~0.8 s) and goodput (every
/// commit blows the deadline).
pub const LOAD_ATTACK_DELAY_MS: u64 = 800;

/// Offered load of the attack scenario: comfortably below clean capacity
/// (so the clean phases run at full goodput) but far above the ~125/s an
/// attacked leader can still push.
pub const LOAD_ATTACK_RATE: f64 = 1_000.0;

/// The load-under-delay-attack scenario (`BENCH_load_attack.json`): Poisson
/// load at [`LOAD_ATTACK_RATE`] while the optimised leader (and the initial
/// proposer, for substrates that never re-elect) runs the proposal-delay
/// attack for the middle half of the run. OptiAware strips the attacker of
/// the leader role and preserves goodput; the fixed-role policies (Aware's
/// latency-only optimiser, HotStuff's fixed leader) collapse for the whole
/// attack phase. Windows: `clean` (pre-attack), `attack` (the attack
/// phase), `recovered` (after it ends); each reports `lat_*_ms` (e2e) and
/// `goodput_*_ops`.
pub fn load_attack_spec(run_secs: u64, n: usize, seeds: Vec<u64>) -> ScenarioSpec {
    assert!(run_secs >= 80, "phases need at least an 80 s run, got {run_secs}");
    let attack_from = SimTime::from_secs(run_secs * 35 / 100);
    let attack_until = SimTime::from_secs(run_secs * 85 / 100);
    let delay = Duration::from_millis(LOAD_ATTACK_DELAY_MS);
    // Two stages over the same window: `OptimizedLeader` hits the replica
    // the latency optimisers elect (Aware and OptiAware pick the same one
    // from the same probe matrix), `Root` hits the initial proposer for the
    // substrates that never re-elect (HotStuff's fixed leader). A stage
    // whose target never holds the proposer role is harmless by
    // construction — a delayed proposal only exists while its author leads.
    let script = AdversaryScript::named("leader-delay")
        .during(
            attack_from,
            attack_until,
            Attack::DelayProposals {
                target: Target::OptimizedLeader,
                delay,
            },
        )
        .during(
            attack_from,
            attack_until,
            Attack::DelayProposals {
                target: Target::Root,
                delay,
            },
        );
    let mut scenario = ProtocolScenario::new(
        vec![Substrate::Aware, Substrate::OptiAware, Substrate::HotStuffFixed],
        vec![Topology::with_n(Deployment::Europe21, n)],
    )
    .with_adversaries(vec![script])
    .with_traffic_axis(vec![load_traffic(LOAD_ATTACK_RATE, Duration::from_secs(1))])
    .run_for(Duration::from_secs(run_secs));
    // Optimise early so the leader role has settled well before the attack.
    scenario.optimize_after = SimTime::from_secs(run_secs / 8);
    let (from_s, until_s) = (attack_from.as_secs_f64(), attack_until.as_secs_f64());
    scenario.windows = vec![
        LatencyWindow::new("clean", (run_secs / 6) as f64, from_s),
        LatencyWindow::new("attack", from_s, until_s),
        LatencyWindow::new("recovered", until_s + 5.0, run_secs as f64),
    ];
    ScenarioSpec::new("load_attack", seeds, ScenarioKind::Protocol(scenario))
}

/// Parse an optional positional argument as a number with a default — the
/// harness binaries accept `<run-seconds>` / `<repetitions>` overrides so a
/// quick smoke run and a full paper-scale run use the same binary.
/// (Prefer [`lab::LabArgs`] in new binaries: it also understands
/// `--threads` / `--seeds` / `--out`.)
pub fn arg_or(idx: usize, default: u64) -> u64 {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployments_produce_square_matrices() {
        for d in [
            Deployment::Europe21,
            Deployment::NaEu43,
            Deployment::Stellar56,
            Deployment::Global73,
        ] {
            let n = d.default_n();
            let m = d.rtt_matrix(n, 0);
            assert_eq!(m.len(), n * n);
            assert_eq!(m[0], 0.0);
            assert!(m.iter().all(|&x| x.is_finite()));
        }
    }

    #[test]
    fn europe_is_faster_than_global() {
        let e = Deployment::Europe21.rtt_matrix(21, 0);
        let g = Deployment::Global73.rtt_matrix(73, 0);
        assert!(mean(&e) < mean(&g));
    }

    #[test]
    fn world_random_is_seed_dependent() {
        let a = Deployment::WorldRandom.rtt_matrix(50, 1);
        let b = Deployment::WorldRandom.rtt_matrix(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(ci95(&[1.0, 2.0, 3.0, 4.0]) > 0.0);
        assert_eq!(ci95(&[5.0]), 0.0);
    }
}
