//! Shared surface for the figure-reproduction harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation. Since the `lab` crate landed, a harness is a thin constructor:
//! it builds a declarative [`lab::ScenarioSpec`] and hands it to the shared
//! sweep runner ([`lab::run_and_report`]), which fans the seed grid across
//! worker threads, prints the metric table, and writes
//! `BENCH_<scenario>.json`. This crate re-exports the pieces the binaries
//! (and the criterion benches) use.

pub use lab::{ci95, mean, Deployment};

use lab::{
    AdversaryScript, Attack, LatencyWindow, ProtocolScenario, ScenarioKind, ScenarioSpec,
    Substrate, Target, Topology,
};
use netsim::{Duration, SimTime};

/// The covert hold of the tree-delay sweep's first phase: above OptiTree's
/// tight tree-derived view timeouts (a few hundred ms on Europe21) but below
/// Kauri's fixed 2 s timeout, so OptiTree's staleness detection catches it
/// while Kauri silently absorbs the inflated latency.
pub const TREE_DELAY_COVERT_MS: u64 = 600;

/// The overt hold of the second phase: above Kauri's 2 s view timeout, so
/// even its conservative detector classifies the withheld proposals as a
/// failed tree and moves to the next conformity bin.
pub const TREE_DELAY_OVERT_MS: u64 = 2_500;

/// The Fig 7 scenario on the tree substrates: the initial root withholds
/// every payload it disseminates for the middle of the run — first by a
/// covert amount, then escalating to an overt one — and the per-commit
/// latency timelines show the spike-and-recover sawtooth at the moment each
/// substrate's failure detection catches the hold: OptiTree reconfigures
/// away from the root during the covert phase already, Kauri during the
/// overt one. HotStuff-fixed rides along as the baseline that cannot
/// reassign the leader role and stays degraded until the attack stage
/// closes.
///
/// Phases scale with `run_secs` (floor 60 s): the covert hold starts at
/// `run/3` and escalates at `run/3 + run/8` until `run/3 + run/4`. Windows:
/// `clean` (pre-attack), `attack` (the two seconds after onset, capturing
/// the withheld commits before reconfiguration dilutes them) and
/// `recovered` (the final third).
pub fn tree_delay_attack_spec(run_secs: u64, n: usize, seeds: Vec<u64>) -> ScenarioSpec {
    assert!(run_secs >= 60, "phases need at least a 60 s run, got {run_secs}");
    let attack_start = run_secs / 3;
    let escalate = attack_start + run_secs / 8;
    let attack_end = attack_start + run_secs / 4;
    let mut scenario = ProtocolScenario::new(
        vec![
            Substrate::HotStuffFixed,
            Substrate::Kauri,
            Substrate::OptiTree,
            Substrate::OptiTreeNoPipeline,
        ],
        vec![Topology::with_n(Deployment::Europe21, n)],
    )
    .with_adversaries(vec![AdversaryScript::named("root-delay")
        .during(
            SimTime::from_secs(attack_start),
            SimTime::from_secs(escalate),
            Attack::DelayProposals {
                target: Target::Root,
                delay: Duration::from_millis(TREE_DELAY_COVERT_MS),
            },
        )
        .during(
            SimTime::from_secs(escalate),
            SimTime::from_secs(attack_end),
            Attack::DelayProposals {
                target: Target::Root,
                delay: Duration::from_millis(TREE_DELAY_OVERT_MS),
            },
        )])
    .run_for(Duration::from_secs(run_secs));
    scenario.windows = vec![
        LatencyWindow::new("clean", (run_secs / 12) as f64, attack_start as f64),
        LatencyWindow::new("attack", attack_start as f64, attack_start as f64 + 2.0),
        LatencyWindow::new("recovered", (run_secs - run_secs / 3) as f64, run_secs as f64),
    ];
    ScenarioSpec::new("sweep_tree_delay_attack", seeds, ScenarioKind::Protocol(scenario))
}

/// Parse an optional positional argument as a number with a default — the
/// harness binaries accept `<run-seconds>` / `<repetitions>` overrides so a
/// quick smoke run and a full paper-scale run use the same binary.
/// (Prefer [`lab::LabArgs`] in new binaries: it also understands
/// `--threads` / `--seeds` / `--out`.)
pub fn arg_or(idx: usize, default: u64) -> u64 {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployments_produce_square_matrices() {
        for d in [
            Deployment::Europe21,
            Deployment::NaEu43,
            Deployment::Stellar56,
            Deployment::Global73,
        ] {
            let n = d.default_n();
            let m = d.rtt_matrix(n, 0);
            assert_eq!(m.len(), n * n);
            assert_eq!(m[0], 0.0);
            assert!(m.iter().all(|&x| x.is_finite()));
        }
    }

    #[test]
    fn europe_is_faster_than_global() {
        let e = Deployment::Europe21.rtt_matrix(21, 0);
        let g = Deployment::Global73.rtt_matrix(73, 0);
        assert!(mean(&e) < mean(&g));
    }

    #[test]
    fn world_random_is_seed_dependent() {
        let a = Deployment::WorldRandom.rtt_matrix(50, 1);
        let b = Deployment::WorldRandom.rtt_matrix(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(ci95(&[1.0, 2.0, 3.0, 4.0]) > 0.0);
        assert_eq!(ci95(&[5.0]), 0.0);
    }
}
