//! The intermediate-delay sweep: an overtly-delaying intermediate withholds
//! its forwarded payloads mid-run on the tree substrates. The §6.4
//! reciprocal suspicion pairs committed through the configuration log rotate
//! the delayer out of internal positions while the innocent root keeps its
//! role — the `root_retained` / `attacker_internal_final` metrics and the
//! windowed latency land in `BENCH_intermediate_delay.json`.
//!
//! Usage: `sweep_intermediate_delay [run-seconds] [n] [--seeds N] [--threads N] [--out DIR] [--breakdown]`

use bench::intermediate_delay_spec;
use lab::{run_and_report, sample_seeds, LabArgs};

fn main() {
    let args = LabArgs::parse();
    let run_secs = args.pos_or(1, 120);
    let n = args.pos_or(2, 13) as usize;

    let seeds = args.seeds_or(&sample_seeds(10_000, 4, 0x1D7E));
    let spec = intermediate_delay_spec(run_secs, n, seeds);
    let cells = spec.points().len() * spec.seeds.len();
    println!(
        "# Intermediate-delay sweep: {} cells ({} seeds), {} worker thread(s)",
        cells,
        spec.seeds.len(),
        args.threads
    );
    run_and_report(
        &spec,
        &args.sweep_options(),
        &[
            "lat_clean_ms",
            "lat_attack_ms",
            "lat_recovered_ms",
            "reconfigurations",
            "initial_root_excluded",
            "attacker_internal_final",
            "committed_pairs",
        ],
    );
}
