//! Fig 8 — time to compute the candidate set (maximum independent set) from
//! random suspicion graphs of growing size.
//!
//! Usage: `fig08_candidate_time [graphs-per-size] [--threads N] [--out DIR]`

use lab::{run_and_report, CandidateTimingScenario, LabArgs, ScenarioKind, ScenarioSpec};

fn main() {
    let args = LabArgs::parse();
    let graphs = args.pos_or(1, 100) as usize;
    let spec = ScenarioSpec::new(
        "fig08_candidate_time",
        args.seeds_or(&[0]),
        ScenarioKind::CandidateTiming(CandidateTimingScenario {
            sizes: vec![4, 10, 16, 22, 25, 40, 55, 70, 85, 100],
            graphs_per_size: graphs,
            edge_prob: 0.15,
            budget: 500_000,
        }),
    );
    println!("# Fig 8: candidate-set computation time [ms] (Bron-Kerbosch on the inverted graph)");
    println!("# {graphs} random graphs per size, edge probability 0.15");
    run_and_report(
        &spec,
        &args.sweep_options(),
        &["time_ms", "time_ci95_ms", "time_max_ms"],
    );
    println!("# Expected shape: sub-millisecond below n=25, growing rapidly but < 1 s at n=100.");
}
