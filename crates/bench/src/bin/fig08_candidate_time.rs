//! Fig 8 — time to compute the candidate set (maximum independent set) from
//! random suspicion graphs of growing size.
//!
//! Usage: `fig08_candidate_time [graphs-per-size]`

use bench::{arg_or, ci95, mean};
use optilog::{CandidateSelector, SelectionStrategy, SuspicionGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn random_graph(n: usize, edge_prob: f64, rng: &mut StdRng) -> SuspicionGraph {
    let mut g = SuspicionGraph::new(0..n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(edge_prob) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

fn main() {
    let graphs = arg_or(1, 100) as usize;
    let selector = CandidateSelector::new(SelectionStrategy::MaxIndependentSet { budget: 500_000 });
    println!("# Fig 8: candidate-set computation time (Bron-Kerbosch on the inverted graph)");
    println!("{:>6} {:>14} {:>12}", "n", "mean time", "ci95");
    for n in [4usize, 10, 16, 22, 25, 40, 55, 70, 85, 100] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut times_ms = Vec::new();
        for _ in 0..graphs {
            let g = random_graph(n, 0.15, &mut rng);
            let start = Instant::now();
            let sel = selector.select(&g);
            let elapsed = start.elapsed().as_secs_f64() * 1000.0;
            assert!(!sel.candidates.is_empty());
            times_ms.push(elapsed);
        }
        let m = mean(&times_ms);
        let unit = if m < 1.0 { format!("{:.1} us", m * 1000.0) } else { format!("{m:.2} ms") };
        println!("{:>6} {:>14} {:>11.3}ms", n, unit, ci95(&times_ms));
    }
    println!("# Expected shape: sub-millisecond below n=25, growing rapidly but < 1 s at n=100.");
}
