//! Fig 7 — OptiAware runtime behaviour under the Pre-Prepare delay attack.
//!
//! 21 European replicas with one co-located client each; a Byzantine leader
//! starts delaying proposals at t ≈ 80 s. BFT-SMaRt stays static, Aware
//! optimises its configuration but cannot react to the attack, OptiAware
//! detects the delay through suspicions and reassigns the leader role.
//!
//! Usage: `fig07_runtime_attack [run-seconds] [n] [--seeds N] [--threads N] [--out DIR] [--breakdown]`

use lab::{
    run_and_report, Attack, AdversaryScript, Deployment, LabArgs, LatencyWindow, ProtocolScenario,
    ScenarioKind, ScenarioSpec, Substrate, Target, Topology,
};
use netsim::{Duration, SimTime};

fn main() {
    let args = LabArgs::parse();
    let run_secs = args.pos_or(1, 180);
    let n = args.pos_or(2, 21) as usize;
    let attack_start = run_secs.min(82).max(run_secs / 2);
    let attack_delay = Duration::from_millis(600);
    let optimize_after = 40.min(run_secs / 3).max(10);

    let scenario = ProtocolScenario::new(
        vec![Substrate::BftSmart, Substrate::Aware, Substrate::OptiAware],
        vec![Topology::with_n(Deployment::Europe21, n)],
    )
    .with_adversaries(vec![AdversaryScript::named("delay-attack").at(
        SimTime::from_secs(attack_start),
        Attack::DelayProposals {
            target: Target::OptimizedLeader,
            delay: attack_delay,
        },
    )]);
    let mut scenario = scenario.run_for(Duration::from_secs(run_secs));
    scenario.optimize_after = SimTime::from_secs(optimize_after);
    let (t_opt, t_atk) = (optimize_after as f64, attack_start as f64);
    scenario.windows = vec![
        LatencyWindow::new("preopt", 5.0, t_opt),
        LatencyWindow::new("optimized", t_opt + 5.0, t_atk),
        LatencyWindow::new("attack", t_atk + 2.0, t_atk + 50.0),
        LatencyWindow::new("recovered", t_atk + 60.0, run_secs as f64),
    ];

    let spec = ScenarioSpec::new(
        "fig07_runtime_attack",
        args.seeds_or(&[0]),
        ScenarioKind::Protocol(scenario),
    );
    println!("# Fig 7: end-to-end client latency [ms] under a Pre-Prepare delay attack");
    println!("# n={n}, attack at {attack_start}s, proposal delay {attack_delay}, optimise after {optimize_after}s");
    run_and_report(
        &spec,
        &args.sweep_options(),
        &[
            "lat_preopt_ms",
            "lat_optimized_ms",
            "lat_attack_ms",
            "lat_recovered_ms",
            "reconfigurations",
        ],
    );
    println!("# Expected shape: Aware/OptiAware optimize below BFT-SMaRt; under attack all inflate;");
    println!("# only OptiAware recovers to the optimized level after excluding the attacker.");
}
