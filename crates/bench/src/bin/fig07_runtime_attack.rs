//! Fig 7 — OptiAware runtime behaviour under the Pre-Prepare delay attack.
//!
//! 21 European replicas with one co-located client each; a Byzantine leader
//! starts delaying proposals at t ≈ 80 s. BFT-SMaRt stays static, Aware
//! optimises its configuration but cannot react to the attack, OptiAware
//! detects the delay through suspicions and reassigns the leader role.
//!
//! Usage: `fig07_runtime_attack [run-seconds] [n]`

use bench::{arg_or, Deployment};
use netsim::{Duration, SimTime};
use optiaware::OptiAwarePolicy;
use pbft::{AwarePolicy, PbftHarness, PbftHarnessConfig, ReconfigPolicy, StaticPolicy};

/// Factory building a reconfiguration policy for one replica id.
type PolicyFactory = Box<dyn Fn(usize) -> Box<dyn ReconfigPolicy>>;

fn main() {
    let run_secs = arg_or(1, 180);
    let n = arg_or(2, 21) as usize;
    let f = (n - 1) / 3;
    let clients = n;
    let rtt = Deployment::Europe21.rtt_matrix(n, 0);
    // Attack the replica Aware's optimisation elects as leader, as in §7.1.
    let attacker = pbft::score::optimize_configuration(&rtt, n, f, &(0..n).collect::<Vec<_>>(), &[], 1)
        .0
        .leader;
    let attack_start = SimTime::from_secs(run_secs.min(82).max(run_secs / 2));
    let attack_delay = Duration::from_millis(600);
    let optimize_after = SimTime::from_secs(40.min(run_secs / 3).max(10));

    println!("# Fig 7: end-to-end client latency under a Pre-Prepare delay attack");
    println!("# n={n}, f={f}, attacker=replica {attacker}, attack at {attack_start}, proposal delay {attack_delay}");
    println!("{:<12} {:>12} {:>12} {:>12} {:>14}", "system", "pre-opt ms", "optimized ms", "attack ms", "post-recover ms");

    let systems: Vec<(&str, PolicyFactory)> = vec![
        ("BFT-SMaRt", Box::new(|_| Box::new(StaticPolicy) as Box<dyn ReconfigPolicy>)),
        ("Aware", {
            let (n, f) = (n, f);
            Box::new(move |_| Box::new(AwarePolicy::new(n, f, optimize_after)) as Box<dyn ReconfigPolicy>)
        }),
        ("OptiAware", {
            let (n, f) = (n, f);
            Box::new(move |id| {
                Box::new(OptiAwarePolicy::new(id, n, f, 1.0, optimize_after)) as Box<dyn ReconfigPolicy>
            })
        }),
    ];

    for (name, factory) in systems {
        let config = PbftHarnessConfig::new(n, f, clients, rtt.clone())
            .run_for(Duration::from_secs(run_secs))
            .with_delay_attacker(attacker, attack_delay, attack_start);
        let report = PbftHarness::run(&config, "fig7", |id| factory(id));
        let t_attack = attack_start.as_secs_f64();
        let t_opt = optimize_after.as_secs_f64();
        let pre = report.mean_client_latency(5.0, t_opt);
        let optimized = report.mean_client_latency(t_opt + 5.0, t_attack);
        let during = report.mean_client_latency(t_attack + 2.0, t_attack + 50.0);
        let recovered = report.mean_client_latency(t_attack + 60.0, run_secs as f64);
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>14.1}   reconfigurations: {:?}",
            name, pre, optimized, during, recovered, report.reconfigurations
        );
    }
    println!("# Expected shape: Aware/OptiAware optimize below BFT-SMaRt; under attack all inflate;");
    println!("# only OptiAware recovers to the optimized level after excluding the attacker.");
}
