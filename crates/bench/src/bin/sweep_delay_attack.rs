//! A multi-seed delay-attack sweep demonstrating the parallel runner: the
//! Fig 7 scenario at a smaller scale, swept over many seeds, with identical
//! JSON output for any `--threads` value.
//!
//! Usage: `sweep_delay_attack [run-seconds] [n] [--seeds N] [--threads N] [--out DIR] [--breakdown]`

use lab::{
    run_and_report, sample_seeds, AdversaryScript, Attack, Deployment, LabArgs, LatencyWindow,
    ProtocolScenario, ScenarioKind, ScenarioSpec, Substrate, Target, Topology,
};
use netsim::{Duration, SimTime};

fn main() {
    let args = LabArgs::parse();
    let run_secs = args.pos_or(1, 120);
    let n = args.pos_or(2, 10) as usize;
    let attack_start = run_secs / 2;

    // World(distinct) draws a fresh city sample per seed, so the sweep
    // measures the attack across 16 random geographies rather than 16
    // identical runs.
    let mut scenario = ProtocolScenario::new(
        vec![Substrate::OptiAware],
        vec![Topology::with_n(Deployment::WorldDistinct, n)],
    )
    .with_adversaries(vec![AdversaryScript::named("delay-attack").at(
        SimTime::from_secs(attack_start),
        Attack::DelayProposals {
            target: Target::OptimizedLeader,
            delay: Duration::from_millis(400),
        },
    )])
    .run_for(Duration::from_secs(run_secs));
    scenario.optimize_after = SimTime::from_secs((run_secs / 4).max(5));
    scenario.windows = vec![
        LatencyWindow::new("clean", 2.0, attack_start as f64),
        LatencyWindow::new("attacked", attack_start as f64, run_secs as f64),
    ];

    // 16 seeds sampled from a large pool, deterministically.
    let seeds = args.seeds_or(&sample_seeds(10_000, 16, 0xD1CE));
    let spec = ScenarioSpec::new("sweep_delay_attack", seeds, ScenarioKind::Protocol(scenario));
    let cells = spec.points().len() * spec.seeds.len();
    println!(
        "# Delay-attack sweep: {} cells ({} seeds), {} worker thread(s)",
        cells,
        spec.seeds.len(),
        args.threads
    );
    let start = std::time::Instant::now();
    run_and_report(
        &spec,
        &args.sweep_options(),
        &["lat_clean_ms", "lat_attacked_ms", "reconfigurations", "throughput_ops"],
    );
    println!(
        "# wall-clock {:.2}s with {} thread(s)",
        start.elapsed().as_secs_f64(),
        args.threads
    );
}
