//! Fig 14 (Appendix B.1) — cost of over-provisioning: tree latency when the
//! score function provisions for u = 5%..30% unresponsive leaves.
//!
//! Usage: `fig14_overprovision [runs-per-point]`

use bench::{arg_or, ci95, mean, Deployment};
use optilog::AnnealingParams;
use optitree::{search_tree, tree_score, TreeSearchSpace};
use rsm::SystemConfig;

fn main() {
    let runs = arg_or(1, 15) as usize;
    println!("# Fig 14: tree latency (score, ms) when provisioning for u% faulty leaves");
    println!("{:>5} {:>7} {:>6} {:>14} {:>10}", "n", "u [%]", "u", "latency ms", "ci95");
    for n in [21usize, 43, 91, 111, 157, 211] {
        let system = SystemConfig::new(n);
        for pct in [5usize, 10, 15, 20, 25, 30] {
            let u = (n * pct) / 100;
            let k = (system.quorum() + u).min(n);
            let mut scores = Vec::new();
            for run in 0..runs {
                let matrix = Deployment::WorldRandom.rtt_matrix(n, run as u64);
                let sp = TreeSearchSpace {
                    n,
                    branch: system.tree_branch_factor(),
                    matrix_rtt_ms: matrix.clone(),
                    candidates: (0..n).collect(),
                    k,
                };
                let (tree, _) = search_tree(
                    &sp,
                    AnnealingParams {
                        iterations: 3_000,
                        ..Default::default()
                    },
                    run as u64,
                );
                scores.push(tree_score(&tree, &matrix, n, k));
            }
            println!(
                "{:>5} {:>7} {:>6} {:>14.0} {:>10.1}",
                n, pct, u, mean(&scores), ci95(&scores)
            );
        }
        println!();
    }
    println!("# Expected shape: latency grows with u (collecting votes from more subtrees);");
    println!("# the paper reports ~54% higher latency at u = 30% of n for n = 211.");
}
