//! Fig 14 (Appendix B.1) — cost of over-provisioning: tree latency when the
//! score function provisions for u = 5%..30% unresponsive leaves.
//!
//! Usage: `fig14_overprovision [runs-per-point] [--threads N] [--out DIR]`

use lab::{run_and_report, LabArgs, OverprovisionScenario, ScenarioKind, ScenarioSpec};

fn main() {
    let args = LabArgs::parse();
    let runs = args.pos_or(1, 15);
    let spec = ScenarioSpec::new(
        "fig14_overprovision",
        args.seeds_or(&(0..runs).collect::<Vec<_>>()),
        ScenarioKind::Overprovision(OverprovisionScenario {
            sizes: vec![21, 43, 91, 111, 157, 211],
            percents: vec![5, 10, 15, 20, 25, 30],
            iterations: 3_000,
        }),
    );
    println!("# Fig 14: tree latency (score, ms) when provisioning for u% faulty leaves");
    run_and_report(&spec, &args.sweep_options(), &["u", "score_ms"]);
    println!("# Expected shape: latency grows with u (collecting votes from more subtrees);");
    println!("# the paper reports ~54% higher latency at u = 30% of n for n = 211.");
}
