//! Engine throughput benchmark: the rebuilt netsim hot path (timer wheel +
//! Arc-interned broadcast payloads) against the seed baseline (binary-heap
//! scheduler + one deep payload clone per broadcast recipient).
//!
//! The workload is the protocol_throughput shape distilled to its engine
//! cost: a leader broadcasts a ~1 KiB block each round, every replica votes
//! back, and every replica arms a view timer per round that is cancelled
//! when the next block arrives — the broadcast fan-out plus timer set/cancel
//! churn that consensus substrates put on the simulator. Both engines run
//! the identical schedule (same events, same order, same virtual clock), so
//! events/sec differences are pure engine overhead.
//!
//! Usage: `bench_engine [rounds] [--smoke] [--out DIR | --no-json]
//!         [--assert-speedup X] [--assert-telemetry-overhead F]`
//!
//! The telemetry phase re-runs the wheel schedule with disabled-handle
//! telemetry calls at every message — the cost a substrate pays for being
//! instrumented when no sink is installed. `--assert-telemetry-overhead
//! 0.02` gates that cost at 2% of events/sec (best-of-3 on both sides to
//! damp wall-clock noise).
//!
//! Writes `BENCH_engine.json` with one record per (n, engine) and the
//! wheel-over-heap speedup per n. Wall-clock numbers vary run to run, so
//! this file is *not* part of the byte-determinism cmp checks — the
//! `events` column, which is deterministic, is what trajectory tooling
//! should diff.

use netsim::{
    Context, Duration, EventScheduler, HeapScheduler, Node, NodeId, Simulation, SimTime, TimerId,
    TimerWheel, UniformLatency,
};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;
use telemetry::Telemetry;

/// One-way link latency in µs; a round (block out + vote back) is one RTT.
const ONE_WAY_US: u64 = 500;
/// Block payload size — the deep-clone cost the interned path eliminates.
const BLOCK_BYTES: usize = 1024;

#[derive(Clone)]
enum EngineMsg {
    Block { round: u64, body: Vec<u8> },
    Vote { round: u64 },
}

/// A replica in the synthetic round protocol. `legacy_clones` selects the
/// seed broadcast discipline (one owned `clone()` per recipient) instead of
/// `Context::broadcast`'s interned payload; the event schedule is identical
/// either way.
struct FanoutNode {
    rounds: u64,
    legacy_clones: bool,
    votes: usize,
    view_timer: Option<TimerId>,
    timeouts: u64,
    bytes_received: u64,
    // When set, every message makes the same registry/span calls a real
    // substrate makes, against a handle with no sink — the disabled-path
    // cost the overhead gate measures. Both variants evaluate the same
    // `Option` check, so the delta is purely the telemetry calls.
    telemetry: Option<Telemetry>,
}

impl FanoutNode {
    fn new(rounds: u64, legacy_clones: bool, telemetry: Option<Telemetry>) -> Self {
        FanoutNode {
            rounds,
            legacy_clones,
            votes: 0,
            view_timer: None,
            timeouts: 0,
            bytes_received: 0,
            telemetry,
        }
    }

    fn propose(&mut self, ctx: &mut Context<EngineMsg>, round: u64) {
        if round >= self.rounds {
            return;
        }
        let msg = EngineMsg::Block {
            round,
            body: vec![(round & 0xFF) as u8; BLOCK_BYTES],
        };
        if self.legacy_clones {
            for to in 0..ctx.n {
                if to != ctx.id {
                    ctx.send(to, msg.clone());
                }
            }
        } else {
            ctx.broadcast(msg);
        }
        self.arm_view_timer(ctx, round);
    }

    fn arm_view_timer(&mut self, ctx: &mut Context<EngineMsg>, round: u64) {
        if let Some(t) = self.view_timer.take() {
            ctx.cancel_timer(t);
        }
        self.view_timer = Some(ctx.set_timer(Duration::from_secs(60), round));
    }
}

impl Node for FanoutNode {
    type Msg = EngineMsg;

    fn on_start(&mut self, ctx: &mut Context<EngineMsg>) {
        if ctx.id == 0 {
            self.propose(ctx, 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<EngineMsg>, from: NodeId, msg: EngineMsg) {
        match msg {
            EngineMsg::Block { round, body } => {
                self.bytes_received += body.len() as u64;
                if let Some(t) = &self.telemetry {
                    t.counter_add("bench.engine.blocks", Some(ctx.id), 1);
                    t.observe("bench.engine.block_bytes", Some(ctx.id), body.len() as u64);
                    t.span(
                        telemetry::Stage::Forward,
                        ctx.id,
                        round,
                        ctx.now.as_micros(),
                        ONE_WAY_US,
                        vec![],
                    );
                }
                self.arm_view_timer(ctx, round);
                ctx.send(from, EngineMsg::Vote { round });
            }
            EngineMsg::Vote { round } => {
                if let Some(t) = &self.telemetry {
                    t.counter_add("bench.engine.votes", Some(ctx.id), 1);
                }
                self.votes += 1;
                if self.votes == ctx.n - 1 {
                    self.votes = 0;
                    self.propose(ctx, round + 1);
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<EngineMsg>, _timer: TimerId, _tag: u64) {
        self.timeouts += 1;
    }
}

struct Measurement {
    n: usize,
    engine: &'static str,
    events: u64,
    secs: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }
}

fn run_engine<S: EventScheduler<EngineMsg>>(
    n: usize,
    rounds: u64,
    legacy_clones: bool,
    telemetry: Option<Telemetry>,
    sched: S,
    engine: &'static str,
) -> Measurement {
    let nodes = (0..n)
        .map(|_| FanoutNode::new(rounds, legacy_clones, telemetry.clone()))
        .collect();
    let latency = Box::new(UniformLatency::new(n, Duration::from_micros(ONE_WAY_US)));
    let mut sim = Simulation::with_scheduler(nodes, latency, sched);
    // One RTT per round plus slack; the last view timers sit past the
    // horizon by design (the engine must not drop them — see the horizon
    // regression tests) and are simply never reached.
    let horizon = SimTime::ZERO + Duration::from_micros(2 * ONE_WAY_US * rounds + 1_000);
    let start = Instant::now();
    sim.run_until(horizon);
    let secs = start.elapsed().as_secs_f64();
    let expected = 2 * (n as u64 - 1) * rounds;
    assert_eq!(
        sim.events_processed(),
        expected,
        "engine {engine} at n={n} processed an unexpected event count"
    );
    let delivered: u64 = (0..n).map(|id| sim.node(id).bytes_received).sum();
    assert_eq!(
        delivered,
        (n as u64 - 1) * rounds * BLOCK_BYTES as u64,
        "engine {engine} at n={n} delivered an unexpected payload volume"
    );
    let timeouts: u64 = (0..n).map(|id| sim.node(id).timeouts).sum();
    assert_eq!(timeouts, 0, "view timers must never fire in-horizon");
    Measurement {
        n,
        engine,
        events: sim.events_processed(),
        secs,
    }
}

fn json_record(m: &Measurement) -> String {
    format!(
        "    {{\"n\": {}, \"engine\": \"{}\", \"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.0}}}",
        m.n, m.engine, m.events, m.secs, m.events_per_sec()
    )
}

fn main() {
    let mut positionals: Vec<u64> = Vec::new();
    let mut out_dir: Option<PathBuf> = Some(PathBuf::from("."));
    let mut smoke = false;
    let mut assert_speedup: Option<f64> = None;
    let mut assert_telemetry_overhead: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(it.next().expect("--out needs a directory"))),
            "--no-json" => out_dir = None,
            "--smoke" => smoke = true,
            "--assert-speedup" => {
                assert_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-speedup needs a number"),
                )
            }
            "--assert-telemetry-overhead" => {
                assert_telemetry_overhead = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-telemetry-overhead needs a fraction"),
                )
            }
            other => positionals.push(other.parse().unwrap_or_else(|_| {
                panic!("unrecognised argument: {other}");
            })),
        }
    }
    let base_rounds = positionals.first().copied().unwrap_or(4_000);

    let sizes: [usize; 3] = [7, 25, 100];
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    println!(
        "{:>4} {:>22} {:>12} {:>10} {:>14}",
        "n", "engine", "events", "secs", "events/sec"
    );
    for &n in &sizes {
        // Keep total event volume roughly flat across n so n=100 stays in
        // smoke time: events = 2(n-1) * rounds.
        let mut rounds = (base_rounds * 24 / (n as u64 - 1)).max(100);
        if smoke {
            rounds = (rounds / 20).max(50);
        }
        let wheel = run_engine(n, rounds, false, None, TimerWheel::new(), "wheel+interned");
        let heap = run_engine(n, rounds, true, None, HeapScheduler::default(), "heap+clones");
        let speedup = wheel.events_per_sec() / heap.events_per_sec();
        for m in [&wheel, &heap] {
            println!(
                "{:>4} {:>22} {:>12} {:>10.4} {:>14.0}",
                m.n,
                m.engine,
                m.events,
                m.secs,
                m.events_per_sec()
            );
        }
        println!("{:>4} {:>22} {:>38.2}x", n, "speedup", speedup);
        speedups.push((n, speedup));
        measurements.push(wheel);
        measurements.push(heap);
    }

    // Telemetry-overhead phase: the identical wheel schedule at n=25, with
    // and without disabled-handle telemetry calls at every message.
    // Best-of-3 on each side so a single descheduled run can't fake a
    // regression.
    let overhead_n = 25;
    let mut overhead_rounds = (base_rounds * 24 / (overhead_n as u64 - 1)).max(100);
    if smoke {
        overhead_rounds = (overhead_rounds / 20).max(50);
    }
    let best_eps = |telemetry: Option<Telemetry>, label: &'static str| -> f64 {
        (0..3)
            .map(|_| {
                run_engine(
                    overhead_n,
                    overhead_rounds,
                    false,
                    telemetry.clone(),
                    TimerWheel::new(),
                    label,
                )
                .events_per_sec()
            })
            .fold(0.0_f64, f64::max)
    };
    let plain_eps = best_eps(None, "wheel+interned");
    let disabled_eps = best_eps(Some(Telemetry::disabled()), "wheel+telemetry-off");
    let telemetry_overhead = 1.0 - disabled_eps / plain_eps;
    println!(
        "{:>4} {:>22} {:>37.2}%",
        overhead_n,
        "telemetry overhead",
        telemetry_overhead * 100.0
    );

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join("BENCH_engine.json");
        let mut file = std::fs::File::create(&path).expect("create BENCH_engine.json");
        let records: Vec<String> = measurements.iter().map(json_record).collect();
        let ratios: Vec<String> = speedups
            .iter()
            .map(|(n, s)| format!("    {{\"n\": {n}, \"wheel_over_heap\": {s:.2}}}"))
            .collect();
        writeln!(
            file,
            "{{\n  \"bench\": \"engine\",\n  \"block_bytes\": {BLOCK_BYTES},\n  \"runs\": [\n{}\n  ],\n  \"speedup\": [\n{}\n  ],\n  \"telemetry_overhead\": {{\"n\": {overhead_n}, \"events_per_sec_plain\": {plain_eps:.0}, \"events_per_sec_disabled\": {disabled_eps:.0}, \"overhead\": {telemetry_overhead:.4}}}\n}}",
            records.join(",\n"),
            ratios.join(",\n")
        )
        .expect("write BENCH_engine.json");
        println!("# wrote {}", path.display());
    }

    if let Some(min) = assert_speedup {
        for (n, s) in &speedups {
            if *n >= 25 {
                assert!(
                    *s >= min,
                    "wheel engine is only {s:.2}x the heap baseline at n={n} (need {min}x)"
                );
            }
        }
    }

    if let Some(max) = assert_telemetry_overhead {
        assert!(
            telemetry_overhead <= max,
            "disabled-handle telemetry costs {:.2}% events/sec (gate: {:.2}%)",
            telemetry_overhead * 100.0,
            max * 100.0
        );
    }
}
