//! Fig 10 — tree latency (score) under the targeted-suspicion attack, as a
//! function of the number of reconfigurations, for Kauri, Kauri-sa, and
//! OptiTree with 211 replicas randomly distributed across the world.
//!
//! Usage: `fig10_reconfigurations [runs] [n] [reconfigurations] [--threads N]`

use lab::{run_and_report, LabArgs, ScenarioKind, ScenarioSpec, SuspicionAttackScenario};

fn main() {
    let args = LabArgs::parse();
    let runs = args.pos_or(1, 50);
    let n = args.pos_or(2, 211) as usize;
    let steps = args.pos_or(3, 35) as usize;
    let report_every = 5;
    let spec = ScenarioSpec::new(
        "fig10_reconfigurations",
        args.seeds_or(&(0..runs).collect::<Vec<_>>()),
        ScenarioKind::SuspicionAttack(SuspicionAttackScenario {
            n,
            steps,
            report_every,
        }),
    );
    println!("# Fig 10: tree latency (score, ms) vs reconfigurations under targeted suspicions");
    println!(
        "# n={n}, {} runs, scores sampled every {report_every} reconfigurations",
        spec.seeds.len()
    );
    let columns: Vec<String> = (0..=steps)
        .step_by(report_every)
        .map(|s| format!("score_u{s:03}"))
        .collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    run_and_report(&spec, &args.sweep_options(), &column_refs);
    println!("# Expected shape: OptiTree starts lowest and degrades gradually with u; Kauri-sa");
    println!("# degrades sharply once candidates run out; random Kauri trees are always worst.");
}
