//! Fig 10 — tree latency (score) under the targeted-suspicion attack, as a
//! function of the number of reconfigurations, for Kauri, Kauri-sa, and
//! OptiTree with 211 replicas randomly distributed across the world.
//!
//! Usage: `fig10_reconfigurations [runs] [n] [reconfigurations]`

use bench::{arg_or, ci95, mean, Deployment};
use optitree::{simulate_suspicion_attack, AttackVariant};

fn main() {
    let runs = arg_or(1, 50) as usize;
    let n = arg_or(2, 211) as usize;
    let steps = arg_or(3, 35) as usize;
    println!("# Fig 10: tree latency (score, ms) vs reconfigurations under targeted suspicions");
    println!("{:>7} {:>16} {:>16} {:>16}", "reconf", "Kauri", "Kauri-sa", "OptiTree");

    let variants = [AttackVariant::Kauri, AttackVariant::KauriSa, AttackVariant::OptiTree];
    // scores[variant][step] = Vec of per-run scores
    let mut scores = vec![vec![Vec::new(); steps + 1]; variants.len()];
    for run in 0..runs {
        let matrix = Deployment::WorldRandom.rtt_matrix(n, run as u64);
        for (vi, &variant) in variants.iter().enumerate() {
            let outcome = simulate_suspicion_attack(variant, n, &matrix, steps, run as u64);
            for (step, &s) in outcome.scores.iter().enumerate() {
                scores[vi][step].push(s);
            }
        }
    }
    for step in (0..=steps).step_by(5) {
        println!(
            "{:>7} {:>10.0} ±{:<5.0} {:>9.0} ±{:<5.0} {:>9.0} ±{:<5.0}",
            step,
            mean(&scores[0][step]),
            ci95(&scores[0][step]),
            mean(&scores[1][step]),
            ci95(&scores[1][step]),
            mean(&scores[2][step]),
            ci95(&scores[2][step]),
        );
    }
    println!("# Expected shape: OptiTree starts lowest and degrades gradually with u; Kauri-sa");
    println!("# degrades sharply once candidates run out; random Kauri trees are always worst.");
}
