//! Fig 15 (Appendix B.2) — throughput timeline while the tree root is
//! crashed every 10 seconds, triggering a simulated-annealing search and a
//! reconfiguration (Europe21, 21 replicas).
//!
//! Usage: `fig15_reconfiguration [run-seconds]`

use bench::{arg_or, Deployment};
use kauri::{run_kauri, KauriConfig, TreePolicy};
use netsim::{Duration, FaultPlan, MatrixLatency, SimTime};
use optitree::OptiTreePolicy;
use rsm::SystemConfig;

fn main() {
    let run_secs = arg_or(1, 90);
    let n = 21;
    let system = SystemConfig::new(n);
    let rtt = Deployment::Europe21.rtt_matrix(n, 0);

    // Determine the sequence of roots OptiTree will choose so each can be
    // crashed 10 s after it takes over.
    let mut probe = OptiTreePolicy::new(system, rtt.clone(), 7);
    let mut faults = FaultPlan::none();
    let mut crash_at = 10u64;
    let mut crashed = Vec::new();
    while crash_at < run_secs {
        let tree = probe.next_tree(n, system.tree_branch_factor());
        if crashed.contains(&tree.root) {
            break;
        }
        faults.crash(tree.root, SimTime::from_secs(crash_at));
        crashed.push(tree.root);
        probe.on_view_failure(&[tree.root]);
        crash_at += 10;
    }

    let mut cfg = KauriConfig::new(n).without_pipelining();
    cfg.run_for = Duration::from_secs(run_secs);
    cfg.reconfig_delay = Duration::from_secs(1); // the 1 s simulated-annealing search
    let rtt_clone = rtt.clone();
    let report = run_kauri(
        &cfg,
        Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
        faults,
        move |_| Box::new(OptiTreePolicy::new(system, rtt_clone.clone(), 7)) as Box<dyn TreePolicy>,
    );

    println!("# Fig 15: throughput [op/s] per second with the root crashing every 10 s");
    println!("# reconfigurations observed: {}", report.reconfigurations);
    println!("{:>6} {:>12}", "t [s]", "throughput");
    for (sec, ops) in report.throughput_timeline.iter().enumerate() {
        println!("{sec:>6} {ops:>12}");
    }
    println!("# Expected shape: throughput drops to zero after each crash, recovers roughly one");
    println!("# progress-timeout plus one second of search later, and returns to its previous level.");
}
