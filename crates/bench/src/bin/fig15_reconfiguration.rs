//! Fig 15 (Appendix B.2) — throughput timeline while the tree root is
//! crashed every 10 seconds, triggering a simulated-annealing search and a
//! reconfiguration (Europe21, 21 replicas).
//!
//! Usage: `fig15_reconfiguration [run-seconds] [--threads N] [--out DIR]`

use lab::{
    run_and_report, AdversaryScript, Attack, Deployment, LabArgs, ProtocolScenario, ScenarioKind,
    ScenarioSpec, Substrate, Topology,
};
use netsim::{Duration, SimTime};

fn main() {
    let args = LabArgs::parse();
    let run_secs = args.pos_or(1, 90);
    let mut scenario = ProtocolScenario::new(
        vec![Substrate::OptiTreeNoPipeline],
        vec![Topology::of(Deployment::Europe21)],
    )
    .with_adversaries(vec![AdversaryScript::named("root-crashes").at(
        SimTime::from_secs(10),
        Attack::CrashRoots {
            interval: Duration::from_secs(10),
        },
    )])
    .run_for(Duration::from_secs(run_secs));
    scenario.reconfig_delay = Some(Duration::from_secs(1)); // the 1 s simulated-annealing search
    let spec = ScenarioSpec::new(
        "fig15_reconfiguration",
        args.seeds_or(&[0]),
        ScenarioKind::Protocol(scenario),
    );
    println!("# Fig 15: throughput [op/s] per second with the root crashing every 10 s");
    let report = run_and_report(
        &spec,
        &args.sweep_options(),
        &["throughput_ops", "reconfigurations"],
    );
    // The timeline itself (also in the JSON as a series).
    if let Some(cell) = report.points.first().and_then(|p| p.cells.first()) {
        if let Some(timeline) = cell.metrics.series.get("throughput_timeline") {
            println!("{:>6} {:>12}", "t [s]", "throughput");
            for &(sec, ops) in timeline {
                println!("{sec:>6.0} {ops:>12.0}");
            }
        }
    }
    println!("# Expected shape: throughput drops to zero after each crash, recovers roughly one");
    println!("# progress-timeout plus one second of search later, and returns to its previous level.");
}
