//! Fig 11 — OptiTree throughput and latency when faulty internal nodes
//! inflate their latency by a factor δ (1.1, 1.2, 1.4) without triggering
//! suspicions. Europe21 without pipelining, 1–4 faulty intermediates.
//!
//! Usage: `fig11_malicious_delays [run-seconds] [--threads N] [--out DIR]`

use lab::{
    run_and_report, AdversaryScript, Attack, Deployment, LabArgs, ProtocolScenario, ScenarioKind,
    ScenarioSpec, Substrate, Target, Topology,
};
use netsim::{Duration, SimTime};

fn main() {
    let args = LabArgs::parse();
    let run_secs = args.pos_or(1, 60);

    let mut adversaries = vec![AdversaryScript::clean()];
    for faulty in 1..=4usize {
        for delta in [1.1, 1.2, 1.4] {
            adversaries.push(
                AdversaryScript::named(format!("faulty={faulty} δ={delta}")).at(
                    SimTime::ZERO,
                    Attack::InflateOutgoing {
                        target: Target::TreeIntermediates { count: faulty },
                        factor: delta,
                    },
                ),
            );
        }
    }
    let scenario = ProtocolScenario::new(
        vec![Substrate::OptiTreeNoPipeline],
        vec![Topology::of(Deployment::Europe21)],
    )
    .with_adversaries(adversaries)
    .run_for(Duration::from_secs(run_secs));
    let spec = ScenarioSpec::new(
        "fig11_malicious_delays",
        args.seeds_or(&[0]),
        ScenarioKind::Protocol(scenario),
    );
    println!("# Fig 11: OptiTree (no pipeline, Europe21) with faulty internal nodes inflating latency by δ");
    run_and_report(&spec, &args.sweep_options(), &["throughput_ops", "latency_ms"]);
    println!("# Expected shape: throughput drops and latency rises with more faulty internals and");
    println!("# larger δ (the paper reports up to ~49% throughput loss at δ=1.4 with 4 faulty nodes).");
}
