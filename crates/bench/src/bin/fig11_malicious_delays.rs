//! Fig 11 — OptiTree throughput and latency when faulty internal nodes
//! inflate their latency by a factor δ (1.1, 1.2, 1.4) without triggering
//! suspicions. Europe21 without pipelining, 1–4 faulty intermediates.
//!
//! Usage: `fig11_malicious_delays [run-seconds]`

use bench::{arg_or, Deployment};
use kauri::{run_kauri, KauriConfig, TreePolicy};
use netsim::{Duration, FaultPlan, MatrixLatency};
use optitree::OptiTreePolicy;
use rsm::SystemConfig;

fn main() {
    let run_secs = arg_or(1, 60);
    let n = 21;
    let system = SystemConfig::new(n);
    let rtt = Deployment::Europe21.rtt_matrix(n, 0);

    println!("# Fig 11: OptiTree (no pipeline, Europe21) with faulty internal nodes inflating latency by δ");
    println!("{:>7} {:>6} {:>14} {:>12}", "faulty", "delta", "throughput", "latency ms");

    // Determine the internal nodes OptiTree picks so the attack targets them.
    let probe_tree = {
        let mut p = OptiTreePolicy::new(system, rtt.clone(), 7);
        p.next_tree(n, system.tree_branch_factor())
    };
    let intermediates = probe_tree.intermediates.clone();

    let run_one = |faulty: usize, delta: f64| {
        let mut cfg = KauriConfig::new(n).without_pipelining();
        cfg.run_for = Duration::from_secs(run_secs);
        let mut faults = FaultPlan::none();
        for &victim in intermediates.iter().take(faulty) {
            faults.inflate_outgoing(victim, delta);
        }
        let rtt_clone = rtt.clone();
        let report = run_kauri(
            &cfg,
            Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
            faults,
            move |_| Box::new(OptiTreePolicy::new(system, rtt_clone.clone(), 7)) as Box<dyn TreePolicy>,
        );
        (report.summary.throughput_ops, report.summary.mean_latency_ms)
    };

    let (base_tp, base_lat) = run_one(0, 1.0);
    println!("{:>7} {:>6} {:>14.0} {:>12.1}   (no faults)", 0, "-", base_tp, base_lat);
    for faulty in 1..=4usize {
        for delta in [1.1, 1.2, 1.4] {
            let (tp, lat) = run_one(faulty, delta);
            println!("{faulty:>7} {delta:>6.1} {tp:>14.0} {lat:>12.1}");
        }
    }
    println!("# Expected shape: throughput drops and latency rises with more faulty internals and");
    println!("# larger δ (the paper reports up to ~49% throughput loss at δ=1.4 with 4 faulty nodes).");
}
