//! Fig 9 — throughput and latency of OptiTree, Kauri, and HotStuff across
//! geographic deployments (Europe21, NA-EU43, Stellar56, Global73).
//!
//! Usage: `fig09_baseline_comparison [run-seconds]`

use bench::{arg_or, Deployment};
use hotstuff::{run_hotstuff, HotStuffConfig, Pacemaker};
use kauri::{run_kauri, KauriBinsPolicy, KauriConfig, TreePolicy};
use netsim::{Duration, FaultPlan, MatrixLatency};
use optitree::OptiTreePolicy;
use rsm::SystemConfig;

fn main() {
    let run_secs = arg_or(1, 120);
    println!("# Fig 9: throughput [op/s] and consensus latency [ms] per deployment");
    println!(
        "{:<12} {:<22} {:>12} {:>12}",
        "deployment", "system", "throughput", "latency ms"
    );
    for deployment in [
        Deployment::Europe21,
        Deployment::NaEu43,
        Deployment::Stellar56,
        Deployment::Global73,
    ] {
        let n = deployment.default_n();
        let rtt = deployment.rtt_matrix(n, 0);
        let latency = || Box::new(MatrixLatency::from_rtt_millis(n, &rtt));
        let system = SystemConfig::new(n);
        let branch = system.tree_branch_factor();

        // HotStuff baselines.
        for (label, pacemaker) in [
            ("HotStuff-fixed", Pacemaker::Fixed { leader: 0 }),
            ("HotStuff-rr", Pacemaker::RoundRobin),
        ] {
            let mut cfg = HotStuffConfig::new(n, pacemaker);
            cfg.run_for = Duration::from_secs(run_secs);
            let r = run_hotstuff(&cfg, latency());
            println!(
                "{:<12} {:<22} {:>12.0} {:>12.1}",
                deployment.label(),
                label,
                r.summary.throughput_ops,
                r.summary.mean_latency_ms
            );
        }

        // Kauri with pipelining (random conformity trees).
        let mut kcfg = KauriConfig::new(n);
        kcfg.run_for = Duration::from_secs(run_secs);
        let kauri = run_kauri(&kcfg, latency(), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(n, branch, 1)) as Box<dyn TreePolicy>
        });
        println!(
            "{:<12} {:<22} {:>12.0} {:>12.1}",
            deployment.label(),
            "Kauri (pipeline)",
            kauri.summary.throughput_ops,
            kauri.summary.mean_latency_ms
        );

        // OptiTree with and without pipelining (SA-selected trees).
        for (label, pipeline) in [("OptiTree", true), ("OptiTree (no pipeline)", false)] {
            let mut ocfg = KauriConfig::new(n);
            ocfg.run_for = Duration::from_secs(run_secs);
            if !pipeline {
                ocfg = ocfg.without_pipelining();
            }
            let rtt_clone = rtt.clone();
            let r = run_kauri(&ocfg, latency(), FaultPlan::none(), move |_| {
                Box::new(OptiTreePolicy::new(system, rtt_clone.clone(), 7)) as Box<dyn TreePolicy>
            });
            println!(
                "{:<12} {:<22} {:>12.0} {:>12.1}",
                deployment.label(),
                label,
                r.summary.throughput_ops,
                r.summary.mean_latency_ms
            );
        }
        println!();
    }
    println!("# Expected shape: OptiTree > Kauri > HotStuff in throughput; OptiTree's trees have");
    println!("# lower latency than Kauri's random trees, with the gap widening at Global73.");
}
