//! Fig 9 — throughput and latency of OptiTree, Kauri, and HotStuff across
//! geographic deployments (Europe21, NA-EU43, Stellar56, Global73).
//!
//! Usage: `fig09_baseline_comparison [run-seconds] [--threads N] [--out DIR]`

use lab::{
    run_and_report, Deployment, LabArgs, ProtocolScenario, ScenarioKind, ScenarioSpec, Substrate,
    Topology,
};
use netsim::Duration;

fn main() {
    let args = LabArgs::parse();
    let run_secs = args.pos_or(1, 120);
    let scenario = ProtocolScenario::new(
        vec![
            Substrate::HotStuffFixed,
            Substrate::HotStuffRr,
            Substrate::Kauri,
            Substrate::OptiTree,
            Substrate::OptiTreeNoPipeline,
        ],
        vec![
            Topology::of(Deployment::Europe21),
            Topology::of(Deployment::NaEu43),
            Topology::of(Deployment::Stellar56),
            Topology::of(Deployment::Global73),
        ],
    )
    .run_for(Duration::from_secs(run_secs));
    let spec = ScenarioSpec::new(
        "fig09_baseline_comparison",
        args.seeds_or(&[0]),
        ScenarioKind::Protocol(scenario),
    );
    println!("# Fig 9: throughput [op/s] and consensus latency [ms] per deployment");
    run_and_report(
        &spec,
        &args.sweep_options(),
        &["throughput_ops", "latency_ms", "p99_ms"],
    );
    println!("# Expected shape: OptiTree > Kauri > HotStuff in throughput; OptiTree's trees have");
    println!("# lower latency than Kauri's random trees, with the gap widening at Global73.");
}
