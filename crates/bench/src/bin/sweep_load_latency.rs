//! Throughput–latency curves under open-loop geo-distributed load, plus the
//! load-under-delay-attack goodput comparison.
//!
//! Part 1 (`BENCH_load_latency.json`): one representative of each substrate
//! family (BFT-SMaRt, HotStuff-fixed, Kauri, OptiTree) driven at each level
//! of the offered-load grid. Below saturation, committed ≈ offered and p99
//! sits at consensus latency; past the knee, committed throughput plateaus
//! at the substrate's capacity, the bounded admission queue fills, p99 jumps
//! to the queue-drain time, and the excess load is rejected.
//!
//! Part 2 (`BENCH_load_attack.json`): Poisson load while the optimised
//! leader runs the proposal-delay attack mid-run. OptiAware reassigns the
//! leader role and preserves goodput; Aware and HotStuff-fixed collapse
//! until the attack stage ends.
//!
//! Usage: `sweep_load_latency [knee-run-secs] [n] [attack-run-secs]
//!         [--seeds N] [--threads N] [--out DIR] [--breakdown]`

use bench::{load_attack_spec, load_latency_spec, LOAD_LEVELS};
use lab::{run_and_report, sample_seeds, LabArgs};

fn main() {
    let args = LabArgs::parse();
    let knee_secs = args.pos_or(1, 30);
    let n = args.pos_or(2, 7) as usize;
    let attack_secs = args.pos_or(3, 100);

    let seeds = args.seeds_or(&sample_seeds(10_000, 2, 0x10AD));
    let knee = load_latency_spec(knee_secs, n, &LOAD_LEVELS, seeds.clone());
    println!(
        "# Load sweep: {} cells ({} seeds), {} worker thread(s)",
        knee.points().len() * knee.seeds.len(),
        knee.seeds.len(),
        args.threads
    );
    run_and_report(
        &knee,
        &args.sweep_options(),
        &[
            "offered_ops",
            "committed_ops",
            "goodput_ops",
            "e2e_p50_ms",
            "e2e_p99_ms",
            "rejected",
        ],
    );

    let attack = load_attack_spec(attack_secs, n, seeds);
    println!(
        "\n# Load under delay attack: {} cells",
        attack.points().len() * attack.seeds.len()
    );
    run_and_report(
        &attack,
        &args.sweep_options(),
        &[
            "goodput_clean_ops",
            "goodput_attack_ops",
            "goodput_recovered_ops",
            "lat_clean_ms",
            "lat_attack_ms",
            "rejected",
        ],
    );
}
