//! Fig 12 — tree latency as a function of the simulated-annealing search
//! budget, for configuration sizes 57–211.
//!
//! The paper varies wall-clock search time from 250 ms to 4 s; this harness
//! maps search time to an iteration budget using a calibrated
//! iterations-per-second rate and reports both.
//!
//! Usage: `fig12_sa_search [runs-per-point]`

use bench::{arg_or, ci95, mean, Deployment};
use optilog::AnnealingParams;
use optitree::{search_tree, TreeSearchSpace};
use rsm::SystemConfig;
use std::time::Instant;

fn main() {
    let runs = arg_or(1, 20) as usize;
    println!("# Fig 12: tree latency (score, ms) vs simulated-annealing search time");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>10}",
        "n", "search s", "iterations", "latency ms", "ci95"
    );

    // Calibrate iterations/second on the smallest configuration.
    let calib_space = space(57, 0);
    let start = Instant::now();
    let calib_iters = 2_000;
    let _ = search_tree(
        &calib_space,
        AnnealingParams {
            iterations: calib_iters,
            ..Default::default()
        },
        0,
    );
    let per_second = calib_iters as f64 / start.elapsed().as_secs_f64();

    for n in [57usize, 91, 111, 157, 183, 211] {
        for search_secs in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let params = AnnealingParams::from_search_time(search_secs, per_second);
            let mut scores = Vec::new();
            for run in 0..runs {
                let sp = space(n, run as u64);
                let (_, score) = search_tree(&sp, params, run as u64);
                scores.push(score);
            }
            println!(
                "{:>5} {:>12.2} {:>12} {:>14.0} {:>10.1}",
                n,
                search_secs,
                params.iterations,
                mean(&scores),
                ci95(&scores)
            );
        }
        println!();
    }
    println!("# Expected shape: longer searches find lower-latency trees; the gain is largest for");
    println!("# big configurations (n=211 improves ~35% from 250 ms to 4 s) and variance shrinks.");
}

fn space(n: usize, seed: u64) -> TreeSearchSpace {
    let system = SystemConfig::new(n);
    TreeSearchSpace {
        n,
        branch: system.tree_branch_factor(),
        matrix_rtt_ms: Deployment::WorldRandom.rtt_matrix(n, seed),
        candidates: (0..n).collect(),
        k: system.quorum(),
    }
}
