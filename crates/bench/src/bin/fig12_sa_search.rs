//! Fig 12 — tree latency as a function of the simulated-annealing search
//! budget, for configuration sizes 57–211.
//!
//! The paper varies wall-clock search time from 250 ms to 4 s; the scenario
//! maps search time to an iteration budget using a calibrated
//! iterations-per-second rate and reports both.
//!
//! Usage: `fig12_sa_search [runs-per-point] [--threads N] [--out DIR]`

use lab::{run_and_report, LabArgs, ScenarioKind, ScenarioSpec, TreeSearchScenario};

fn main() {
    let args = LabArgs::parse();
    let runs = args.pos_or(1, 20);
    let spec = ScenarioSpec::new(
        "fig12_sa_search",
        args.seeds_or(&(0..runs).collect::<Vec<_>>()),
        ScenarioKind::TreeSearch(TreeSearchScenario {
            sizes: vec![57, 91, 111, 157, 183, 211],
            search_secs: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            calibration_iters: 2_000,
        }),
    );
    println!("# Fig 12: tree latency (score, ms) vs simulated-annealing search time");
    run_and_report(&spec, &args.sweep_options(), &["score_ms", "iterations"]);
    println!("# Expected shape: longer searches find lower-latency trees; the gain is largest for");
    println!("# big configurations (n=211 improves ~35% from 250 ms to 4 s) and variance shrinks.");
}
