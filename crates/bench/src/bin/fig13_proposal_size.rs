//! Fig 13 — proposal size with different OptiLog sensors enabled, for
//! 20/40/60/80 replicas across 10 locations.
//!
//! Usage: `fig13_proposal_size`

use crypto::{Complaint, Digest, Keyring, MisbehaviorKind, MisbehaviorProof};
use optilog::{LatencyVector, Measurement, Suspicion, SuspicionKind};
use optilog::measurement::LoggedConfigProposal;

fn main() {
    println!("# Fig 13: average proposal size [bytes] with different measurements included");
    println!(
        "{:>4} {:>12} {:>14} {:>16} {:>18}",
        "n", "no OptiLog", "latency vec", "susp.+lv", "misbehavior+lv"
    );
    for n in [20usize, 40, 60, 80] {
        let base = 256usize; // block header + batching metadata without OptiLog
        let lv = Measurement::Latency(LatencyVector::new(0, vec![1.0; n])).wire_bytes();
        let suspicion = Measurement::Suspicion(Suspicion {
            kind: SuspicionKind::Slow,
            accuser: 1,
            accused: 2,
            round: 10,
            phase: 2,
            accuser_is_leader: false,
        })
        .wire_bytes();
        // A misbehavior complaint carrying an equivocation proof (two signed digests).
        let ring = Keyring::new(1, n);
        let d1 = Digest::of(b"proposal-a");
        let d2 = Digest::of(b"proposal-b");
        let proof = MisbehaviorProof {
            accused: 3,
            kind: MisbehaviorKind::Equivocation {
                view: 5,
                first: (d1, ring.key(3).sign(&d1)),
                second: (d2, ring.key(3).sign(&d2)),
            },
        };
        let complaint = Measurement::Complaint(Complaint::new(0, proof, &ring)).wire_bytes();
        let config = Measurement::Config(LoggedConfigProposal {
            proposer: 0,
            epoch: 1,
            score: 100.0,
            payload: vec![0u8; n],
        })
        .wire_bytes();

        let with_lv = base + lv;
        // A handful of suspicions ride on a proposal during instability.
        let with_susp = with_lv + 4 * suspicion;
        let with_misb = with_lv + complaint + config;
        println!(
            "{:>4} {:>12} {:>14} {:>16} {:>18}",
            n, base, with_lv, with_susp, with_misb
        );
    }
    println!("# Expected shape: latency vectors add ~2 bytes/replica; suspicions add a few hundred");
    println!("# bytes at most; proofs of misbehavior dominate (kilobytes) but are rare.");
}
