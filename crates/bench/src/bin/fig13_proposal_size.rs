//! Fig 13 — proposal size with different OptiLog sensors enabled, for
//! 20/40/60/80 replicas across 10 locations.
//!
//! Usage: `fig13_proposal_size [--out DIR]`

use lab::{run_and_report, LabArgs, ProposalSizeScenario, ScenarioKind, ScenarioSpec};

fn main() {
    let args = LabArgs::parse();
    let spec = ScenarioSpec::new(
        "fig13_proposal_size",
        args.seeds_or(&[0]),
        ScenarioKind::ProposalSize(ProposalSizeScenario {
            sizes: vec![20, 40, 60, 80],
            base_bytes: 256,
        }),
    );
    println!("# Fig 13: average proposal size [bytes] with different measurements included");
    run_and_report(
        &spec,
        &args.sweep_options(),
        &["bytes_base", "bytes_latency_vec", "bytes_suspicions", "bytes_misbehavior"],
    );
    println!("# Expected shape: latency vectors add ~2 bytes/replica; suspicions add a few hundred");
    println!("# bytes at most; proofs of misbehavior dominate (kilobytes) but are rare.");
}
