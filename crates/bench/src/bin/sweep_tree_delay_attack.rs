//! Fig 7 on the tree substrates: the initial root withholds its
//! disseminations mid-run; Kauri and OptiTree detect the stale proposals,
//! fail the tree, and recover on a new root, while HotStuff-fixed stays
//! degraded until the attack stage closes. Windowed latency (clean / attack /
//! recovered) and the per-commit latency timelines land in
//! `BENCH_sweep_tree_delay_attack.json`.
//!
//! Usage: `sweep_tree_delay_attack [run-seconds] [n] [--seeds N] [--threads N] [--out DIR] [--breakdown]`

use bench::tree_delay_attack_spec;
use lab::{run_and_report, sample_seeds, LabArgs};

fn main() {
    let args = LabArgs::parse();
    let run_secs = args.pos_or(1, 120);
    let n = args.pos_or(2, 13) as usize;

    let seeds = args.seeds_or(&sample_seeds(10_000, 4, 0x7EE5));
    let spec = tree_delay_attack_spec(run_secs, n, seeds);
    let cells = spec.points().len() * spec.seeds.len();
    println!(
        "# Tree root-delay sweep: {} cells ({} seeds), {} worker thread(s)",
        cells,
        spec.seeds.len(),
        args.threads
    );
    run_and_report(
        &spec,
        &args.sweep_options(),
        &[
            "lat_clean_ms",
            "lat_attack_ms",
            "lat_recovered_ms",
            "reconfigurations",
            "throughput_ops",
        ],
    );
}
