//! Seeded samplers for the open-loop arrival processes.
//!
//! [`ArrivalSampler`] turns a declarative [`rsm::ArrivalProcess`] into a
//! deterministic stream of arrival instants. The homogeneous Poisson process
//! samples exponential inter-arrivals directly; the time-varying processes
//! (ramp, diurnal) use *thinning* (Lewis & Shedler): candidate arrivals are
//! drawn at the peak rate and accepted with probability `rate(t) / peak`,
//! which preserves both the target intensity and seed determinism. The
//! on/off process samples in "active time" and maps it onto the on-windows
//! of the duty cycle.

use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::Rng;
use rsm::ArrivalProcess;

/// A deterministic arrival-instant generator for one process.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    /// Current wall-clock position in seconds of virtual time.
    t: f64,
}

impl ArrivalSampler {
    /// Start the process at `t = 0`.
    pub fn new(process: ArrivalProcess) -> Self {
        ArrivalSampler { process, t: 0.0 }
    }

    /// The instantaneous rate at wall time `t` (commands per second).
    pub fn rate_at(&self, t: f64) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff { rate, on, off } => {
                let (on, off) = (on.as_secs_f64(), off.as_secs_f64());
                let cycle = on + off;
                if cycle == 0.0 || t.rem_euclid(cycle) < on {
                    rate
                } else {
                    0.0
                }
            }
            ArrivalProcess::Ramp { from, to, over } => {
                let over = over.as_secs_f64();
                if over == 0.0 {
                    to
                } else {
                    from + (to - from) * (t / over).clamp(0.0, 1.0)
                }
            }
            ArrivalProcess::Diurnal {
                mean,
                amplitude,
                period,
            } => {
                let period = period.as_secs_f64();
                if period == 0.0 {
                    mean
                } else {
                    mean * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period).sin())
                }
            }
        }
    }

    /// The next arrival instant in seconds of virtual time, advancing the
    /// sampler. Returns `None` only for processes that can go permanently
    /// silent (a ramp down to zero); every other process always produces a
    /// next arrival eventually.
    pub fn next_arrival(&mut self, rng: &mut StdRng) -> Option<f64> {
        match self.process {
            ArrivalProcess::Poisson { rate } => {
                self.t += Exp::new(rate).sample(rng);
                Some(self.t)
            }
            ArrivalProcess::OnOff { rate, on, off } => {
                let (on_us, off_us) = (on.as_micros(), off.as_micros());
                if on_us == 0 {
                    return None;
                }
                if off_us == 0 {
                    self.t += Exp::new(rate).sample(rng);
                    return Some(self.t);
                }
                // Draw the wait in active (on-phase) time, then map it onto
                // the duty cycle's on-windows. The walk uses integer
                // microseconds: accumulating float remainders can crawl by
                // denormal steps at a cycle boundary and never terminate.
                let cycle_us = on_us + off_us;
                let mut active = Exp::new(rate).sample(rng);
                let mut t_us = (self.t * 1e6).round() as u64;
                loop {
                    let pos = t_us % cycle_us;
                    if pos >= on_us {
                        // In the off-phase: jump to the next on-window.
                        t_us += cycle_us - pos;
                        continue;
                    }
                    let remaining_on = (on_us - pos) as f64 / 1e6;
                    if active < remaining_on {
                        // The µs round-trip can land a hair before the
                        // previous arrival; clamp to keep the stream monotone.
                        self.t = (t_us as f64 / 1e6 + active).max(self.t);
                        return Some(self.t);
                    }
                    active -= remaining_on;
                    t_us += on_us - pos;
                }
            }
            ArrivalProcess::Ramp { .. } | ArrivalProcess::Diurnal { .. } => {
                // Thinning against the peak-rate envelope.
                let peak = self.process.peak_rate();
                if peak <= 0.0 {
                    return None;
                }
                let env = Exp::new(peak);
                // A ramp ending at rate 0 accepts nothing forever; bail out
                // once the acceptance probability has been ~0 for many
                // candidates past any transient.
                let mut dry = 0u32;
                loop {
                    self.t += env.sample(rng);
                    let accept = self.rate_at(self.t) / peak;
                    if rng.gen_bool(accept.clamp(0.0, 1.0)) {
                        return Some(self.t);
                    }
                    if accept <= f64::EPSILON {
                        dry += 1;
                        if dry > 10_000 {
                            return None;
                        }
                    } else {
                        dry = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::Duration;
    use rand::SeedableRng;

    fn count_until(process: ArrivalProcess, horizon: f64, seed: u64) -> usize {
        let mut sampler = ArrivalSampler::new(process);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut count = 0;
        while let Some(t) = sampler.next_arrival(&mut rng) {
            if t >= horizon {
                break;
            }
            count += 1;
        }
        count
    }

    fn trace(process: ArrivalProcess, horizon: f64, seed: u64) -> Vec<f64> {
        let mut sampler = ArrivalSampler::new(process);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        while let Some(t) = sampler.next_arrival(&mut rng) {
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }

    #[test]
    fn every_process_is_seed_deterministic_and_monotone() {
        let processes = [
            ArrivalProcess::Poisson { rate: 500.0 },
            ArrivalProcess::OnOff {
                rate: 800.0,
                on: Duration::from_secs(2),
                off: Duration::from_secs(3),
            },
            ArrivalProcess::Ramp {
                from: 100.0,
                to: 900.0,
                over: Duration::from_secs(20),
            },
            ArrivalProcess::Diurnal {
                mean: 400.0,
                amplitude: 0.8,
                period: Duration::from_secs(10),
            },
        ];
        for p in processes {
            let a = trace(p, 30.0, 11);
            let b = trace(p, 30.0, 11);
            assert_eq!(a, b, "{p:?} must be seed-deterministic");
            assert_ne!(a, trace(p, 30.0, 12), "{p:?} must vary with the seed");
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{p:?} arrivals must be monotone"
            );
        }
    }

    #[test]
    fn each_process_hits_its_mean_rate_within_tolerance() {
        let horizon = 120.0;
        let cases = [
            (ArrivalProcess::Poisson { rate: 500.0 }, 500.0),
            (
                ArrivalProcess::OnOff {
                    rate: 1000.0,
                    on: Duration::from_secs(1),
                    off: Duration::from_secs(4),
                },
                200.0,
            ),
            (
                ArrivalProcess::Ramp {
                    from: 100.0,
                    to: 500.0,
                    over: Duration::from_secs(120),
                },
                300.0,
            ),
            (
                ArrivalProcess::Diurnal {
                    mean: 300.0,
                    amplitude: 0.9,
                    period: Duration::from_secs(12),
                },
                300.0,
            ),
        ];
        for (p, expect) in cases {
            let rate = count_until(p, horizon, 5) as f64 / horizon;
            assert!(
                (rate - expect).abs() < expect * 0.05,
                "{p:?}: observed {rate:.1}/s, expected {expect:.1}/s"
            );
            // Declared mean agrees with the sampler.
            assert!((p.mean_rate(horizon) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn onoff_is_silent_during_the_off_phase() {
        let p = ArrivalProcess::OnOff {
            rate: 1000.0,
            on: Duration::from_secs(1),
            off: Duration::from_secs(2),
        };
        for t in trace(p, 30.0, 3) {
            assert!(t.rem_euclid(3.0) < 1.0, "arrival at {t} falls in an off-phase");
        }
    }

    #[test]
    fn ramp_to_zero_terminates() {
        let p = ArrivalProcess::Ramp {
            from: 200.0,
            to: 0.0,
            over: Duration::from_secs(5),
        };
        // Must not loop forever once the rate hits zero.
        let n = count_until(p, 1_000.0, 9);
        assert!(n > 0, "the ramp starts hot");
    }

    #[test]
    fn diurnal_peaks_and_troughs_follow_the_sine() {
        let p = ArrivalProcess::Diurnal {
            mean: 600.0,
            amplitude: 0.9,
            period: Duration::from_secs(20),
        };
        let arrivals = trace(p, 200.0, 7);
        // First quarter of each period (sin > 0.7) vs third quarter (sin < -0.7).
        let peak = arrivals
            .iter()
            .filter(|t| (t.rem_euclid(20.0) - 5.0).abs() < 2.0)
            .count();
        let trough = arrivals
            .iter()
            .filter(|t| (t.rem_euclid(20.0) - 15.0).abs() < 2.0)
            .count();
        assert!(
            peak > trough * 3,
            "day/night asymmetry missing: peak {peak} vs trough {trough}"
        );
    }
}
