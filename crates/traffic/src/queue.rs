//! The leader-side admission queue: bounded buffering, size-or-timeout
//! batching, and end-to-end goodput accounting.
//!
//! A [`TrafficQueue`] is compiled once per run from a [`rsm::TrafficSpec`],
//! a client placement, and a seed: the full arrival schedule is materialised
//! up front (deterministically), and the queue then advances on demand as
//! the consuming substrate asks for batches. Requests *enter* the queue one
//! one-way client→nearest-replica latency after they were issued (the
//! ingress hop), wait under the [`rsm::BatchingPolicy`], and — once their
//! batch commits — are accounted with the full client-observed latency:
//! ingress leg + queueing + consensus + reply leg.
//!
//! The queue is bounded: arrivals beyond `queue_capacity` are *rejected*
//! (admission-control backpressure) rather than buffered, so a saturated
//! run shows a latency plateau plus a goodput gap instead of an unbounded
//! latency explosion.
//!
//! Substrates share one queue per run ([`SharedTrafficQueue`]) — the queue
//! logically follows whichever replica currently holds the proposer role,
//! exactly as a leader-side ingress proxy would.

use crate::sampler::ArrivalSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsm::{BatchingPolicy, Command, CommitStats, TrafficSpec};
use runtime::{Duration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use telemetry::{Stage, Telemetry, CLIENTS_PID};

/// One scheduled request, before admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledArrival {
    /// When the client issued the request.
    pub send: SimTime,
    /// Issuing client (only used to tag commands).
    pub client: u64,
    /// One-way client → nearest-replica latency in ms (paid on ingress and
    /// again on the reply).
    pub ingress_ms: f64,
}

/// A batch handed to a substrate, with the id it must echo on commit.
#[derive(Debug, Clone)]
pub struct TrafficBatch {
    /// Opaque batch id; pass to [`TrafficQueue::commit_batch`] when the
    /// block carrying these commands commits.
    pub id: u64,
    /// The batched commands.
    pub commands: Vec<Command>,
}

#[derive(Debug, Clone, Copy)]
struct Arrival {
    send: SimTime,
    ingress: SimTime,
    client: u64,
    reply_ms: f64,
}

/// A batch handed out but not yet committed.
#[derive(Debug, Clone)]
struct InFlight {
    /// When the batch was dispatched (starts the client retry clock).
    at: SimTime,
    /// Arrival indices in the batch.
    idxs: Vec<u64>,
    /// Per-command ingress→proposer forwarding charge (ms), fixed at
    /// dispatch, aligned with `idxs`. The commit accounting and the
    /// `ingress_forward` trace span both read *this* value, so the charged
    /// hop and the observed hop can never drift apart.
    forward_ms: Vec<f64>,
}

/// The ingress→leader forwarding leg of the request path.
///
/// A request enters through its client's *nearest* replica; when the current
/// proposer is a different replica, the request pays one more one-way hop
/// before it can be batched. Without this model that hop was silently folded
/// into consensus latency — under-charging exactly the far-leader placements
/// the role policies are supposed to be judged on.
#[derive(Debug, Clone)]
pub struct ForwardingModel {
    /// Per-client ingress replica (see [`crate::placement::place_clients`]).
    nearest: Vec<usize>,
    /// Row-major `n × n` one-way replica-to-replica latency (ms).
    hop_ms: Vec<f64>,
    n: usize,
}

impl ForwardingModel {
    /// Build from client placements and the deployment's replica RTT matrix
    /// (row-major `n × n`, ms round-trip — halved into one-way hops).
    pub fn from_rtt(nearest: Vec<usize>, rtt_ms: &[f64], n: usize) -> Self {
        assert_eq!(rtt_ms.len(), n * n, "rtt matrix must be n×n");
        assert!(
            nearest.iter().all(|&r| r < n),
            "ingress replica out of range"
        );
        ForwardingModel {
            nearest,
            hop_ms: rtt_ms.iter().map(|&rtt| rtt / 2.0).collect(),
            n,
        }
    }

    /// One-way forwarding latency (ms) for `client`'s requests when
    /// `proposer` holds the leader role. Zero when the client's ingress
    /// replica *is* the proposer.
    pub fn forward_ms(&self, client: u64, proposer: usize) -> f64 {
        let ingress = self.nearest[client as usize % self.nearest.len()];
        self.hop_ms[ingress * self.n + proposer]
    }

    /// The replica `client`'s requests enter through.
    pub fn ingress_of(&self, client: u64) -> usize {
        self.nearest[client as usize % self.nearest.len()]
    }
}

/// The admission queue for one run.
#[derive(Debug)]
pub struct TrafficQueue {
    batching: BatchingPolicy,
    capacity: usize,
    /// The goodput SLO; also anchors the client retry clock.
    slo: Duration,
    /// The full schedule, sorted by ingress time.
    arrivals: Vec<Arrival>,
    /// Next schedule entry not yet admitted or rejected.
    cursor: usize,
    /// Admitted commands (indices into `arrivals`) waiting to be batched.
    waiting: VecDeque<u64>,
    /// Batches handed out but not yet committed.
    in_flight: BTreeMap<u64, InFlight>,
    next_batch_id: u64,
    admitted: u64,
    rejected: u64,
    /// Client retry bound for dropped batches.
    max_retries: u32,
    /// Per-command (arrival index) retry counts.
    retries: BTreeMap<u64, u32>,
    /// Commands re-enqueued after their batch was dropped.
    retried: u64,
    /// Commands whose retry budget ran out (lost for good).
    abandoned: u64,
    /// Ingress→leader forwarding accounting; `None` charges no hop (clients
    /// co-located with the proposer, or unit tests with explicit schedules).
    forwarding: Option<ForwardingModel>,
    stats: CommitStats,
    depth_timeline: Vec<(f64, f64)>,
    max_depth: usize,
    /// Observability handle; disabled by default (zero-cost no-op).
    telemetry: Telemetry,
}

impl TrafficQueue {
    /// Build the queue from an explicit schedule (tests, replays). Arrivals
    /// may be given in any order; they are sorted by ingress instant.
    pub fn from_schedule(
        batching: BatchingPolicy,
        capacity: usize,
        slo: Duration,
        schedule: Vec<ScheduledArrival>,
    ) -> Self {
        assert!(
            capacity >= batching.max_batch,
            "queue capacity {capacity} below batch size {} would starve the size flush",
            batching.max_batch
        );
        let mut arrivals: Vec<Arrival> = schedule
            .into_iter()
            .map(|s| Arrival {
                send: s.send,
                ingress: s.send + Duration::from_millis_f64(s.ingress_ms),
                client: s.client,
                reply_ms: s.ingress_ms,
            })
            .collect();
        arrivals.sort_by_key(|a| (a.ingress, a.send, a.client));
        TrafficQueue {
            batching,
            capacity,
            slo,
            arrivals,
            cursor: 0,
            waiting: VecDeque::new(),
            in_flight: BTreeMap::new(),
            next_batch_id: 0,
            admitted: 0,
            rejected: 0,
            max_retries: 3,
            retries: BTreeMap::new(),
            retried: 0,
            abandoned: 0,
            forwarding: None,
            stats: CommitStats::new().with_slo(slo),
            depth_timeline: Vec::new(),
            max_depth: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Override the client retry bound (see [`rsm::TrafficSpec::max_retries`]).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Install the ingress→leader forwarding model: batches dispatched via
    /// [`TrafficQueue::try_batch_at`] charge each command one extra one-way
    /// hop from its ingress replica to the proposer.
    pub fn with_forwarding(mut self, forwarding: ForwardingModel) -> Self {
        self.forwarding = Some(forwarding);
        self
    }

    /// Install a telemetry handle: client-side spans (`client_emit`,
    /// `admission`, `ingress_forward`, `reply`) and queue metrics are
    /// recorded through it. Disabled by default.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Compile a [`TrafficSpec`] into a queue: sample the arrival process up
    /// to `horizon`, spreading arrivals over the placed clients
    /// (`ingress_ms[c]` = client `c`'s one-way latency to its nearest
    /// replica, see [`crate::placement::client_ingress_ms`]).
    pub fn generate(spec: &TrafficSpec, ingress_ms: &[f64], seed: u64, horizon: SimTime) -> Self {
        assert!(
            !ingress_ms.is_empty(),
            "traffic needs at least one placed client"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = ArrivalSampler::new(spec.arrivals);
        let horizon_s = horizon.as_secs_f64();
        let mut schedule = Vec::new();
        while let Some(t) = sampler.next_arrival(&mut rng) {
            if t >= horizon_s {
                break;
            }
            let client = rng.gen_range(0..ingress_ms.len());
            schedule.push(ScheduledArrival {
                send: SimTime::from_micros((t * 1e6).round() as u64),
                client: client as u64,
                ingress_ms: ingress_ms[client],
            });
        }
        Self::from_schedule(spec.batching, spec.queue_capacity, spec.slo, schedule)
            .with_max_retries(spec.max_retries)
    }

    /// Total requests the schedule offers.
    pub fn offered(&self) -> u64 {
        self.arrivals.len() as u64
    }

    /// The client retry clock: a batch that has been in flight this long is
    /// presumed lost (e.g. its proposer crashed with the views holding it)
    /// and its commands are re-submitted. Generous relative to the SLO so a
    /// slow-but-alive proposer never races its own clients.
    fn retry_timeout(&self) -> Duration {
        self.slo * 4
    }

    /// Move every arrival whose ingress instant has passed into the waiting
    /// queue, rejecting those that find it full; then let clients whose
    /// batch has been in flight beyond the retry clock re-submit — the
    /// backstop for batches lost at a *crashed* proposer, which can never
    /// return them itself.
    fn admit(&mut self, now: SimTime) {
        let timeout = self.retry_timeout();
        let expired: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.at + timeout <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.retry_batch(id, now);
        }
        while self
            .arrivals
            .get(self.cursor)
            .is_some_and(|a| a.ingress <= now)
        {
            if self.waiting.len() >= self.capacity {
                self.rejected += 1;
                self.telemetry
                    .counter_add("traffic.queue.rejected", None, 1);
            } else {
                self.waiting.push_back(self.cursor as u64);
                self.admitted += 1;
                self.telemetry
                    .counter_add("traffic.queue.admitted", None, 1);
            }
            self.cursor += 1;
        }
        self.max_depth = self.max_depth.max(self.waiting.len());
        self.publish_conservation_gauges();
    }

    /// Publish the live conservation terms the audit oracle balances:
    /// `admitted = committed + abandoned + waiting + in_flight` (retried
    /// commands re-enter `waiting` without re-counting as admitted, so the
    /// retry flow cancels out of the identity).
    fn publish_conservation_gauges(&self) {
        if self.telemetry.is_enabled() {
            let in_flight: usize = self.in_flight.values().map(|f| f.idxs.len()).sum();
            self.telemetry
                .gauge_set("traffic.queue.waiting", None, self.waiting.len() as f64);
            self.telemetry
                .gauge_set("traffic.queue.in_flight", None, in_flight as f64);
        }
    }

    /// Ask for a batch as of `now`: flushes when the waiting queue holds a
    /// full batch *or* its oldest command has waited `max_delay`. Returns
    /// `None` while neither condition holds (the substrate should re-ask at
    /// [`TrafficQueue::next_ready_at`]).
    pub fn try_batch(&mut self, now: SimTime) -> Option<TrafficBatch> {
        self.dispatch(now, None)
    }

    /// Like [`TrafficQueue::try_batch`], but records *which* replica is
    /// proposing: with a [`ForwardingModel`] installed, every command in the
    /// batch is charged the ingress→proposer forwarding hop at commit time.
    /// Substrates that know their identity should always use this entry
    /// point; a retried batch re-dispatched by a new proposer is re-charged
    /// against that proposer.
    pub fn try_batch_at(&mut self, now: SimTime, proposer: usize) -> Option<TrafficBatch> {
        self.dispatch(now, Some(proposer))
    }

    fn dispatch(&mut self, now: SimTime, proposer: Option<usize>) -> Option<TrafficBatch> {
        self.admit(now);
        let oldest = self
            .waiting
            .front()
            .map(|&i| self.arrivals[i as usize].ingress)?;
        let full = self.waiting.len() >= self.batching.max_batch;
        let timed_out = now >= oldest + self.batching.max_delay;
        if !full && !timed_out {
            return None;
        }
        let take = self.waiting.len().min(self.batching.max_batch);
        let idxs: Vec<u64> = self.waiting.drain(..take).collect();
        let commands = idxs
            .iter()
            .map(|&i| Command::empty(self.arrivals[i as usize].client, i))
            .collect();
        // The forwarding charge is fixed here, at dispatch: the commit
        // accounting and the trace span below both consume these values.
        let forward_ms: Vec<f64> = idxs
            .iter()
            .map(|&i| match (&self.forwarding, proposer) {
                (Some(f), Some(p)) => f.forward_ms(self.arrivals[i as usize].client, p),
                _ => 0.0,
            })
            .collect();
        if self.telemetry.is_enabled() {
            for (&i, &fwd) in idxs.iter().zip(&forward_ms) {
                let a = self.arrivals[i as usize];
                self.telemetry.span(
                    Stage::ClientEmit,
                    CLIENTS_PID,
                    i,
                    a.send.as_micros(),
                    a.ingress.since(a.send).as_micros(),
                    vec![("client", a.client as f64)],
                );
                self.telemetry.span(
                    Stage::Admission,
                    CLIENTS_PID,
                    i,
                    a.ingress.as_micros(),
                    now.since(a.ingress).as_micros(),
                    vec![],
                );
                if fwd > 0.0 {
                    let ingress_pid = self
                        .forwarding
                        .as_ref()
                        .map_or(CLIENTS_PID, |f| f.ingress_of(a.client));
                    self.telemetry.span(
                        Stage::IngressForward,
                        ingress_pid,
                        i,
                        now.as_micros(),
                        Duration::from_millis_f64(fwd).as_micros(),
                        vec![("proposer", proposer.unwrap_or(0) as f64)],
                    );
                }
                self.telemetry.observe(
                    "traffic.queue.wait_us",
                    None,
                    now.since(a.ingress).as_micros(),
                );
            }
            self.telemetry
                .counter_add("traffic.queue.dispatched", None, idxs.len() as u64);
            self.telemetry
                .gauge_max("traffic.queue.depth_peak", None, self.max_depth as f64);
        }
        let id = self.next_batch_id;
        self.next_batch_id += 1;
        self.in_flight.insert(
            id,
            InFlight {
                at: now,
                idxs,
                forward_ms,
            },
        );
        self.depth_timeline
            .push((now.as_secs_f64(), self.waiting.len() as f64));
        self.publish_conservation_gauges();
        Some(TrafficBatch { id, commands })
    }

    /// The earliest instant at which [`TrafficQueue::try_batch`] could next
    /// succeed, or `None` when the schedule is exhausted and nothing waits.
    /// Always strictly after `now`, so a timer armed on it makes progress.
    pub fn next_ready_at(&mut self, now: SimTime) -> Option<SimTime> {
        self.admit(now);
        let tick = Duration::from_micros(1);
        if self.waiting.len() >= self.batching.max_batch {
            return Some(now + tick);
        }
        // Size path: the ingress instant of the arrival that completes a
        // full batch (future arrivals beyond the capacity bound cannot be
        // rejected before then because capacity ≥ max_batch).
        let need = self.batching.max_batch - self.waiting.len();
        let size_at = self.arrivals.get(self.cursor + need - 1).map(|a| a.ingress);
        // Timeout path: the oldest waiting — or else the next future —
        // command's ingress plus the batching delay.
        let oldest = self
            .waiting
            .front()
            .map(|&i| self.arrivals[i as usize].ingress)
            .or_else(|| self.arrivals.get(self.cursor).map(|a| a.ingress));
        let timeout_at = oldest.map(|o| o + self.batching.max_delay);
        let at = match (size_at, timeout_at) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        Some(at.max(now + tick))
    }

    /// True when [`TrafficQueue::try_batch`] would return a batch at `now`:
    /// the waiting queue holds a full batch or its oldest command has waited
    /// out the batching delay. Tree substrates consult this before reading
    /// root silence as failure — an `OnOff` burst gap longer than a progress
    /// window must not look like a crashed root.
    pub fn has_flushable(&mut self, now: SimTime) -> bool {
        self.admit(now);
        let Some(oldest) = self
            .waiting
            .front()
            .map(|&i| self.arrivals[i as usize].ingress)
        else {
            return false;
        };
        self.waiting.len() >= self.batching.max_batch || now >= oldest + self.batching.max_delay
    }

    /// The batch carrying `id` was dropped before committing (e.g. a tree
    /// reconfiguration discarded the in-flight view): the client population
    /// re-submits every command still inside its retry budget, re-enqueued
    /// at the front of the waiting queue (they are the oldest outstanding
    /// work). Commands keep their original send time, so an eventual commit
    /// is accounted once, with the full client-observed latency including
    /// the lost round trip.
    pub fn retry_batch(&mut self, id: u64, _now: SimTime) {
        let Some(flight) = self.in_flight.remove(&id) else {
            return;
        };
        let mut requeue = Vec::new();
        let mut dropped = 0;
        for i in flight.idxs {
            let tries = self.retries.entry(i).or_insert(0);
            if *tries < self.max_retries {
                *tries += 1;
                requeue.push(i);
            } else {
                self.abandoned += 1;
                dropped += 1;
            }
        }
        self.retried += requeue.len() as u64;
        self.telemetry
            .counter_add("traffic.queue.retried", None, requeue.len() as u64);
        if dropped > 0 {
            self.telemetry
                .counter_add("traffic.queue.abandoned", None, dropped);
        }
        // Front of the queue, original order preserved: retried commands are
        // older than anything still waiting. Capacity is not re-checked —
        // these commands were already admitted once.
        for &i in requeue.iter().rev() {
            self.waiting.push_front(i);
        }
        self.max_depth = self.max_depth.max(self.waiting.len());
        self.publish_conservation_gauges();
    }

    /// Report that the block carrying batch `id` committed at `committed`:
    /// every command in it is accounted with its client-observed latency
    /// (ingress leg + forwarding hop + queueing + consensus + reply leg)
    /// against the SLO.
    pub fn commit_batch(&mut self, id: u64, committed: SimTime) {
        self.commit_batch_impl(id, committed, None);
    }

    /// Like [`TrafficQueue::commit_batch`], additionally naming the
    /// consensus view / sequence ordinal that committed the batch. The
    /// `reply` trace span then carries a `view` argument, which is the link
    /// critical-path attribution uses to join the client-side span chain to
    /// the consensus-side spans of the committing proposal.
    pub fn commit_batch_in(&mut self, id: u64, committed: SimTime, view: u64) {
        self.commit_batch_impl(id, committed, Some(view));
    }

    fn commit_batch_impl(&mut self, id: u64, committed: SimTime, view: Option<u64>) {
        let Some(flight) = self.in_flight.remove(&id) else {
            return;
        };
        for (&i, &forward_ms) in flight.idxs.iter().zip(&flight.forward_ms) {
            let a = self.arrivals[i as usize];
            let e2e = committed.since(a.send) + Duration::from_millis_f64(a.reply_ms + forward_ms);
            self.stats.record_client_commit(e2e, committed);
            if self.telemetry.is_enabled() {
                let args = match view {
                    Some(v) => vec![("view", v as f64)],
                    None => vec![],
                };
                self.telemetry.span(
                    Stage::Reply,
                    CLIENTS_PID,
                    i,
                    committed.as_micros(),
                    Duration::from_millis_f64(a.reply_ms).as_micros(),
                    args,
                );
                self.telemetry
                    .observe("traffic.client.e2e_us", None, e2e.as_micros());
            }
        }
        self.telemetry
            .counter_add("traffic.client.committed", None, flight.idxs.len() as u64);
        self.publish_conservation_gauges();
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests rejected by backpressure so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Commands re-enqueued after a dropped batch so far.
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Commands lost for good after exhausting their retry budget.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Current waiting-queue depth.
    pub fn depth(&self) -> usize {
        self.waiting.len()
    }

    /// Commands inside batches handed out but not yet committed, retried,
    /// or abandoned — the in-flight term of the conservation identity.
    pub fn in_flight_commands(&self) -> u64 {
        self.in_flight.values().map(|f| f.idxs.len() as u64).sum()
    }

    /// The end-to-end statistics collected so far.
    pub fn stats(&self) -> &CommitStats {
        &self.stats
    }

    /// Summarise the run.
    pub fn report(&mut self, run_secs: u64) -> TrafficReport {
        let offered = self.offered();
        let committed = self.stats.client_commands();
        let goodput = self.stats.goodput_commands();
        let secs = run_secs.max(1) as f64;
        TrafficReport {
            offered,
            admitted: self.admitted,
            rejected: self.rejected,
            retried: self.retried,
            abandoned: self.abandoned,
            committed,
            goodput,
            offered_ops: offered as f64 / secs,
            committed_ops: committed as f64 / secs,
            goodput_ops: goodput as f64 / secs,
            e2e_mean_ms: self.stats.e2e_histogram().mean().as_millis_f64(),
            e2e_p50_ms: self.stats.e2e_histogram().median().as_millis_f64(),
            e2e_p99_ms: self.stats.e2e_histogram().percentile(0.99).as_millis_f64(),
            e2e_timeline: self.stats.e2e_timeline().points().to_vec(),
            goodput_timeline: self
                .stats
                .goodput_buckets()
                .iter()
                .enumerate()
                .map(|(sec, &ops)| (sec as f64, ops as f64))
                .collect(),
            depth_timeline: self.depth_timeline.clone(),
            max_depth: self.max_depth,
        }
    }
}

/// Client-side results of one run under offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Requests the schedule offered.
    pub offered: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Commands re-enqueued after their batch was dropped (each counted per
    /// retry, so one command retried twice contributes 2).
    pub retried: u64,
    /// Commands lost after exhausting the retry budget.
    pub abandoned: u64,
    /// Requests whose batch committed.
    pub committed: u64,
    /// Committed requests that met the SLO.
    pub goodput: u64,
    /// Offered load in commands per second (nominal horizon).
    pub offered_ops: f64,
    /// Committed throughput in commands per second (nominal horizon).
    pub committed_ops: f64,
    /// Goodput in commands per second (nominal horizon).
    pub goodput_ops: f64,
    /// Mean end-to-end latency (ms).
    pub e2e_mean_ms: f64,
    /// Median end-to-end latency (ms).
    pub e2e_p50_ms: f64,
    /// 99th-percentile end-to-end latency (ms).
    pub e2e_p99_ms: f64,
    /// Per-command (commit time s, e2e ms) timeline.
    pub e2e_timeline: Vec<(f64, f64)>,
    /// Per-second within-SLO committed counts as (second, ops).
    pub goodput_timeline: Vec<(f64, f64)>,
    /// Queue depth sampled after each batch flush: (time s, depth).
    pub depth_timeline: Vec<(f64, f64)>,
    /// Deepest the waiting queue ever got.
    pub max_depth: usize,
}

/// A [`TrafficQueue`] shared by every replica of one simulated run (the
/// simulation is single-threaded; the mutex only satisfies `Send`).
#[derive(Debug, Clone)]
pub struct SharedTrafficQueue(Arc<Mutex<TrafficQueue>>);

impl SharedTrafficQueue {
    /// Wrap a queue for sharing.
    pub fn new(queue: TrafficQueue) -> Self {
        SharedTrafficQueue(Arc::new(Mutex::new(queue)))
    }

    /// Compile a spec; see [`TrafficQueue::generate`].
    pub fn generate(spec: &TrafficSpec, ingress_ms: &[f64], seed: u64, horizon: SimTime) -> Self {
        Self::new(TrafficQueue::generate(spec, ingress_ms, seed, horizon))
    }

    /// Install a telemetry handle; see [`TrafficQueue::with_telemetry`].
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        self.lock().telemetry = telemetry;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TrafficQueue> {
        self.0.lock().expect("traffic queue poisoned")
    }

    /// See [`TrafficQueue::try_batch`].
    pub fn try_batch(&self, now: SimTime) -> Option<TrafficBatch> {
        self.lock().try_batch(now)
    }

    /// See [`TrafficQueue::try_batch_at`].
    pub fn try_batch_at(&self, now: SimTime, proposer: usize) -> Option<TrafficBatch> {
        self.lock().try_batch_at(now, proposer)
    }

    /// See [`TrafficQueue::next_ready_at`].
    pub fn next_ready_at(&self, now: SimTime) -> Option<SimTime> {
        self.lock().next_ready_at(now)
    }

    /// See [`TrafficQueue::commit_batch`].
    pub fn commit_batch(&self, id: u64, committed: SimTime) {
        self.lock().commit_batch(id, committed)
    }

    /// See [`TrafficQueue::commit_batch_in`].
    pub fn commit_batch_in(&self, id: u64, committed: SimTime, view: u64) {
        self.lock().commit_batch_in(id, committed, view)
    }

    /// See [`TrafficQueue::retry_batch`].
    pub fn retry_batch(&self, id: u64, now: SimTime) {
        self.lock().retry_batch(id, now)
    }

    /// See [`TrafficQueue::has_flushable`].
    pub fn has_flushable(&self, now: SimTime) -> bool {
        self.lock().has_flushable(now)
    }

    /// See [`TrafficQueue::depth`] — the live waiting-queue depth, exposed
    /// for health derivation (depth vs the admission bound).
    pub fn depth(&self) -> usize {
        self.lock().depth()
    }

    /// The queue's admission capacity (waiting-command bound).
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// See [`TrafficQueue::report`].
    pub fn report(&self, run_secs: u64) -> TrafficReport {
        self.lock().report(run_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max_batch: usize, max_delay_ms: u64) -> BatchingPolicy {
        BatchingPolicy {
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
        }
    }

    /// `count` arrivals, one per `spacing_ms`, zero ingress latency.
    fn steady(count: usize, spacing_ms: u64) -> Vec<ScheduledArrival> {
        (0..count)
            .map(|i| ScheduledArrival {
                send: SimTime::from_millis(i as u64 * spacing_ms),
                client: i as u64 % 4,
                ingress_ms: 0.0,
            })
            .collect()
    }

    #[test]
    fn size_flush_fires_when_the_batch_fills() {
        let mut q = TrafficQueue::from_schedule(
            policy(5, 10_000),
            100,
            Duration::from_secs(10),
            steady(12, 10),
        );
        // 4 arrivals in: not full, timeout far away → no batch.
        assert!(q.try_batch(SimTime::from_millis(35)).is_none());
        // 5th arrival crosses the size threshold.
        let b = q.try_batch(SimTime::from_millis(40)).expect("size flush");
        assert_eq!(b.commands.len(), 5);
        // The next five commands flush as soon as they are all in.
        let b2 = q.try_batch(SimTime::from_millis(90)).expect("second flush");
        assert_eq!(b2.commands.len(), 5);
        assert_ne!(b.id, b2.id);
        // Commands carry distinct, schedule-stable ids.
        assert_eq!(b.commands[0].seq, 0);
        assert_eq!(b2.commands[0].seq, 5);
    }

    #[test]
    fn timeout_flush_takes_whatever_is_waiting() {
        let mut q = TrafficQueue::from_schedule(
            policy(100, 50),
            1000,
            Duration::from_secs(10),
            steady(3, 10),
        );
        assert!(
            q.try_batch(SimTime::from_millis(30)).is_none(),
            "no flush before the delay"
        );
        let b = q
            .try_batch(SimTime::from_millis(55))
            .expect("timeout flush");
        assert_eq!(b.commands.len(), 3, "partial batch on timeout");
    }

    #[test]
    fn backpressure_rejects_beyond_capacity() {
        // 50 arrivals at t=0, capacity 20: 30 rejected.
        let schedule: Vec<ScheduledArrival> = (0..50)
            .map(|i| ScheduledArrival {
                send: SimTime::ZERO,
                client: i,
                ingress_ms: 0.0,
            })
            .collect();
        let mut q =
            TrafficQueue::from_schedule(policy(10, 50), 20, Duration::from_secs(10), schedule);
        let b = q.try_batch(SimTime::from_millis(1)).expect("full batch");
        assert_eq!(b.commands.len(), 10);
        assert_eq!(q.admitted(), 20);
        assert_eq!(q.rejected(), 30);
        assert_eq!(q.depth(), 10);
        // The rejected commands never appear in later batches.
        let b2 = q.try_batch(SimTime::from_millis(2)).expect("drain");
        assert_eq!(b2.commands.len(), 10);
        assert!(
            q.try_batch(SimTime::from_secs(1)).is_none(),
            "queue drained"
        );
    }

    #[test]
    fn next_ready_at_predicts_size_and_timeout_paths() {
        let mut q = TrafficQueue::from_schedule(
            policy(5, 200),
            100,
            Duration::from_secs(10),
            steady(10, 10),
        );
        // At t=0 one arrival is in; batch of 5 completes at ingress of the
        // 5th arrival (t = 40 ms) — earlier than 0 + 200 ms timeout.
        let at = q.next_ready_at(SimTime::ZERO).expect("ready eventually");
        assert_eq!(at, SimTime::from_millis(40));
        assert!(q.try_batch(at).is_some(), "prediction must be achievable");

        // Drain the remainder: 5 waiting-or-future arrivals left → size path
        // again at the 10th arrival's ingress (t = 90 ms).
        let at2 = q.next_ready_at(SimTime::from_millis(41)).expect("second");
        assert_eq!(at2, SimTime::from_millis(90));

        // Once the schedule is exhausted and the queue drained: never again.
        assert!(q.try_batch(SimTime::from_millis(90)).is_some());
        assert!(q.next_ready_at(SimTime::from_secs(5)).is_none());
    }

    #[test]
    fn next_ready_at_is_strictly_in_the_future() {
        let mut q =
            TrafficQueue::from_schedule(policy(5, 50), 100, Duration::from_secs(10), steady(3, 10));
        let now = SimTime::from_secs(2);
        // Timeout long passed: the prediction clamps to just after `now`.
        let at = q.next_ready_at(now).expect("stale timeout");
        assert!(at > now);
        assert!(q.try_batch(at).is_some());
    }

    #[test]
    fn goodput_counts_only_within_slo_commits() {
        let mut q = TrafficQueue::from_schedule(
            policy(2, 1000),
            100,
            Duration::from_millis(500),
            steady(4, 10),
        );
        let b1 = q.try_batch(SimTime::from_millis(10)).expect("first pair");
        // Commits quickly: e2e = commit - send ≤ 500 ms for both commands.
        q.commit_batch(b1.id, SimTime::from_millis(200));
        let b2 = q.try_batch(SimTime::from_millis(30)).expect("second pair");
        // Commits late: e2e = 2000 - 20/30 ms > SLO.
        q.commit_batch(b2.id, SimTime::from_millis(2000));
        let report = q.report(2);
        assert_eq!(report.committed, 4);
        assert_eq!(report.goodput, 2, "only the fast batch is goodput");
        assert_eq!(report.offered, 4);
        assert_eq!(report.rejected, 0);
        assert!(report.e2e_p99_ms > 1900.0);
        assert_eq!(report.e2e_timeline.len(), 4);
        // Unknown batch ids are ignored (e.g. batches lost to a tree
        // reconfiguration report nothing).
        q.commit_batch(999, SimTime::from_secs(3));
        assert_eq!(q.report(2).committed, 4);
    }

    #[test]
    fn e2e_includes_both_ingress_and_reply_legs() {
        let schedule = vec![ScheduledArrival {
            send: SimTime::ZERO,
            client: 0,
            ingress_ms: 40.0,
        }];
        let mut q =
            TrafficQueue::from_schedule(policy(1, 100), 10, Duration::from_secs(1), schedule);
        // Ingress at 40 ms; batch of 1 flushes immediately at the size path.
        let b = q.try_batch(SimTime::from_millis(40)).expect("single");
        q.commit_batch(b.id, SimTime::from_millis(100));
        let report = q.report(1);
        // e2e = (100 − 0) commit delta + 40 reply = 140 ms.
        assert!((report.e2e_mean_ms - 140.0).abs() < 1e-6);
    }

    #[test]
    fn forwarding_hop_is_charged_against_the_proposer() {
        // 2 replicas 80 ms RTT apart; client 0 enters through replica 0.
        let rtt = vec![0.0, 80.0, 80.0, 0.0];
        let model = ForwardingModel::from_rtt(vec![0], &rtt, 2);
        assert_eq!(model.forward_ms(0, 0), 0.0);
        assert_eq!(model.forward_ms(0, 1), 40.0);

        let schedule = vec![ScheduledArrival {
            send: SimTime::ZERO,
            client: 0,
            ingress_ms: 10.0,
        }];
        let mk = || {
            TrafficQueue::from_schedule(
                policy(1, 100),
                10,
                Duration::from_secs(1),
                schedule.clone(),
            )
            .with_forwarding(ForwardingModel::from_rtt(vec![0], &rtt, 2))
        };

        // Proposed by the ingress replica itself: no forwarding charge.
        // e2e = (100 − 0) commit delta + 10 reply = 110 ms.
        let mut near = mk();
        let b = near
            .try_batch_at(SimTime::from_millis(10), 0)
            .expect("near");
        near.commit_batch(b.id, SimTime::from_millis(100));
        assert!((near.report(1).e2e_mean_ms - 110.0).abs() < 1e-6);

        // Proposed by the far replica: one extra 40 ms one-way hop.
        let mut far = mk();
        let b = far.try_batch_at(SimTime::from_millis(10), 1).expect("far");
        far.commit_batch(b.id, SimTime::from_millis(100));
        assert!((far.report(1).e2e_mean_ms - 150.0).abs() < 1e-6);

        // Proposer unknown (plain try_batch): conservatively uncharged —
        // the behaviour every pre-forwarding unit test and harness relies on.
        let mut anon = mk();
        let b = anon.try_batch(SimTime::from_millis(10)).expect("anon");
        anon.commit_batch(b.id, SimTime::from_millis(100));
        assert!((anon.report(1).e2e_mean_ms - 110.0).abs() < 1e-6);
    }

    #[test]
    fn forwarding_charge_and_trace_span_are_the_same_value() {
        // The satellite invariant: the e2e accounting and the exported
        // `ingress_forward` span must read one stored number, so they can
        // never drift. 80 ms RTT → 40 ms hop → 40_000 µs span.
        let rtt = vec![0.0, 80.0, 80.0, 0.0];
        let schedule = vec![ScheduledArrival {
            send: SimTime::ZERO,
            client: 0,
            ingress_ms: 0.0,
        }];
        let tel = Telemetry::tracing();
        let mut q =
            TrafficQueue::from_schedule(policy(1, 100), 10, Duration::from_secs(1), schedule)
                .with_forwarding(ForwardingModel::from_rtt(vec![0], &rtt, 2))
                .with_telemetry(tel.clone());
        let b = q
            .try_batch_at(SimTime::from_millis(10), 1)
            .expect("far batch");
        q.commit_batch(b.id, SimTime::from_millis(100));
        // Charged: 100 ms commit delta + 40 ms forward + 0 reply = 140 ms.
        assert!((q.report(1).e2e_mean_ms - 140.0).abs() < 1e-6);
        // Observed: exactly one ingress_forward span of 40_000 µs at the
        // ingress replica's track.
        let json = tel.chrome_trace_json(&[]).expect("tracing handle");
        assert!(json.contains("\"name\":\"ingress_forward\""));
        assert!(
            json.contains("\"dur\":40000"),
            "span is the charged hop: {json}"
        );
        assert_eq!(tel.stage_counts()["ingress_forward"], 1);
        assert_eq!(tel.stage_counts()["client_emit"], 1);
        assert_eq!(tel.stage_counts()["admission"], 1);
        assert_eq!(tel.stage_counts()["reply"], 1);
        // The registry saw the e2e observation too.
        assert_eq!(
            tel.registry_snapshot()
                .counter("traffic.client.committed", None),
            1
        );
    }

    #[test]
    fn telemetry_does_not_perturb_queue_behaviour() {
        let run = |telemetry: Telemetry| {
            let mut q = TrafficQueue::from_schedule(
                policy(3, 50),
                100,
                Duration::from_secs(1),
                steady(9, 10),
            )
            .with_telemetry(telemetry);
            let mut sig = Vec::new();
            let mut now = SimTime::ZERO;
            while let Some(at) = q.next_ready_at(now) {
                now = at;
                if let Some(b) = q.try_batch(now) {
                    sig.push((b.id, b.commands.len(), now));
                    q.commit_batch(b.id, now + Duration::from_millis(20));
                }
            }
            (sig, q.report(1))
        };
        assert_eq!(run(Telemetry::disabled()), run(Telemetry::tracing()));
    }

    #[test]
    fn retried_batch_is_recharged_against_its_new_proposer() {
        let rtt = vec![0.0, 80.0, 80.0, 0.0];
        let schedule = vec![ScheduledArrival {
            send: SimTime::ZERO,
            client: 0,
            ingress_ms: 0.0,
        }];
        let mut q =
            TrafficQueue::from_schedule(policy(1, 100), 10, Duration::from_secs(10), schedule)
                .with_forwarding(ForwardingModel::from_rtt(vec![0], &rtt, 2));
        // Dispatched by the far proposer, lost, re-dispatched by the near
        // one: the commit charges the *new* proposer's hop (zero), not the
        // lost flight's.
        let b1 = q
            .try_batch_at(SimTime::from_millis(1), 1)
            .expect("far flight");
        q.retry_batch(b1.id, SimTime::from_millis(200));
        let b2 = q
            .try_batch_at(SimTime::from_millis(201), 0)
            .expect("re-dispatch");
        q.commit_batch(b2.id, SimTime::from_millis(300));
        // e2e = 300 ms commit delta + 0 reply + 0 forward.
        assert!((q.report(1).e2e_mean_ms - 300.0).abs() < 1e-6);
    }

    #[test]
    fn generated_queue_is_seed_deterministic() {
        let spec = rsm::TrafficSpec::poisson(2000.0).with_clients(8);
        let ingress = vec![5.0; 8];
        let horizon = SimTime::from_secs(5);
        let mk = |seed| {
            let mut q = TrafficQueue::generate(&spec, &ingress, seed, horizon);
            let mut sig = Vec::new();
            let mut now = SimTime::ZERO;
            while let Some(at) = q.next_ready_at(now) {
                now = at;
                if let Some(b) = q.try_batch(now) {
                    sig.push((b.id, b.commands.len(), now));
                    q.commit_batch(b.id, now + Duration::from_millis(30));
                }
            }
            (q.offered(), sig, q.report(5))
        };
        let a = mk(7);
        assert_eq!(a, mk(7));
        assert_ne!(a.0, mk(8).0);
        // Offered load is close to the configured rate.
        let rate = a.0 as f64 / 5.0;
        assert!((rate - 2000.0).abs() < 200.0, "offered {rate}/s");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_below_batch_size_is_rejected() {
        TrafficQueue::from_schedule(policy(100, 50), 10, Duration::from_secs(1), vec![]);
    }

    #[test]
    fn dropped_batch_is_retried_and_committed_once() {
        let mut q = TrafficQueue::from_schedule(
            policy(3, 1000),
            100,
            Duration::from_secs(10),
            steady(3, 10),
        );
        let b = q.try_batch(SimTime::from_millis(20)).expect("full batch");
        assert_eq!(b.commands.len(), 3);
        // The view carrying the batch is discarded by a reconfiguration:
        // the clients re-submit, and the next flush carries the same
        // commands in their original order.
        q.retry_batch(b.id, SimTime::from_millis(500));
        assert_eq!(q.retried(), 3);
        assert_eq!(q.depth(), 3);
        let b2 = q.try_batch(SimTime::from_millis(600)).expect("retry flush");
        let seqs: Vec<u64> = b2.commands.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        q.commit_batch(b2.id, SimTime::from_millis(700));
        // Committing the stale original id later changes nothing — the
        // retried batch is accounted exactly once, with the original send
        // times (e2e spans the lost round trip).
        q.commit_batch(b.id, SimTime::from_millis(900));
        let report = q.report(1);
        assert_eq!(report.committed, 3);
        assert_eq!(report.retried, 3);
        assert_eq!(report.abandoned, 0);
        assert!(report.e2e_mean_ms >= 650.0, "e2e includes the retry detour");
    }

    #[test]
    fn retry_budget_bounds_resubmission() {
        let mut q = TrafficQueue::from_schedule(
            policy(2, 1000),
            100,
            Duration::from_secs(10),
            steady(2, 1),
        )
        .with_max_retries(2);
        for round in 0..3 {
            let b = q
                .try_batch(SimTime::from_millis(10 + round * 10))
                .unwrap_or_else(|| panic!("flush {round}"));
            q.retry_batch(b.id, SimTime::from_millis(15 + round * 10));
        }
        // Two retries allowed; the third drop abandons both commands.
        assert_eq!(q.retried(), 4);
        assert_eq!(q.abandoned(), 2);
        assert!(q.try_batch(SimTime::from_secs(5)).is_none(), "nothing left");
        assert_eq!(q.report(1).committed, 0);
    }

    #[test]
    fn conservation_terms_balance_in_the_registry() {
        // admitted = committed + abandoned + waiting + in_flight, readable
        // from the registry alone — the identity the audit oracle checks.
        let tel = Telemetry::recording();
        let mut q = TrafficQueue::from_schedule(
            policy(2, 1000),
            100,
            Duration::from_secs(10),
            steady(6, 1),
        )
        .with_max_retries(0)
        .with_telemetry(tel.clone());
        let b1 = q.try_batch(SimTime::from_millis(10)).expect("pair 1");
        q.commit_batch(b1.id, SimTime::from_millis(50));
        let b2 = q.try_batch(SimTime::from_millis(60)).expect("pair 2");
        q.retry_batch(b2.id, SimTime::from_millis(70)); // budget 0 → abandoned
        let _b3 = q
            .try_batch(SimTime::from_millis(80))
            .expect("pair 3 in flight");
        let reg = tel.registry_snapshot();
        let admitted = reg.counter("traffic.queue.admitted", None);
        let committed = reg.counter("traffic.client.committed", None);
        let abandoned = reg.counter("traffic.queue.abandoned", None);
        let waiting = reg.gauge("traffic.queue.waiting", None).unwrap_or(0.0) as u64;
        let in_flight = reg.gauge("traffic.queue.in_flight", None).unwrap_or(0.0) as u64;
        assert_eq!(admitted, 6);
        assert_eq!(committed, 2);
        assert_eq!(abandoned, 2);
        assert_eq!(waiting, 0);
        assert_eq!(in_flight, 2);
        assert_eq!(in_flight, q.in_flight_commands());
        assert_eq!(admitted, committed + abandoned + waiting + in_flight);
    }

    #[test]
    fn has_flushable_tracks_try_batch_without_draining() {
        let mut q =
            TrafficQueue::from_schedule(policy(5, 50), 100, Duration::from_secs(10), steady(3, 10));
        assert!(
            !q.has_flushable(SimTime::from_millis(5)),
            "partial and fresh"
        );
        assert!(q.has_flushable(SimTime::from_millis(55)), "timeout path");
        assert!(q.try_batch(SimTime::from_millis(55)).is_some());
        // Drained and schedule exhausted: never flushable again — the idle
        // signal the tree staleness clock keys off.
        assert!(!q.has_flushable(SimTime::from_secs(9)));
    }
}
