//! # traffic — open-loop geo-distributed client load for every substrate
//!
//! The paper's throughput experiments keep leaders saturated with pre-filled
//! batches ([`rsm::BlockSource`]); this crate provides the *offered-load*
//! counterpart, so experiments can ask throughput–latency questions (where
//! is the saturation knee? what happens to goodput under attack?) instead of
//! only saturation-point questions:
//!
//! * [`ArrivalSampler`] — deterministic per-seed sampling of the open-loop
//!   arrival processes declared by [`rsm::ArrivalProcess`] (Poisson, on/off
//!   bursty, ramp, diurnal), via exponential inter-arrivals and thinning.
//! * [`placement::place_clients`] — client populations placed on
//!   [`netsim::CityDataset`] cities, so every request pays a realistic
//!   one-way latency to its nearest replica before it can be batched (and
//!   the reply pays it back). When the proposer is *not* the ingress
//!   replica, the [`ForwardingModel`] charges the extra ingress→leader hop
//!   explicitly, so far leaders are not silently under-charged.
//! * [`TrafficQueue`] — the leader-side admission queue: bounded
//!   (backpressure rejects arrivals beyond capacity) with size-or-timeout
//!   batching ([`rsm::BatchingPolicy`]), handed to substrates as a
//!   [`SharedTrafficQueue`] they pull [`TrafficBatch`]es from instead of a
//!   saturated source.
//! * [`TrafficReport`] — offered/committed/goodput accounting with
//!   end-to-end latency percentiles and timelines, where *goodput* counts
//!   only commands whose client-observed latency met the
//!   [`rsm::TrafficSpec`] SLO deadline.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod placement;
pub mod queue;
pub mod sampler;

pub use placement::{client_ingress_ms, place_clients, ClientPlacement};
pub use queue::{
    ForwardingModel, ScheduledArrival, SharedTrafficQueue, TrafficBatch, TrafficQueue,
    TrafficReport,
};
pub use sampler::ArrivalSampler;
