//! Geo-distributed client placement.
//!
//! The paper's clients are co-located with replicas (zero latency). An
//! open-loop population is the opposite: clients live wherever users live,
//! so a request pays a real network hop before any replica sees it. Clients
//! are placed on [`netsim::CityDataset`] cities drawn from the same region
//! subset the deployment uses; each client submits through its *nearest
//! replica* (the standard ingress pattern), so its requests enter the
//! admission queue one one-way city latency after they were issued — and its
//! replies pay the same leg back.

use netsim::CityDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Last-mile floor for a client sharing a city with a replica (ms, one-way).
pub const MIN_INGRESS_MS: f64 = 0.5;

/// Where one client landed: the ingress latency it pays and *which* replica
/// is its ingress point — the identity the forwarding hop to a far leader is
/// charged against (see [`crate::ForwardingModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientPlacement {
    /// One-way latency (ms) to the nearest replica, floored at
    /// [`MIN_INGRESS_MS`].
    pub ingress_ms: f64,
    /// Index (into `replica_cities`, i.e. the replica id) of that nearest
    /// replica.
    pub nearest: usize,
}

/// Place `clients` clients uniformly at random (seeded) on the cities of
/// `subset` and pair each with its nearest replica; `replica_cities` are the
/// cities the deployment assigned to the replicas.
pub fn place_clients(
    ds: &CityDataset,
    subset: &[usize],
    replica_cities: &[usize],
    clients: usize,
    seed: u64,
) -> Vec<ClientPlacement> {
    assert!(!subset.is_empty(), "client placement needs a non-empty city subset");
    assert!(!replica_cities.is_empty(), "client placement needs replicas");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..clients)
        .map(|_| {
            let city = subset[rng.gen_range(0..subset.len())];
            let (nearest, one_way) = replica_cities
                .iter()
                .enumerate()
                .map(|(r, &rc)| (r, ds.rtt_ms(city, rc) / 2.0))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .expect("non-empty replica set");
            ClientPlacement {
                ingress_ms: one_way.max(MIN_INGRESS_MS),
                nearest,
            }
        })
        .collect()
}

/// One-way latency (ms) from each of `clients` clients to its nearest
/// replica (see [`place_clients`] for the variant that also reports *which*
/// replica that is).
pub fn client_ingress_ms(
    ds: &CityDataset,
    subset: &[usize],
    replica_cities: &[usize],
    clients: usize,
    seed: u64,
) -> Vec<f64> {
    place_clients(ds, subset, replica_cities, clients, seed)
        .into_iter()
        .map(|p| p.ingress_ms)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_seed_deterministic_and_floored() {
        let ds = CityDataset::worldwide();
        let subset = ds.europe21();
        let replicas: Vec<usize> = subset.iter().take(7).copied().collect();
        let a = client_ingress_ms(&ds, &subset, &replicas, 50, 4);
        assert_eq!(a, client_ingress_ms(&ds, &subset, &replicas, 50, 4));
        assert_ne!(a, client_ingress_ms(&ds, &subset, &replicas, 50, 5));
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|&ms| ms >= MIN_INGRESS_MS && ms.is_finite()));
    }

    #[test]
    fn ingress_is_the_nearest_replica_not_an_arbitrary_one() {
        let ds = CityDataset::worldwide();
        let subset = ds.global73();
        let replicas: Vec<usize> = subset.iter().take(7).copied().collect();
        for &ms in &client_ingress_ms(&ds, &subset, &replicas, 100, 1) {
            // Never worse than half the worst replica-pair RTT in the subset.
            assert!(ms <= 125.0 + 1e-9, "ingress {ms} ms exceeds half the max RTT");
        }
    }

    #[test]
    fn place_clients_reports_the_replica_behind_the_ingress_latency() {
        let ds = CityDataset::worldwide();
        let subset = ds.global73();
        let replicas: Vec<usize> = subset.iter().take(7).copied().collect();
        let placed = place_clients(&ds, &subset, &replicas, 100, 1);
        // Same draws as client_ingress_ms: the scalar view is a projection.
        let scalar = client_ingress_ms(&ds, &subset, &replicas, 100, 1);
        assert_eq!(placed.iter().map(|p| p.ingress_ms).collect::<Vec<_>>(), scalar);
        for p in &placed {
            assert!(p.nearest < replicas.len());
            // The reported ingress is achievable from *some* subset city via
            // the reported replica (argmin consistency, up to the floor).
            let achievable = subset.iter().any(|&city| {
                let d = (ds.rtt_ms(city, replicas[p.nearest]) / 2.0).max(MIN_INGRESS_MS);
                (d - p.ingress_ms).abs() < 1e-9
                    && replicas
                        .iter()
                        .all(|&r| ds.rtt_ms(city, r) / 2.0 >= ds.rtt_ms(city, replicas[p.nearest]) / 2.0 - 1e-9)
            });
            assert!(achievable, "placement {p:?} not consistent with any city");
        }
        // Different replicas actually get picked across the population.
        let distinct: std::collections::BTreeSet<usize> =
            placed.iter().map(|p| p.nearest).collect();
        assert!(distinct.len() > 1, "one ingress replica for 100 global clients");
    }

    #[test]
    fn clients_far_from_all_replicas_pay_intercontinental_ingress() {
        let ds = CityDataset::worldwide();
        // Replicas in Europe, clients drawn from the whole world: some
        // clients must pay the intercontinental floor (150 ms RTT → 75 ms).
        let eu = ds.europe21();
        let world: Vec<usize> = (0..ds.len()).collect();
        let ingress = client_ingress_ms(&ds, &world, &eu, 200, 2);
        assert!(ingress.iter().any(|&ms| ms >= 75.0));
        assert!(ingress.iter().any(|&ms| ms < 40.0));
    }
}
