//! Property-based tests for the open-loop traffic subsystem: every arrival
//! process is seed-deterministic and hits its configured mean rate within
//! tolerance, for arbitrary (bounded) parameters — not just the hand-picked
//! unit-test cases.

use netsim::{Duration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsm::{ArrivalProcess, TrafficSpec};
use traffic::{ArrivalSampler, TrafficQueue};

/// Collect the process's arrivals below `horizon` seconds.
fn arrivals(process: ArrivalProcess, horizon: f64, seed: u64) -> Vec<f64> {
    let mut sampler = ArrivalSampler::new(process);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    while let Some(t) = sampler.next_arrival(&mut rng) {
        if t >= horizon {
            break;
        }
        out.push(t);
    }
    out
}

fn check_process(process: ArrivalProcess, horizon: f64, seed: u64) {
    let a = arrivals(process, horizon, seed);
    // Seed-deterministic, seed-sensitive, monotone.
    prop_assert_eq!(&a, &arrivals(process, horizon, seed));
    prop_assert_ne!(&a, &arrivals(process, horizon, seed.wrapping_add(1)));
    prop_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    // Mean rate within tolerance of the declared mean (5 σ of a Poisson
    // count, floored at 10% for small expectations).
    let expect = process.mean_rate(horizon) * horizon;
    let tolerance = (5.0 * expect.sqrt()).max(expect * 0.1);
    prop_assert!(
        (a.len() as f64 - expect).abs() <= tolerance,
        "{:?}: {} arrivals vs expected {:.0} ± {:.0}",
        process,
        a.len(),
        expect,
        tolerance
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn poisson_hits_its_rate(rate in 50.0f64..3000.0, seed in 0u64..1000) {
        check_process(ArrivalProcess::Poisson { rate }, 40.0, seed);
    }

    #[test]
    fn onoff_hits_its_duty_cycled_rate(
        rate in 100.0f64..2000.0,
        on_ms in 200u64..2000,
        off_ms in 200u64..2000,
        seed in 0u64..1000,
    ) {
        let process = ArrivalProcess::OnOff {
            rate,
            on: Duration::from_millis(on_ms),
            off: Duration::from_millis(off_ms),
        };
        // Whole number of cycles so the duty-cycle mean is exact.
        let cycle = (on_ms + off_ms) as f64 / 1000.0;
        let horizon = cycle * (30.0 / cycle).ceil();
        check_process(process, horizon, seed);
    }

    #[test]
    fn ramp_hits_its_average_rate(
        from in 50.0f64..1000.0,
        to in 50.0f64..1000.0,
        seed in 0u64..1000,
    ) {
        let process = ArrivalProcess::Ramp { from, to, over: Duration::from_secs(20) };
        check_process(process, 40.0, seed);
    }

    #[test]
    fn diurnal_hits_its_mean_rate(
        mean in 100.0f64..2000.0,
        amplitude in 0.0f64..0.95,
        seed in 0u64..1000,
    ) {
        let process = ArrivalProcess::Diurnal {
            mean,
            amplitude,
            period: Duration::from_secs(10),
        };
        // Whole periods, so the sine averages out exactly.
        check_process(process, 40.0, seed);
    }

    /// Conservation law of the admission queue: every offered command is
    /// eventually admitted or rejected, and every admitted command is
    /// batched, re-batched after a client retry, or still waiting — nothing
    /// is created or lost. (This driver never commits, so every dispatched
    /// batch eventually rides the client retry clock back into the queue
    /// until its budget runs out.)
    #[test]
    fn queue_conserves_commands(
        rate in 200.0f64..4000.0,
        max_batch in 10usize..200,
        capacity_factor in 1usize..10,
        seed in 0u64..1000,
    ) {
        let spec = TrafficSpec::poisson(rate)
            .with_clients(16)
            .with_batching(max_batch, Duration::from_millis(40))
            .with_capacity(max_batch * capacity_factor);
        let ingress = vec![3.0; 16];
        let mut q = TrafficQueue::generate(&spec, &ingress, seed, SimTime::from_secs(10));
        let mut batched = 0u64;
        let mut now = SimTime::ZERO;
        while let Some(at) = q.next_ready_at(now) {
            now = at;
            if let Some(b) = q.try_batch(now) {
                prop_assert!(b.commands.len() <= max_batch);
                batched += b.commands.len() as u64;
            }
        }
        prop_assert_eq!(q.admitted() + q.rejected(), q.offered());
        prop_assert_eq!(batched + q.depth() as u64, q.admitted() + q.retried());

        // With prompt commits the retry clock never fires and the original
        // law holds exactly.
        let mut q = TrafficQueue::generate(&spec, &ingress, seed, SimTime::from_secs(10));
        let mut batched = 0u64;
        let mut now = SimTime::ZERO;
        while let Some(at) = q.next_ready_at(now) {
            now = at;
            if let Some(b) = q.try_batch(now) {
                batched += b.commands.len() as u64;
                q.commit_batch(b.id, now);
            }
        }
        prop_assert_eq!(q.retried(), 0);
        prop_assert_eq!(batched + q.depth() as u64, q.admitted());
    }
}
