//! The Kauri replica and its experiment harness.
//!
//! Message flow per view: the root disseminates a proposal to its
//! intermediate nodes, which forward it to their leaves; leaves vote to their
//! parent, intermediates aggregate the votes of their subtree (adding an
//! explicit "missing" entry for children that did not answer before the child
//! timeout, per OptiTree's aggregation rule) and forward the aggregate to the
//! root; the root commits the view once it has collected the vote threshold.
//! The root pipelines several views concurrently (§6.1.1).
//!
//! Fault handling: every replica re-arms a progress timer whenever it sees a
//! new proposal. If the timer fires, the replica advances to the next tree of
//! its [`TreePolicy`] (all replicas share the policy seed, so they compute
//! the same successor tree — the simulation's stand-in for agreeing on the
//! next configuration through the shared log) and, if it is the new root,
//! resumes proposing after the configured reconfiguration delay.
//!
//! Scripted misbehavior: a replica with an active [`rsm::DelayStage`] holds
//! every payload it disseminates down the tree (its proposals as root, its
//! forwarded proposals as intermediate) while keeping proposal timestamps
//! honest. Replicas detect the withholding from those timestamps — a
//! proposal already older than the view timeout on arrival is *stale*, and
//! repeated stale proposals fail the tree exactly like silence does — which
//! is how the Fig 7 root-delay attack becomes observable (and recoverable)
//! on the tree substrates. Staleness is always blamed on the root (per-hop
//! attribution would have to trust attacker-supplied timestamps), so a
//! delaying *intermediate* is excised only by the policy's own exclusion
//! rules across reconfigurations, not by the staleness detector itself.

use crate::policy::TreePolicy;
use crate::tree::Tree;
use crypto::{Digest, Hashable};
use netsim::{
    Context, Duration, FaultPlan, LatencyModel, Node, NodeId, RateCounter, SimTime, Simulation,
    SimulationConfig, TimerId,
};
use rsm::{misbehavior, Block, BlockSource, CommitStats, DelayStage, MisbehaviorPlan, RunSummary, SystemConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use traffic::SharedTrafficQueue;

const TIMER_PROGRESS: u64 = 1;
const TIMER_RECONFIG_DONE: u64 = 2;
/// Wake-up when the traffic queue's next batch becomes flushable.
const TIMER_TRAFFIC_READY: u64 = 3;
/// Child-timeout timers encode the view in the tag as `TIMER_CHILD_BASE + view`.
const TIMER_CHILD_BASE: u64 = 1_000;
/// View-timeout timers encode the view as `TIMER_VIEW_BASE + view`.
const TIMER_VIEW_BASE: u64 = 1_000_000_000;
/// Held-payload timers (scripted delay attack) encode a release sequence.
const TIMER_HELD_BASE: u64 = 2_000_000_000;
/// Stale proposals tolerated before the tree is declared failed. Deliberately
/// above the default pipeline depth (3): a delaying root's in-flight
/// pipelined views arrive as one burst of stale proposals, and abandoning the
/// tree mid-burst would clear the aggregation state their votes still need —
/// the withheld views would never commit and the attack would look like a
/// silent crash instead of the latency spike the paper measures (Fig 7).
const STALE_STRIKE_LIMIT: u32 = 4;

/// Messages exchanged by Kauri replicas.
#[derive(Debug, Clone)]
pub enum KauriMessage {
    /// A proposal travelling down the tree (root → intermediates → leaves).
    Proposal {
        /// The view being disseminated.
        view: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// Number of commands in the block.
        commands: usize,
        /// Root's proposal timestamp in µs.
        timestamp_us: u64,
        /// Tree epoch the proposal belongs to.
        epoch: u64,
        /// The tree the proposal travels on (shared, so per-hop clones are
        /// pointer-sized). Replicas behind on `epoch` adopt it — the
        /// simulation's stand-in for the new configuration being agreed
        /// through the replicated log. Without adoption, replicas that
        /// reconfigure at different local times diverge, and divergent
        /// trees can route a proposal in a cycle.
        tree: Arc<Tree>,
    },
    /// A leaf's vote, sent to its parent.
    Vote {
        /// The voted view.
        view: u64,
        /// The voting replica.
        voter: usize,
    },
    /// An intermediate node's aggregate, sent to the root.
    Aggregate {
        /// The aggregated view.
        view: u64,
        /// Replicas whose votes are included (the aggregator and its children).
        voters: Vec<usize>,
        /// Children that did not vote before the child timeout.
        missing: Vec<usize>,
        /// The aggregating replica.
        aggregator: usize,
    },
}

/// Root-side state of one in-flight view.
#[derive(Debug, Clone)]
struct ViewState {
    proposal_ts: SimTime,
    commands: usize,
    voters: BTreeSet<usize>,
    missing: BTreeSet<usize>,
    committed: bool,
    /// Traffic batch carried by the view (proposer side), echoed to the
    /// queue on commit for end-to-end accounting.
    batch_id: Option<u64>,
}

/// Intermediate-side state of one view.
#[derive(Debug, Clone, Default)]
struct AggState {
    votes: BTreeSet<usize>,
    forwarded: bool,
    digest: Digest,
}

/// A down-tree payload held back by an active delay stage. `held` is cleared
/// eagerly on every epoch change (reconfiguration and tree adoption), so a
/// payload that survives until its release timer is always routed on the
/// replica's current tree.
#[derive(Debug, Clone)]
struct HeldPayload {
    targets: Vec<usize>,
    msg: KauriMessage,
}

/// One Kauri replica.
pub struct KauriNode {
    id: usize,
    system: SystemConfig,
    tree: Tree,
    epoch: u64,
    policy: Box<dyn TreePolicy>,
    batch: BlockSource,
    pipeline: usize,
    branch: usize,
    reconfig_delay: Duration,

    // Root state.
    views: BTreeMap<u64, ViewState>,
    next_view: u64,
    highest_view_seen: u64,
    reconfiguring: bool,
    last_progress: SimTime,

    // Intermediate state.
    aggregates: BTreeMap<u64, AggState>,

    // Scripted delay attack: while a stage is active this replica holds
    // every payload it disseminates down the tree (proposals as root,
    // forwarded proposals as intermediate) by the stage's delay.
    delays: Vec<DelayStage>,
    held: BTreeMap<u64, HeldPayload>,
    next_held: u64,
    /// Open-loop traffic source (`None` = the saturated paper workload).
    /// Shared by every replica: the queue logically follows whichever
    /// replica is the current root.
    traffic: Option<SharedTrafficQueue>,
    /// Consecutive proposals that arrived already older than the view
    /// timeout — the root-delay detector (see `handle_proposal`).
    stale_strikes: u32,
    /// Highest view that contributed a stale strike: duplicate deliveries of
    /// the same withheld view (possible while divergent trees re-converge)
    /// must not double-count as "consecutive" strikes.
    last_strike_view: u64,

    /// Commit statistics (recorded at the root that proposed the view).
    pub stats: CommitStats,
    /// Committed commands per second (for throughput timelines, Fig 15).
    pub throughput: RateCounter,
    /// Times at which this replica switched trees.
    pub reconfig_times: Vec<SimTime>,
}

impl KauriNode {
    /// Create a replica. All replicas of one run receive the same initial
    /// `tree`; each holds its own (identically seeded) policy.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        system: SystemConfig,
        tree: Tree,
        policy: Box<dyn TreePolicy>,
        batch_size: usize,
        pipeline: usize,
        branch: usize,
        reconfig_delay: Duration,
    ) -> Self {
        KauriNode {
            id,
            system,
            tree,
            epoch: 0,
            policy,
            batch: BlockSource::saturated(batch_size),
            pipeline: pipeline.max(1),
            branch,
            reconfig_delay,
            views: BTreeMap::new(),
            next_view: 1,
            highest_view_seen: 0,
            reconfiguring: false,
            last_progress: SimTime::ZERO,
            aggregates: BTreeMap::new(),
            delays: Vec::new(),
            held: BTreeMap::new(),
            next_held: 0,
            traffic: None,
            stale_strikes: 0,
            last_strike_view: 0,
            stats: CommitStats::new(),
            throughput: RateCounter::new(Duration::from_secs(1)),
            reconfig_times: Vec::new(),
        }
    }

    /// Install scripted proposal-delay stages (the protocol-level attack).
    pub fn with_delays(mut self, delays: Vec<DelayStage>) -> Self {
        self.delays = delays;
        self
    }

    /// Drive proposals from an open-loop traffic queue instead of the
    /// saturated source.
    pub fn with_traffic(mut self, traffic: Option<SharedTrafficQueue>) -> Self {
        self.traffic = traffic;
        self
    }

    /// The tree currently in use.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// True while a scripted delay stage is active at `now`.
    fn attacking(&self, now: SimTime) -> bool {
        !misbehavior::hold_at(&self.delays, now).is_zero()
    }

    /// Send a payload down the tree, holding it first if a delay stage is
    /// active: the scripted root/intermediate withholds the payloads it is
    /// supposed to disseminate while its votes and aggregates (as a
    /// follower) flow normally — the protocol-level delay attack.
    fn send_down(&mut self, ctx: &mut Context<KauriMessage>, targets: Vec<usize>, msg: KauriMessage) {
        let hold = misbehavior::hold_at(&self.delays, ctx.now);
        if hold.is_zero() {
            ctx.multicast(&targets, msg);
            return;
        }
        let tag = self.next_held;
        self.next_held += 1;
        self.held.insert(tag, HeldPayload { targets, msg });
        ctx.set_timer(hold, TIMER_HELD_BASE + tag);
    }

    fn release_held(&mut self, ctx: &mut Context<KauriMessage>, tag: u64) {
        // Entries from a previous tree were cleared at the epoch change, so
        // whatever is still here is routed on the current tree.
        if let Some(held) = self.held.remove(&tag) {
            ctx.multicast(&held.targets, held.msg);
        }
    }

    fn is_root(&self) -> bool {
        self.tree.root == self.id
    }

    fn vote_threshold(&self) -> usize {
        self.policy.vote_threshold(&self.system).min(self.system.n)
    }

    fn outstanding(&self) -> usize {
        self.views.values().filter(|v| !v.committed).count()
    }

    fn progress_window(&self) -> Duration {
        self.policy.view_timeout() * 3
    }

    /// Arm the single recurring progress timer. Called once at start and
    /// re-armed whenever it fires; actual staleness is judged against
    /// `last_progress` so in-flight timers never cause spurious
    /// reconfigurations.
    fn arm_progress_timer(&mut self, ctx: &mut Context<KauriMessage>) {
        ctx.set_timer(self.progress_window(), TIMER_PROGRESS);
    }

    fn propose_next(&mut self, ctx: &mut Context<KauriMessage>) {
        if !self.is_root() || self.reconfiguring {
            return;
        }
        while self.outstanding() < self.pipeline {
            let (commands, batch_id) = if let Some(queue) = &self.traffic {
                match queue.try_batch(ctx.now) {
                    Some(batch) => {
                        let id = batch.id;
                        (batch.commands, Some(id))
                    }
                    None => {
                        // Nothing flushable yet: wake up when the queue's
                        // size or timeout condition can next fire (a stale
                        // timer at a replica that lost the root role is a
                        // harmless no-op — `propose_next` re-checks).
                        if let Some(at) = queue.next_ready_at(ctx.now) {
                            ctx.set_timer(at.since(ctx.now), TIMER_TRAFFIC_READY);
                        }
                        return;
                    }
                }
            } else {
                (self.batch.next_batch(), None)
            };
            let view = self.next_view;
            self.next_view += 1;
            let block = Block::new(Digest::ZERO, view, view, self.id, commands);
            let digest = block.digest();
            self.views.insert(
                view,
                ViewState {
                    proposal_ts: ctx.now,
                    commands: block.len(),
                    voters: [self.id].into_iter().collect(),
                    missing: BTreeSet::new(),
                    committed: false,
                    batch_id,
                },
            );
            let msg = KauriMessage::Proposal {
                view,
                digest,
                commands: block.len(),
                timestamp_us: ctx.now.as_micros(),
                epoch: self.epoch,
                tree: Arc::new(self.tree.clone()),
            };
            let children = self.tree.children_of(self.id);
            self.send_down(ctx, children, msg);
            ctx.set_timer(self.policy.view_timeout(), TIMER_VIEW_BASE + view);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Proposal message fields
    fn handle_proposal(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        view: u64,
        digest: Digest,
        commands: usize,
        timestamp_us: u64,
        epoch: u64,
        tree: Arc<Tree>,
    ) {
        if epoch < self.epoch {
            return;
        }
        if epoch > self.epoch {
            // The proposing root runs a newer configuration: adopt it (the
            // stand-in for reading the agreed configuration from the log).
            // Local policy state keeps its own sequence; it only matters if
            // this replica later initiates a reconfiguration itself.
            self.tree = (*tree).clone();
            self.epoch = epoch;
            self.aggregates.clear();
            self.held.clear();
            self.stale_strikes = 0;
            self.last_strike_view = 0;
            self.reconfiguring = false;
        }
        self.highest_view_seen = self.highest_view_seen.max(view);
        self.last_progress = ctx.now;

        // Root-delay detection: the proposal timestamp is the root's own
        // (honest) claim of when the view was created, so a proposal that is
        // already older than the view timeout on arrival means the payload
        // was withheld somewhere above us. The crash detector (the progress
        // timer) never sees this — delayed proposals still arrive, just
        // late. After STALE_STRIKE_LIMIT consecutive stale proposals the
        // replica declares the tree failed exactly as if the root had gone
        // silent. The stale proposal is still forwarded and voted first, so
        // the evidence reaches the leaves too. Staleness is attributed to
        // the root, mirroring the progress-staleness rule: a receiver
        // cannot tell *which* upstream hop held the payload without
        // trusting per-hop timestamps the attacker itself would supply.
        // When the root is the one delaying (the Fig 7 attack), every
        // replica therefore strikes out on the same view with the same
        // blame and lands on the same successor tree. When an overtly
        // delaying *intermediate* is the culprit, only its subtree strikes
        // and the blame still lands on the (innocent) root — the attacker
        // is rotated out of its internal position only by the policy's own
        // exclusion rules across reconfigurations (conformity bins make it
        // internal in at most one bin; Kauri-sa excludes all internals of a
        // failed tree). See ROADMAP for the per-hop attribution gap.
        let age = ctx.now.since(SimTime::from_micros(timestamp_us));
        if age > self.policy.view_timeout() {
            // One strike per withheld view: duplicates re-delivered through
            // a second parent must not fast-forward the limit (which is
            // deliberately sized so a delaying root's in-flight burst still
            // commits — see STALE_STRIKE_LIMIT).
            if view > self.last_strike_view {
                self.last_strike_view = view;
                self.stale_strikes += 1;
            }
        } else {
            self.stale_strikes = 0;
        }

        let children = self.tree.children_of(self.id);
        if children.is_empty() {
            // Leaf: vote to parent.
            if let Some(parent) = self.tree.parent(self.id) {
                ctx.send(parent, KauriMessage::Vote { view, voter: self.id });
            }
            self.maybe_declare_stale_failure(ctx);
            return;
        }
        // Intermediate: forward downwards and start aggregating — once per
        // view. Duplicate deliveries (possible while replicas still disagree
        // on the tree) must not re-forward, or a transient routing cycle
        // amplifies one proposal into an unbounded message storm.
        let agg = self.aggregates.entry(view).or_default();
        if agg.votes.contains(&self.id) {
            return;
        }
        let msg = KauriMessage::Proposal {
            view,
            digest,
            commands,
            timestamp_us,
            epoch,
            tree,
        };
        // A scripted intermediate holds its forwarded payloads too.
        self.send_down(ctx, children, msg);
        let agg = self.aggregates.entry(view).or_default();
        agg.digest = digest;
        agg.votes.insert(self.id);
        ctx.set_timer(self.policy.child_timeout(), TIMER_CHILD_BASE + view);
        self.maybe_forward_aggregate(ctx, view, false);
        self.maybe_declare_stale_failure(ctx);
    }

    /// Declare the tree failed after repeated stale proposals (root-delay
    /// detection). Called after the stale proposal has been processed, so
    /// the evidence has already travelled down the tree.
    fn maybe_declare_stale_failure(&mut self, ctx: &mut Context<KauriMessage>) {
        if self.stale_strikes >= STALE_STRIKE_LIMIT && !self.is_root() && !self.reconfiguring {
            self.stale_strikes = 0;
            self.reconfigure(ctx, &[self.tree.root]);
        }
    }

    fn maybe_forward_aggregate(&mut self, ctx: &mut Context<KauriMessage>, view: u64, timeout: bool) {
        let children: BTreeSet<usize> = self.tree.children_of(self.id).into_iter().collect();
        let Some(agg) = self.aggregates.get_mut(&view) else {
            return;
        };
        if agg.forwarded {
            return;
        }
        let have_all = children.iter().all(|c| agg.votes.contains(c));
        if !have_all && !timeout {
            return;
        }
        agg.forwarded = true;
        let voters: Vec<usize> = agg.votes.iter().copied().collect();
        let missing: Vec<usize> = children
            .iter()
            .copied()
            .filter(|c| !agg.votes.contains(c))
            .collect();
        if let Some(parent) = self.tree.parent(self.id) {
            ctx.send(
                parent,
                KauriMessage::Aggregate {
                    view,
                    voters,
                    missing,
                    aggregator: self.id,
                },
            );
        }
    }

    fn handle_vote(&mut self, ctx: &mut Context<KauriMessage>, view: u64, voter: usize) {
        if self.is_root() {
            // Star topology (or direct children of the root): count directly.
            self.add_root_votes(ctx, view, &[voter], &[]);
            return;
        }
        let agg = self.aggregates.entry(view).or_default();
        agg.votes.insert(voter);
        self.maybe_forward_aggregate(ctx, view, false);
    }

    fn handle_aggregate(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        view: u64,
        voters: Vec<usize>,
        missing: Vec<usize>,
        aggregator: usize,
    ) {
        if !self.is_root() {
            return;
        }
        let mut all = voters;
        all.push(aggregator);
        self.add_root_votes(ctx, view, &all, &missing);
    }

    fn add_root_votes(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        view: u64,
        voters: &[usize],
        missing: &[usize],
    ) {
        let threshold = self.vote_threshold();
        let Some(state) = self.views.get_mut(&view) else {
            return;
        };
        state.voters.extend(voters.iter().copied());
        state.missing.extend(missing.iter().copied());
        for v in voters {
            state.missing.remove(v);
        }
        if !state.committed && state.voters.len() >= threshold {
            state.committed = true;
            let (ts, commands, batch_id) = (state.proposal_ts, state.commands, state.batch_id);
            self.stats.record_commit(ts, ctx.now, commands);
            self.throughput.record(ctx.now, commands as u64);
            // The proposing root reports the committed batch back to the
            // traffic queue for end-to-end accounting. Batches in views a
            // reconfiguration discards are never reported: they were lost,
            // which is exactly what goodput should see.
            if let (Some(queue), Some(id)) = (&self.traffic, batch_id) {
                queue.commit_batch(id, ctx.now);
            }
            self.propose_next(ctx);
        }
    }

    fn handle_view_timeout(&mut self, ctx: &mut Context<KauriMessage>, view: u64) {
        if !self.is_root() || self.reconfiguring {
            return;
        }
        // A scripted attacker ignores its own view timeouts: a Byzantine
        // root wants to *keep* the role it is abusing, and letting it
        // honestly declare its own tree failed would fork the shared policy
        // sequence (its `missing` set differs from the honest replicas',
        // which all blame the root). Recovery comes from the honest side —
        // the staleness strikes in `handle_proposal`.
        if self.attacking(ctx.now) {
            return;
        }
        let failed = self
            .views
            .get(&view)
            .map(|s| !s.committed)
            .unwrap_or(false);
        if failed {
            let missing: Vec<usize> = self
                .views
                .get(&view)
                .map(|s| {
                    (0..self.system.n)
                        .filter(|r| !s.voters.contains(r))
                        .collect()
                })
                .unwrap_or_default();
            self.reconfigure(ctx, &missing);
        }
    }

    fn reconfigure(&mut self, ctx: &mut Context<KauriMessage>, missing: &[usize]) {
        self.policy.on_view_failure(missing);
        self.tree = self.policy.next_tree(self.system.n, self.branch);
        self.epoch += 1;
        self.reconfig_times.push(ctx.now);
        self.aggregates.clear();
        self.held.clear();
        self.stale_strikes = 0;
        self.last_strike_view = 0;
        // Drop uncommitted views; fresh batches will be proposed on the new tree.
        self.views.retain(|_, s| s.committed);
        // The new root is legitimately silent while it runs the
        // reconfiguration search (reconfig_delay): start the staleness clock
        // only once it could have proposed, or every replica walks off to
        // the next tree before any root ever speaks — a reconfiguration
        // treadmill that blanks throughput for tens of seconds.
        self.last_progress = ctx.now + self.reconfig_delay;
        if self.tree.root == self.id {
            self.reconfiguring = true;
            ctx.set_timer(self.reconfig_delay, TIMER_RECONFIG_DONE);
        } else {
            self.reconfiguring = false;
        }
    }
}

impl Node for KauriNode {
    type Msg = KauriMessage;

    fn on_start(&mut self, ctx: &mut Context<KauriMessage>) {
        self.arm_progress_timer(ctx);
        if self.is_root() {
            self.propose_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<KauriMessage>, _from: NodeId, msg: KauriMessage) {
        match msg {
            KauriMessage::Proposal {
                view,
                digest,
                commands,
                timestamp_us,
                epoch,
                tree,
            } => self.handle_proposal(ctx, view, digest, commands, timestamp_us, epoch, tree),
            KauriMessage::Vote { view, voter } => self.handle_vote(ctx, view, voter),
            KauriMessage::Aggregate {
                view,
                voters,
                missing,
                aggregator,
            } => self.handle_aggregate(ctx, view, voters, missing, aggregator),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<KauriMessage>, _timer: TimerId, tag: u64) {
        match tag {
            TIMER_PROGRESS => {
                // No proposal seen for a whole progress window: if we are not
                // the (live) root, assume the tree failed and move on.
                let stale = ctx.now.since(self.last_progress) >= self.progress_window();
                if stale && !self.is_root() {
                    self.reconfigure(ctx, &[self.tree.root]);
                }
                self.arm_progress_timer(ctx);
            }
            TIMER_RECONFIG_DONE => {
                self.reconfiguring = false;
                self.next_view = self.highest_view_seen.max(self.next_view) + 1;
                self.propose_next(ctx);
            }
            TIMER_TRAFFIC_READY => self.propose_next(ctx),
            t if t >= TIMER_HELD_BASE => self.release_held(ctx, t - TIMER_HELD_BASE),
            t if t >= TIMER_VIEW_BASE => self.handle_view_timeout(ctx, t - TIMER_VIEW_BASE),
            t if t >= TIMER_CHILD_BASE => {
                self.maybe_forward_aggregate(ctx, t - TIMER_CHILD_BASE, true)
            }
            _ => {}
        }
    }
}

/// Configuration of a Kauri experiment run.
pub struct KauriConfig {
    /// System size and fault threshold.
    pub system: SystemConfig,
    /// Tree branch factor (the paper uses `b = (√(4n−3) − 1)/2`).
    pub branch: usize,
    /// Number of concurrently pipelined views (the paper uses 3; 1 disables
    /// pipelining).
    pub pipeline: usize,
    /// Commands per block.
    pub batch_size: usize,
    /// Virtual run duration.
    pub run_for: Duration,
    /// Delay between a tree failure and the new root resuming proposals
    /// (models the configuration search, e.g. 1 s of simulated annealing).
    pub reconfig_delay: Duration,
    /// Scripted protocol-level misbehavior (proposal-delay attacks).
    pub misbehavior: MisbehaviorPlan,
    /// Open-loop traffic source shared by every (rotating) root; `None`
    /// keeps the saturated paper workload.
    pub traffic: Option<SharedTrafficQueue>,
}

impl KauriConfig {
    /// The paper's defaults for `n` replicas.
    pub fn new(n: usize) -> Self {
        let system = SystemConfig::new(n);
        KauriConfig {
            branch: system.tree_branch_factor(),
            system,
            pipeline: 3,
            batch_size: 1000,
            run_for: Duration::from_secs(120),
            reconfig_delay: Duration::from_secs(1),
            misbehavior: MisbehaviorPlan::none(),
            traffic: None,
        }
    }

    /// Disable pipelining.
    pub fn without_pipelining(mut self) -> Self {
        self.pipeline = 1;
        self
    }
}

/// Result of a Kauri run.
pub struct KauriReport {
    /// Throughput / latency summary aggregated over all roots that served.
    pub summary: RunSummary,
    /// Per-second committed commands across the whole system.
    pub throughput_timeline: Vec<u64>,
    /// Per-commit `(time s, latency ms)` timeline merged across every root
    /// that served, in commit order — the Fig 7-style latency timeline.
    pub latency_timeline: Vec<(f64, f64)>,
    /// Number of tree reconfigurations observed (max over replicas).
    pub reconfigurations: usize,
}

/// Run Kauri (or any [`TreePolicy`]-driven variant) over a latency model.
/// `policy_factory(id)` must produce identically-seeded policies so replicas
/// agree on successor trees.
pub fn run_kauri(
    config: &KauriConfig,
    latency: Box<dyn LatencyModel>,
    faults: FaultPlan,
    mut policy_factory: impl FnMut(usize) -> Box<dyn TreePolicy>,
) -> KauriReport {
    let n = config.system.n;
    // All replicas start from the same initial tree: the first tree of a
    // fresh policy instance.
    let initial_tree = policy_factory(usize::MAX).next_tree(n, config.branch);
    let nodes: Vec<KauriNode> = (0..n)
        .map(|id| {
            let mut policy = policy_factory(id);
            // Consume the initial tree so the policy's next call yields tree #2.
            let tree = policy.next_tree(n, config.branch);
            debug_assert_eq!(tree.root, initial_tree.root);
            KauriNode::new(
                id,
                config.system,
                tree,
                policy,
                config.batch_size,
                config.pipeline,
                config.branch,
                config.reconfig_delay,
            )
            .with_delays(config.misbehavior.stages_for(id))
            .with_traffic(config.traffic.clone())
        })
        .collect();

    let mut sim = Simulation::new(nodes, latency)
        .with_faults(faults)
        .with_config(SimulationConfig {
            horizon: SimTime::ZERO + config.run_for,
            max_events: 500_000_000,
        });
    sim.run();

    // Aggregate statistics across all replicas (each commit is recorded only
    // at the root that proposed it, so summing does not double-count).
    let run_secs = config.run_for.as_micros() / 1_000_000;
    let mut total_commands = 0u64;
    let mut total_blocks = 0u64;
    let mut latency_weighted = 0.0;
    let mut timeline = vec![0u64; run_secs as usize + 1];
    let mut latency_timeline = Vec::new();
    let mut reconfigurations = 0;
    for id in 0..n {
        let node = sim.node_mut(id);
        let s = node.stats.summary(run_secs);
        total_commands += s.committed_commands;
        total_blocks += s.committed_blocks;
        latency_weighted += s.mean_latency_ms * s.committed_blocks as f64;
        latency_timeline.extend_from_slice(node.stats.latency_timeline().points());
        for (i, &c) in node.throughput.buckets().iter().enumerate() {
            if i < timeline.len() {
                timeline[i] += c;
            }
        }
        reconfigurations = reconfigurations.max(node.reconfig_times.len());
    }
    // Each commit is recorded once (at the root that proposed the view);
    // merge the per-root timelines into global commit order. The sort key is
    // total because commit times and latencies are finite by construction.
    latency_timeline
        .sort_by(|a, b| a.partial_cmp(b).expect("finite timeline points"));
    let mean_latency_ms = if total_blocks > 0 {
        latency_weighted / total_blocks as f64
    } else {
        0.0
    };
    // Span-based throughput over the merged commit timeline (first → last
    // commit across all roots), falling back to the nominal horizon for
    // degenerate spans — mirroring `CommitStats::mean_throughput`.
    let span_secs = match (latency_timeline.first(), latency_timeline.last()) {
        (Some(&(first, _)), Some(&(last, _))) if last > first => last - first,
        _ => run_secs as f64,
    };
    let summary = RunSummary {
        throughput_ops: total_commands as f64 / run_secs as f64,
        sustained_ops: total_commands as f64 / span_secs,
        mean_latency_ms,
        p50_latency_ms: mean_latency_ms,
        p99_latency_ms: mean_latency_ms,
        latency_ci95_ms: 0.0,
        committed_blocks: total_blocks,
        committed_commands: total_commands,
    };
    KauriReport {
        summary,
        throughput_timeline: timeline,
        latency_timeline,
        reconfigurations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::KauriBinsPolicy;
    use netsim::UniformLatency;

    fn uniform(n: usize, ms: u64) -> Box<dyn LatencyModel> {
        Box::new(UniformLatency::new(n, Duration::from_millis(ms)))
    }

    fn small_config(n: usize, secs: u64) -> KauriConfig {
        let mut c = KauriConfig::new(n);
        c.run_for = Duration::from_secs(secs);
        c
    }

    #[test]
    fn kauri_commits_blocks_on_a_tree() {
        let cfg = small_config(13, 20);
        let report = run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        assert!(report.summary.committed_blocks > 50, "{}", report.summary.committed_blocks);
        assert!(report.summary.throughput_ops > 1_000.0);
        assert_eq!(report.reconfigurations, 0, "no faults, no reconfiguration");
        // Tree latency: proposal down two hops, votes up two hops ≈ 4 one-way
        // delays = 80 ms.
        assert!(report.summary.mean_latency_ms >= 75.0);
    }

    #[test]
    fn pipelining_improves_throughput() {
        let base = small_config(13, 20);
        let no_pipe = {
            let cfg = small_config(13, 20).without_pipelining();
            run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
                Box::new(KauriBinsPolicy::new(13, 3, 42))
            })
        };
        let piped = run_kauri(&base, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        assert!(
            piped.summary.throughput_ops > no_pipe.summary.throughput_ops * 1.5,
            "pipelined {} vs unpipelined {}",
            piped.summary.throughput_ops,
            no_pipe.summary.throughput_ops
        );
    }

    #[test]
    fn latency_timeline_is_nonempty_monotone_and_consistent() {
        let cfg = small_config(13, 20);
        let report = run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        let tl = &report.latency_timeline;
        assert_eq!(tl.len() as u64, report.summary.committed_blocks);
        assert!(tl.windows(2).all(|w| w[0].0 <= w[1].0), "commit times must be monotone");
        // On a quiet run the timeline's mean matches the aggregated mean.
        let mean = tl.iter().map(|&(_, v)| v).sum::<f64>() / tl.len() as f64;
        assert!(
            (mean - report.summary.mean_latency_ms).abs() < 1.0,
            "timeline mean {mean:.1} vs summary {:.1}",
            report.summary.mean_latency_ms
        );
    }

    #[test]
    fn delaying_root_is_detected_and_replaced() {
        let n = 13;
        let mut cfg = small_config(n, 60);
        let probe_tree = KauriBinsPolicy::new(n, 3, 9).next_tree(n, 3);
        // The initial root withholds every dissemination by more than the
        // view timeout, from t = 10 s on, and never stops on its own.
        cfg.misbehavior.delay_proposals_during(
            probe_tree.root,
            Duration::from_millis(2_500),
            SimTime::from_secs(10),
            SimTime::MAX,
        );
        let report = run_kauri(&cfg, uniform(n, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(n, 3, 9))
        });
        assert!(
            report.reconfigurations >= 1,
            "stale proposals must fail the tree"
        );
        let window = |from: f64, to: f64| -> Vec<f64> {
            report
                .latency_timeline
                .iter()
                .filter(|&&(t, _)| t >= from && t < to)
                .map(|&(_, v)| v)
                .collect()
        };
        // The withheld views that did commit show the hold as a latency spike…
        let spike = window(10.0, 20.0).into_iter().fold(0.0f64, f64::max);
        assert!(
            spike > 2_000.0,
            "withheld commits should carry the hold, max was {spike:.1}ms"
        );
        // …and the tail of the run is back to clean tree latency.
        let late = window(40.0, 60.0);
        assert!(!late.is_empty(), "no commits after recovery");
        let late_mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            late_mean < 500.0,
            "latency should recover after the root is replaced, got {late_mean:.1}ms"
        );
    }

    #[test]
    fn delaying_intermediate_holds_forwarded_payloads() {
        // n = 7, branch 2: the tree is root + 2 intermediates + 4 leaves, so
        // the quorum of 5 cannot form without the delayed subtree and the
        // hold is visible in commit latency.
        let n = 7;
        let run = |attack: bool| {
            let mut cfg = small_config(n, 20);
            cfg.pipeline = 1;
            let b = cfg.branch;
            let probe_tree = KauriBinsPolicy::new(n, b, 7).next_tree(n, b);
            let victim = probe_tree.intermediates[0];
            if attack {
                // A short, sub-timeout hold: latency inflates but nothing
                // reconfigures (the hold stays under the view timeout, like
                // the paper's covert performance adversary).
                cfg.misbehavior.delay_proposals_during(
                    victim,
                    Duration::from_millis(300),
                    SimTime::from_secs(5),
                    SimTime::from_secs(15),
                );
            }
            run_kauri(&cfg, uniform(n, 20), FaultPlan::none(), move |_| {
                Box::new(KauriBinsPolicy::new(n, b, 7))
            })
        };
        let clean = run(false);
        let attacked = run(true);
        assert_eq!(attacked.reconfigurations, 0, "sub-timeout holds stay covert");
        let mean_in =
            |r: &KauriReport, from: f64, to: f64| rsm::timeline_mean(&r.latency_timeline, from, to);
        let clean_mid = mean_in(&clean, 5.0, 15.0);
        let attacked_mid = mean_in(&attacked, 5.0, 15.0);
        assert!(
            attacked_mid > clean_mid + 200.0,
            "held forwards should inflate commit latency: clean={clean_mid:.1}ms attacked={attacked_mid:.1}ms"
        );
        // Outside the stage the two runs are equally fast.
        let attacked_late = mean_in(&attacked, 16.0, 20.0);
        assert!(
            attacked_late < clean_mid + 50.0,
            "latency should return to clean once the stage closes: {attacked_late:.1}ms"
        );
    }

    #[test]
    fn open_loop_traffic_commits_offered_load_below_saturation() {
        let spec = rsm::TrafficSpec::poisson(300.0)
            .with_clients(4)
            .with_batching(60, Duration::from_millis(40));
        let queue = traffic::SharedTrafficQueue::generate(
            &spec,
            &[1.0, 3.0, 6.0, 9.0],
            21,
            SimTime::from_secs(20),
        );
        let mut cfg = small_config(13, 22);
        cfg.traffic = Some(queue.clone());
        let report = run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        let tr = queue.report(20);
        assert!(tr.offered > 4_000, "~6000 arrivals, got {}", tr.offered);
        assert_eq!(tr.rejected, 0);
        assert!(
            tr.committed >= tr.offered - 400,
            "committed {} of {}",
            tr.committed,
            tr.offered
        );
        // Demand-sized blocks, not saturated 1000-command ones.
        let per_block =
            report.summary.committed_commands as f64 / report.summary.committed_blocks as f64;
        assert!(per_block < 100.0, "mean block size {per_block}");
    }

    #[test]
    fn traffic_queue_survives_root_crash_and_reconfiguration() {
        // The root crashes mid-run; after the progress timer moves everyone
        // to the next tree, the *new* root keeps draining the shared queue.
        let n = 13;
        let probe_tree = KauriBinsPolicy::new(n, 3, 9).next_tree(n, 3);
        let spec = rsm::TrafficSpec::poisson(300.0)
            .with_clients(4)
            .with_batching(60, Duration::from_millis(40));
        let queue = traffic::SharedTrafficQueue::generate(
            &spec,
            &[1.0; 4],
            5,
            SimTime::from_secs(40),
        );
        let mut cfg = small_config(n, 40);
        cfg.traffic = Some(queue.clone());
        let mut faults = FaultPlan::none();
        faults.crash(probe_tree.root, SimTime::from_secs(10));
        let report = run_kauri(&cfg, uniform(n, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(n, 3, 9))
        });
        assert!(report.reconfigurations >= 1);
        let tr = queue.report(40);
        // The blackout around the crash loses some batches, but the tail of
        // the run commits at the offered rate again.
        let late: f64 = tr
            .goodput_timeline
            .iter()
            .filter(|&&(t, _)| t >= 25.0)
            .map(|&(_, v)| v)
            .sum::<f64>()
            / 15.0;
        assert!(
            late > 150.0,
            "post-recovery goodput should approach the 300/s offered rate, got {late:.0}/s"
        );
    }

    #[test]
    fn crashed_intermediate_triggers_reconfiguration_and_recovery() {
        let cfg = small_config(13, 30);
        // The initial conformity tree for seed 7 has some intermediate; crash
        // one of its internal nodes shortly after start.
        let probe_tree = KauriBinsPolicy::new(13, 3, 7).next_tree(13, 3);
        let victim = probe_tree.intermediates[0];
        let mut faults = FaultPlan::none();
        faults.crash(victim, SimTime::from_secs(5));
        let report = run_kauri(&cfg, uniform(13, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 7))
        });
        // The system keeps committing after the crash…
        assert!(report.summary.committed_blocks > 20);
        // …and throughput exists in the second half of the run.
        let late: u64 = report.throughput_timeline[20..].iter().sum();
        assert!(late > 0, "no progress after the crash: {:?}", report.throughput_timeline);
    }

    #[test]
    fn root_crash_is_survived_via_progress_timer() {
        let cfg = small_config(13, 40);
        let probe_tree = KauriBinsPolicy::new(13, 3, 9).next_tree(13, 3);
        let root = probe_tree.root;
        let mut faults = FaultPlan::none();
        faults.crash(root, SimTime::from_secs(10));
        let report = run_kauri(&cfg, uniform(13, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 9))
        });
        assert!(report.reconfigurations >= 1, "replicas must move to a new tree");
        let late: u64 = report.throughput_timeline[25..].iter().sum();
        assert!(late > 0, "no progress after root crash: {:?}", report.throughput_timeline);
    }
}
