//! The Kauri replica (the simulation harness lives in `lab::harness::kauri`).
//!
//! Message flow per view: the root disseminates a proposal to its
//! intermediate nodes, which forward it to their leaves; leaves vote to their
//! parent, intermediates aggregate the votes of their subtree (adding an
//! explicit "missing" entry for children that did not answer before the child
//! timeout, per OptiTree's aggregation rule) and forward the aggregate to the
//! root; the root commits the view once it has collected the vote threshold.
//! The root pipelines several views concurrently (§6.1.1).
//!
//! Role configuration as log content: every replica carries a
//! [`ConfigLog<Tree>`] — the replicated configuration log — and *adopts* a
//! tree only once its [`ConfigCommand`] commits. The proposing root commits
//! its epoch's tree command with the first view that gathers the vote
//! threshold and ships the committed command prefix inside every proposal;
//! receivers apply new committed entries in order, so all replicas converge
//! on the same epoch → tree history. A proposal's own `tree` field is pure
//! routing metadata for that view (the epoch's *proposed* configuration):
//! replicas forward and vote on it without mutating their durable state, so
//! the old embed-a-higher-epoch-tree adoption shortcut is gone.
//!
//! Fault handling: every replica re-arms a progress timer whenever it sees a
//! new proposal. If the timer fires, the replica advances to the next tree of
//! its [`TreePolicy`] (all replicas share the policy seed, so they compute
//! the same successor tree) and, if it is the new root, resumes proposing
//! after the configured reconfiguration delay. The successor tree is
//! *pending* until its command commits through the new tree itself.
//!
//! Scripted misbehavior: a replica with an active [`rsm::DelayStage`] holds
//! every payload it disseminates down the tree (its proposals as root, its
//! forwarded proposals as intermediate) while keeping proposal timestamps
//! honest. Replicas detect the withholding from those timestamps — a
//! proposal already older than the view timeout on arrival is *stale*, and
//! repeated stale proposals fail the tree exactly like silence does. Blame
//! is no longer pinned on the root: the striking receiver emits a reciprocal
//! suspicion *pair* `(receiver, upstream)` (§6.4) that travels to the
//! proposer and commits through the configuration log, where every replica's
//! policy judges the identical committed evidence. Conformity binning (and
//! OptiTree's pair-driven candidate exclusion) then rotates the member that
//! keeps reappearing across pairs — the actual delayer — out of internal
//! positions, while an innocent root under an overtly-delaying intermediate
//! is exonerated.

use crate::policy::TreePolicy;
use crate::tree::Tree;
use configlog::{ConfigCommand, ConfigLog, PhaseFilter, SuspicionPair};
use crypto::{Digest, Hashable};
use rsm::{
    misbehavior, Block, BlockSource, CommitStats, DelayStage, MisbehaviorPlan, SystemConfig,
};
use runtime::{Context, Duration, Node, NodeId, RateCounter, SimTime, TimerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use telemetry::{Stage, Telemetry};
use traffic::SharedTrafficQueue;

const TIMER_PROGRESS: u64 = 1;
const TIMER_RECONFIG_DONE: u64 = 2;
/// Wake-up when the traffic queue's next batch becomes flushable.
const TIMER_TRAFFIC_READY: u64 = 3;
/// Child-timeout timers encode the view in the tag as `TIMER_CHILD_BASE + view`.
const TIMER_CHILD_BASE: u64 = 1_000;
/// View-timeout timers encode the view as `TIMER_VIEW_BASE + view`.
const TIMER_VIEW_BASE: u64 = 1_000_000_000;
/// Held-payload timers (scripted delay attack) encode a release sequence.
const TIMER_HELD_BASE: u64 = 2_000_000_000;
/// Stale proposals tolerated before the tree is declared failed. Deliberately
/// above the default pipeline depth (3): a delaying root's in-flight
/// pipelined views arrive as one burst of stale proposals, and abandoning the
/// tree mid-burst would clear the aggregation state their votes still need —
/// the withheld views would never commit and the attack would look like a
/// silent crash instead of the latency spike the paper measures (Fig 7).
const STALE_STRIKE_LIMIT: u32 = 4;
/// Past tree epochs retained in the configuration log.
const TREE_EPOCH_HISTORY: usize = 64;

/// A configuration-log command over trees.
pub type TreeCommand = ConfigCommand<Tree>;

/// Messages exchanged by Kauri replicas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum KauriMessage {
    /// A proposal travelling down the tree (root → intermediates → leaves).
    Proposal {
        /// The view being disseminated.
        view: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// Number of commands in the block.
        commands: usize,
        /// Root's proposal timestamp in µs.
        timestamp_us: u64,
        /// Tree epoch the proposal belongs to.
        epoch: u64,
        /// The tree the proposal travels on — the epoch's *proposed*
        /// configuration, used purely to route this view (shared, so per-hop
        /// clones are pointer-sized). Receivers never adopt it from here;
        /// adoption flows exclusively from `committed`.
        tree: Arc<Tree>,
        /// The proposer's committed configuration-log prefix. Replicas apply
        /// entries they have not seen, in order — this is how a tree
        /// configuration (and the suspicion-pair evidence) reaches every
        /// replica as *committed log content*.
        committed: Arc<Vec<(u64, TreeCommand)>>,
    },
    /// A leaf's vote, sent to its parent.
    Vote {
        /// The voted view.
        view: u64,
        /// The voting replica.
        voter: usize,
    },
    /// An intermediate node's aggregate, sent to the root.
    Aggregate {
        /// The aggregated view.
        view: u64,
        /// Replicas whose votes are included (the aggregator and its children).
        voters: Vec<usize>,
        /// Children that did not vote before the child timeout.
        missing: Vec<usize>,
        /// The aggregating replica.
        aggregator: usize,
    },
    /// Suspicion-pair evidence routed to the current proposer for inclusion
    /// in the log (the ordered channel misbehavior evidence flows through).
    Evidence {
        /// The pair commands to commit.
        cmds: Vec<TreeCommand>,
    },
    /// The proposer's committed prefix, broadcast whenever it grows: the
    /// commit notification that lets every replica apply newly committed
    /// configuration entries (and act on them — e.g. a pair-triggered
    /// reconfiguration) without waiting for the next proposal to route by.
    Committed {
        /// The full committed configuration-log prefix.
        prefix: Arc<Vec<(u64, TreeCommand)>>,
    },
}

/// Root-side state of one in-flight view.
#[derive(Debug, Clone)]
struct ViewState {
    proposal_ts: SimTime,
    commands: usize,
    voters: BTreeSet<usize>,
    missing: BTreeSet<usize>,
    committed: bool,
    /// Traffic batch carried by the view (proposer side), echoed to the
    /// queue on commit for end-to-end accounting.
    batch_id: Option<u64>,
    /// Configuration commands (pair evidence) riding this view; appended to
    /// the committed log when the view commits.
    cmds: Vec<TreeCommand>,
}

/// Intermediate-side state of one view.
#[derive(Debug, Clone, Default)]
struct AggState {
    votes: BTreeSet<usize>,
    forwarded: bool,
    digest: Digest,
    /// The tree the view's proposal routed on (aggregates travel back up the
    /// same tree, even while the replica's durable tree differs).
    tree: Option<Arc<Tree>>,
}

/// A down-tree payload held back by an active delay stage. `held` is cleared
/// eagerly on every epoch change (reconfiguration and tree adoption), so a
/// payload that survives until its release timer is always routed on the
/// replica's current tree.
#[derive(Debug, Clone)]
struct HeldPayload {
    targets: Vec<usize>,
    msg: KauriMessage,
}

/// One Kauri replica.
pub struct KauriNode {
    id: usize,
    system: SystemConfig,
    /// Operating tree: what this replica routes and detects on. Equals the
    /// adopted tree except in the transition window after a local failure
    /// detection, when it is the *pending* successor awaiting commitment.
    tree: Tree,
    /// Operating epoch (pending until its command commits).
    epoch: u64,
    /// The replicated configuration log: committed, adopted state.
    config: ConfigLog<Tree>,
    policy: Box<dyn TreePolicy>,
    batch: BlockSource,
    pipeline: usize,
    branch: usize,
    reconfig_delay: Duration,

    // Root state.
    views: BTreeMap<u64, ViewState>,
    next_view: u64,
    highest_view_seen: u64,
    reconfiguring: bool,
    last_progress: SimTime,
    /// Serialized committed prefix shipped in proposals; rebuilt lazily when
    /// the log grows.
    committed_wire: Arc<Vec<(u64, TreeCommand)>>,
    /// Evidence commands awaiting inclusion in the next proposed view.
    pending_cmds: Vec<TreeCommand>,

    // Evidence state (all replicas).
    /// Own pairs not yet observed committed; re-sent to the operating root
    /// after every reconfiguration or adoption.
    outbox: Vec<SuspicionPair>,
    /// Pair keys already applied from the committed log (dedup across
    /// proposer changes, which may renumber the wire prefix).
    seen_pairs: BTreeSet<(usize, usize, u64, bool)>,
    /// (accuser, round) pairs this replica already reciprocated.
    reciprocated: BTreeSet<(usize, u64)>,
    /// Rolling 48-bit fingerprint over the adoption history (epoch + tree
    /// per committed adoption) — the agreement checkpoint this replica
    /// publishes for the online auditor.
    config_chain: u64,
    /// Every `(epoch, chain head)` published, oldest first — the exact
    /// adoption history the end-of-run auditor compares across replicas.
    config_checkpoints: Vec<(u64, u64)>,
    /// Fast path: the last wire prefix fully applied (pointer identity).
    last_wire: Option<Arc<Vec<(u64, TreeCommand)>>>,
    /// Causal filter over committed pairs: a pair raised directly under the
    /// root explains — and filters — the deeper echoes the same withheld
    /// payload caused, so only the round's root-most evidence seen so far
    /// can trigger a reconfiguration (same first-committed-wins semantics
    /// as the suspicion monitor's filter). Reset at every epoch change:
    /// round numbers are only comparable within one epoch, since a new
    /// proposer may reuse view numbers.
    pair_filter: PhaseFilter,

    // Intermediate state.
    aggregates: BTreeMap<u64, AggState>,

    // Scripted delay attack: while a stage is active this replica holds
    // every payload it disseminates down the tree (proposals as root,
    // forwarded proposals as intermediate) by the stage's delay.
    delays: Vec<DelayStage>,
    held: BTreeMap<u64, HeldPayload>,
    next_held: u64,
    /// Open-loop traffic source (`None` = the saturated paper workload).
    /// Shared by every replica: the queue logically follows whichever
    /// replica is the current root.
    traffic: Option<SharedTrafficQueue>,
    /// Consecutive proposals that arrived already older than the view
    /// timeout — the withheld-payload detector (see `handle_proposal`).
    stale_strikes: u32,
    /// Highest view that contributed a stale strike: duplicate deliveries of
    /// the same withheld view (possible while divergent trees re-converge)
    /// must not double-count as "consecutive" strikes.
    last_strike_view: u64,
    /// Upstream hop of the latest stale proposal (the pair's accused) and
    /// the receiver's depth at observation (the pair's causal-filter phase).
    last_stale_upstream: Option<(usize, u32)>,

    /// Telemetry handle (disabled by default; see [`KauriNode::with_telemetry`]).
    telemetry: Telemetry,

    /// Commit statistics (recorded at the root that proposed the view).
    pub stats: CommitStats,
    /// Committed commands per second (for throughput timelines, Fig 15).
    pub throughput: RateCounter,
    /// Times at which this replica switched trees.
    pub reconfig_times: Vec<SimTime>,
}

impl KauriNode {
    /// Create a replica. All replicas of one run receive the same initial
    /// `tree`; each holds its own (identically seeded) policy.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        system: SystemConfig,
        tree: Tree,
        policy: Box<dyn TreePolicy>,
        batch_size: usize,
        pipeline: usize,
        branch: usize,
        reconfig_delay: Duration,
    ) -> Self {
        KauriNode {
            id,
            system,
            config: ConfigLog::new(tree.clone(), TREE_EPOCH_HISTORY),
            tree,
            epoch: 0,
            policy,
            batch: BlockSource::saturated(batch_size),
            pipeline: pipeline.max(1),
            branch,
            reconfig_delay,
            views: BTreeMap::new(),
            next_view: 1,
            highest_view_seen: 0,
            reconfiguring: false,
            last_progress: SimTime::ZERO,
            committed_wire: Arc::new(Vec::new()),
            pending_cmds: Vec::new(),
            outbox: Vec::new(),
            seen_pairs: BTreeSet::new(),
            reciprocated: BTreeSet::new(),
            config_chain: 0,
            config_checkpoints: Vec::new(),
            last_wire: None,
            pair_filter: PhaseFilter::new(),
            aggregates: BTreeMap::new(),
            delays: Vec::new(),
            held: BTreeMap::new(),
            next_held: 0,
            traffic: None,
            stale_strikes: 0,
            last_strike_view: 0,
            last_stale_upstream: None,
            telemetry: Telemetry::disabled(),
            stats: CommitStats::new(),
            throughput: RateCounter::new(Duration::from_secs(1)),
            reconfig_times: Vec::new(),
        }
    }

    /// Install scripted proposal-delay stages (the protocol-level attack).
    pub fn with_delays(mut self, delays: Vec<DelayStage>) -> Self {
        self.delays = delays;
        self
    }

    /// Drive proposals from an open-loop traffic queue instead of the
    /// saturated source.
    pub fn with_traffic(mut self, traffic: Option<SharedTrafficQueue>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Install a telemetry handle (propose/hop/vote/aggregate/commit spans
    /// plus per-replica commit metrics).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The tree currently in use (operating state).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The replicated configuration log (committed, adopted state).
    pub fn config_log(&self) -> &ConfigLog<Tree> {
        &self.config
    }

    /// The tree policy (for end-of-run diagnostics).
    pub fn policy(&self) -> &dyn TreePolicy {
        self.policy.as_ref()
    }

    /// True while a scripted delay stage is active at `now`.
    fn attacking(&self, now: SimTime) -> bool {
        !misbehavior::hold_at(&self.delays, now).is_zero()
    }

    /// Send a payload down the tree, holding it first if a delay stage is
    /// active: the scripted root/intermediate withholds the payloads it is
    /// supposed to disseminate while its votes and aggregates (as a
    /// follower) flow normally — the protocol-level delay attack.
    fn send_down(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        targets: Vec<usize>,
        msg: KauriMessage,
    ) {
        let hold = misbehavior::hold_at(&self.delays, ctx.now);
        if hold.is_zero() {
            ctx.multicast(&targets, msg);
            return;
        }
        // The dissemination hold shows up as its own span on the attacker's
        // track — the widening "dissemination-hold" bar of a Fig 7 trace.
        let view = match &msg {
            KauriMessage::Proposal { view, .. } => *view,
            _ => 0,
        };
        self.telemetry.span(
            Stage::Hold,
            self.id,
            view,
            ctx.now.as_micros(),
            hold.as_micros(),
            vec![],
        );
        let tag = self.next_held;
        self.next_held += 1;
        self.held.insert(tag, HeldPayload { targets, msg });
        ctx.set_timer(hold, TIMER_HELD_BASE + tag);
    }

    fn release_held(&mut self, ctx: &mut Context<KauriMessage>, tag: u64) {
        // Entries from a previous tree were cleared at the epoch change, so
        // whatever is still here is routed on the current tree.
        if let Some(held) = self.held.remove(&tag) {
            ctx.multicast(&held.targets, held.msg);
        }
    }

    fn is_root(&self) -> bool {
        self.tree.root == self.id
    }

    fn vote_threshold(&self) -> usize {
        self.policy.vote_threshold(&self.system).min(self.system.n)
    }

    fn outstanding(&self) -> usize {
        self.views.values().filter(|v| !v.committed).count()
    }

    fn progress_window(&self) -> Duration {
        self.policy.view_timeout() * 3
    }

    /// Arm the single recurring progress timer. Called once at start and
    /// re-armed whenever it fires; actual staleness is judged against
    /// `last_progress` so in-flight timers never cause spurious
    /// reconfigurations.
    fn arm_progress_timer(&mut self, ctx: &mut Context<KauriMessage>) {
        ctx.set_timer(self.progress_window(), TIMER_PROGRESS);
    }

    /// Rebuild the wire copy of the committed prefix if the log grew.
    fn refresh_wire(&mut self) {
        if self.committed_wire.len() as u64 != self.config.len() {
            self.committed_wire = Arc::new(
                self.config
                    .commands_from(0)
                    .map(|(seq, cmd)| (seq, cmd.clone()))
                    .collect(),
            );
        }
    }

    /// Apply one committed configuration command to the replicated log and
    /// the policy. Content-addressed dedup (epoch monotonicity for configs,
    /// pair keys for evidence) makes redeliveries — and prefixes renumbered
    /// by a proposer change — harmless. Returns the accused replica when
    /// the command was a fresh, causally-unfiltered pair against an
    /// internal node of the operating tree — the committed evidence that
    /// triggers a coordinated reconfiguration (every replica applies the
    /// same entry and reaches the same verdict).
    fn apply_committed(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        cmd: &TreeCommand,
    ) -> Option<usize> {
        match cmd {
            ConfigCommand::Config { epoch, .. } => {
                if *epoch <= self.config.epoch() {
                    return None; // stale or duplicate: epoch-monotone rule
                }
                let adopted = self
                    .config
                    .apply(cmd.clone(), ctx.now)
                    .expect("epoch above current always adopts")
                    .clone();
                self.policy.on_adopted_epoch(adopted.epoch);
                self.publish_config_checkpoint(&adopted);
                // The causal filter resets at every *committed* adoption —
                // a log-ordered event, identical at every replica — so the
                // filter stays a pure function of the committed prefix
                // (resetting at the local reconfigure instant would let
                // replicas whose trigger was gated reach different verdicts
                // on the same later pair).
                self.pair_filter.reset();
                if adopted.epoch > self.epoch {
                    // This replica was behind (it never locally detected the
                    // failure, or its pending tree lost the race): sync the
                    // operating state onto the committed configuration —
                    // the only way a tree is ever adopted. In-flight
                    // aggregation state is deliberately kept: this replica
                    // may already be aggregating views *of the adopted
                    // epoch* (routed via their proposals' carried trees),
                    // and each entry pins the tree it routes on, so stale
                    // old-epoch entries are inert rather than harmful.
                    let behind = adopted.epoch - self.epoch;
                    self.abandon_uncommitted_views(ctx.now);
                    self.epoch = adopted.epoch;
                    self.held.clear();
                    self.stale_strikes = 0;
                    self.last_strike_view = 0;
                    self.reconfiguring = false;
                    self.last_progress = ctx.now;
                    // Keep the shared policy sequence aligned: consume the
                    // trees the detecting replicas consumed (their failure
                    // inputs differ per replica, but the committed evidence
                    // below is what drives exclusions identically).
                    for _ in 0..behind {
                        let _ = self.policy.next_tree(self.system.n, self.branch);
                    }
                    self.tree = adopted.config; // the committed tree, not the catch-up's
                    if self.is_root() {
                        self.propose_next(ctx);
                    }
                } else if adopted.epoch == self.epoch {
                    // Our own pending epoch committed (the normal case): the
                    // operating tree was already in place; the committed copy
                    // is authoritative.
                    self.tree = adopted.config;
                }
                None
            }
            ConfigCommand::Pair(pair) => {
                if !self.seen_pairs.insert(pair.key()) {
                    return None;
                }
                self.config.apply(cmd.clone(), ctx.now);
                self.policy.on_committed_pair(pair);
                // Committed: stop re-sending it.
                self.outbox.retain(|p| p.key() != pair.key());
                // Condition (c): reciprocate a pair accusing this replica,
                // once per (accuser, round) — turning the one-way suspicion
                // into the mutual pair §6.4 exclusion acts on.
                if pair.accused == self.id
                    && !pair.reciprocal
                    && self.reciprocated.insert((pair.accuser, pair.round))
                {
                    self.outbox.push(pair.reciprocation());
                }
                if pair.reciprocal {
                    return None;
                }
                // Causal filter: only the round's root-most pair may act.
                if !self.pair_filter.accept(pair.round, pair.phase) {
                    return None;
                }
                // Committed evidence against a *current* internal node:
                // the configuration must rotate. All replicas apply this
                // entry (at their own local times) and reconfigure off the
                // same tree — role rotation through the log, not through
                // any replica's private blame. Replicas already operating
                // ahead of the committed epoch (a pending local detection)
                // do not compound it: they converge on whatever commits.
                let internal = self.tree.root == pair.accused
                    || self.tree.intermediates.contains(&pair.accused);
                (internal && !self.reconfiguring && self.epoch == self.config.epoch())
                    .then_some(pair.accused)
            }
            ConfigCommand::Exclude { .. } => {
                self.config.apply(cmd.clone(), ctx.now);
                None
            }
        }
    }

    /// Fold a committed adoption into the config chain and publish the
    /// `(epoch, chain head)` checkpoint the online auditor compares across
    /// replicas. Both gauges are set under one registry lock so a live poll
    /// can never pair one adoption's epoch with another's chain head.
    fn publish_config_checkpoint(&mut self, adopted: &configlog::AdoptedConfig<Tree>) {
        let mut bytes = Vec::with_capacity(
            8 * (2 + adopted.config.intermediates.len()) + 16 * adopted.config.children.len(),
        );
        bytes.extend_from_slice(&adopted.epoch.to_le_bytes());
        bytes.extend_from_slice(&(adopted.config.root as u64).to_le_bytes());
        for &i in &adopted.config.intermediates {
            bytes.extend_from_slice(&(i as u64).to_le_bytes());
        }
        for (&parent, kids) in &adopted.config.children {
            bytes.extend_from_slice(&(parent as u64).to_le_bytes());
            for &k in kids {
                bytes.extend_from_slice(&(k as u64).to_le_bytes());
            }
        }
        self.config_chain = telemetry::chain48(self.config_chain, &bytes);
        self.config_checkpoints
            .push((adopted.epoch, self.config_chain));
        let (id, epoch, chain) = (self.id, adopted.epoch as f64, self.config_chain as f64);
        self.telemetry.with_registry(|reg| {
            reg.gauge_set("kauri.node.config_epoch", Some(id), epoch);
            reg.gauge_set("kauri.node.config_digest", Some(id), chain);
        });
    }

    /// Every `(epoch, chain head)` adoption checkpoint this replica
    /// published, oldest first. Feed these to the auditor's `kauri.config`
    /// surface at end of run.
    pub fn config_checkpoints(&self) -> &[(u64, u64)] {
        &self.config_checkpoints
    }

    /// Apply every unseen entry of a proposal's committed prefix, flush any
    /// evidence the application generated (reciprocations), and perform the
    /// single coordinated reconfiguration the entries may have triggered.
    fn apply_committed_prefix(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        committed: &Arc<Vec<(u64, TreeCommand)>>,
    ) {
        if self
            .last_wire
            .as_ref()
            .is_some_and(|w| Arc::ptr_eq(w, committed))
        {
            return; // fast path: this exact prefix was already applied
        }
        let mut accused = Vec::new();
        for (_, cmd) in committed.iter() {
            if let Some(a) = self.apply_committed(ctx, cmd) {
                accused.push(a);
            }
        }
        self.last_wire = Some(committed.clone());
        self.flush_evidence(ctx);
        if !accused.is_empty() {
            self.reconfigure(ctx, &accused);
        }
    }

    /// File a suspicion pair for eventual commitment: enters the outbox
    /// unless it was already committed or is already waiting there.
    fn file_pair(&mut self, pair: SuspicionPair) {
        if !self.seen_pairs.contains(&pair.key())
            && !self.outbox.iter().any(|p| p.key() == pair.key())
        {
            self.outbox.push(pair);
        }
    }

    /// The §6.4 pair a receiver files against its upstream hop in `tree`,
    /// with the receiver's depth as the causal-filter phase.
    fn pair_against_upstream(&self, tree: &Tree, round: u64) -> Option<SuspicionPair> {
        let upstream = tree.parent(self.id)?;
        Some(SuspicionPair {
            accuser: self.id,
            accused: upstream,
            round,
            phase: if upstream == tree.root { 1 } else { 2 },
            reciprocal: false,
        })
    }

    /// Send the outbox to the replica currently able to commit it (the
    /// operating root); a root enqueues its own evidence directly. The
    /// outbox is cleared only when the pairs are seen *committed*, so
    /// evidence survives proposer changes by being re-flushed after every
    /// reconfiguration and adoption.
    fn flush_evidence(&mut self, ctx: &mut Context<KauriMessage>) {
        if self.outbox.is_empty() {
            return;
        }
        let cmds: Vec<TreeCommand> = self
            .outbox
            .iter()
            .map(|p| ConfigCommand::Pair(*p))
            .collect();
        if self.is_root() {
            self.enqueue_pending(cmds);
        } else {
            ctx.send(self.tree.root, KauriMessage::Evidence { cmds });
        }
    }

    /// Root side: queue evidence commands for the next proposed view,
    /// skipping anything already committed or already queued.
    fn enqueue_pending(&mut self, cmds: Vec<TreeCommand>) {
        for cmd in cmds {
            let ConfigCommand::Pair(pair) = &cmd else {
                continue; // only pair evidence travels via Evidence messages
            };
            if self.seen_pairs.contains(&pair.key()) {
                continue;
            }
            let queued = self.pending_cmds.iter().any(|c| match c {
                ConfigCommand::Pair(p) => p.key() == pair.key(),
                _ => false,
            });
            if !queued {
                self.pending_cmds.push(cmd);
            }
        }
    }

    /// Return the uncommitted views' traffic batches to the client
    /// population (bounded retries) before dropping them.
    fn abandon_uncommitted_views(&mut self, now: SimTime) {
        if let Some(queue) = &self.traffic {
            for state in self.views.values().filter(|s| !s.committed) {
                if let Some(id) = state.batch_id {
                    queue.retry_batch(id, now);
                }
            }
        }
        self.views.retain(|_, s| s.committed);
    }

    fn propose_next(&mut self, ctx: &mut Context<KauriMessage>) {
        if !self.is_root() || self.reconfiguring {
            return;
        }
        while self.outstanding() < self.pipeline {
            let (commands, batch_id) = if let Some(queue) = &self.traffic {
                match queue.try_batch_at(ctx.now, self.id) {
                    Some(batch) => {
                        let id = batch.id;
                        (batch.commands, Some(id))
                    }
                    None => {
                        // Nothing flushable yet: wake up when the queue's
                        // size or timeout condition can next fire (a stale
                        // timer at a replica that lost the root role is a
                        // harmless no-op — `propose_next` re-checks).
                        if let Some(at) = queue.next_ready_at(ctx.now) {
                            ctx.set_timer(at.since(ctx.now), TIMER_TRAFFIC_READY);
                        }
                        return;
                    }
                }
            } else {
                (self.batch.next_batch(), None)
            };
            let view = self.next_view;
            self.next_view += 1;
            let block = Block::new(Digest::ZERO, view, view, self.id, commands);
            let digest = block.digest();
            // Evidence commands ride the view and commit with it.
            let cmds = std::mem::take(&mut self.pending_cmds);
            self.views.insert(
                view,
                ViewState {
                    proposal_ts: ctx.now,
                    commands: block.len(),
                    voters: [self.id].into_iter().collect(),
                    missing: BTreeSet::new(),
                    committed: false,
                    batch_id,
                    cmds,
                },
            );
            self.refresh_wire();
            let msg = KauriMessage::Proposal {
                view,
                digest,
                commands: block.len(),
                timestamp_us: ctx.now.as_micros(),
                epoch: self.epoch,
                tree: Arc::new(self.tree.clone()),
                committed: self.committed_wire.clone(),
            };
            self.telemetry.instant(
                Stage::Propose,
                self.id,
                view,
                ctx.now.as_micros(),
                vec![("commands", block.len() as f64)],
            );
            let children = self.tree.children_of(self.id);
            self.send_down(ctx, children, msg);
            ctx.set_timer(self.policy.view_timeout(), TIMER_VIEW_BASE + view);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Proposal message fields
    fn handle_proposal(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        view: u64,
        digest: Digest,
        commands: usize,
        timestamp_us: u64,
        epoch: u64,
        tree: Arc<Tree>,
        committed: Arc<Vec<(u64, TreeCommand)>>,
    ) {
        if epoch < self.epoch {
            return;
        }
        // Adoption happens here and only here: apply the committed prefix.
        // The proposal's `tree` is never installed from the message — a
        // replica that is behind routes this view on the carried tree and
        // catches up once the epoch's command appears in the prefix.
        self.apply_committed_prefix(ctx, &committed);
        if epoch < self.epoch {
            // The prefix carried an adoption past the proposal's own epoch.
            return;
        }
        self.highest_view_seen = self.highest_view_seen.max(view);
        self.last_progress = ctx.now;
        // Per-hop dissemination as seen by this replica: root's (honest)
        // proposal timestamp → delivery here, cumulative over upstream hops
        // and any scripted holds along the path.
        if self.telemetry.is_tracing() {
            let mut depth = 0u64;
            let mut cur = self.id;
            while let Some(up) = tree.parent(cur) {
                depth += 1;
                cur = up;
            }
            self.telemetry.span(
                Stage::Forward,
                self.id,
                view,
                timestamp_us,
                ctx.now.as_micros().saturating_sub(timestamp_us),
                vec![("depth", depth as f64)],
            );
        }

        // Withheld-payload detection: the proposal timestamp is the root's
        // own (honest) claim of when the view was created, so a proposal
        // that is already older than the view timeout on arrival means the
        // payload was withheld somewhere above us. The crash detector (the
        // progress timer) never sees this — delayed proposals still arrive,
        // just late. After STALE_STRIKE_LIMIT consecutive stale proposals
        // the replica declares the tree failed exactly as if the root had
        // gone silent. The stale proposal is still forwarded and voted
        // first, so the evidence reaches the leaves too. A receiver cannot
        // tell *which* upstream hop held the payload without trusting
        // per-hop timestamps the attacker itself would supply — so instead
        // of blaming the root it records the §6.4 reciprocal pair
        // (receiver, upstream) for the configuration log; the receiver's
        // depth rides along as the causal-filter phase, letting a pair
        // raised directly under the root explain (and filter) the echoes
        // the same hold causes further down.
        let age = ctx.now.since(SimTime::from_micros(timestamp_us));
        if age > self.policy.view_timeout() {
            // One strike per withheld view: duplicates re-delivered through
            // a second parent must not fast-forward the limit (which is
            // deliberately sized so a delaying root's in-flight burst still
            // commits — see STALE_STRIKE_LIMIT).
            if view > self.last_strike_view {
                self.last_strike_view = view;
                self.stale_strikes += 1;
                self.last_stale_upstream = tree.parent(self.id).map(|up| {
                    let depth = if up == tree.root { 1 } else { 2 };
                    (up, depth)
                });
            }
        } else {
            self.stale_strikes = 0;
        }

        // Route on the proposal's own tree, not the durable one: votes and
        // forwards for a view always follow the tree it was proposed on.
        let children = tree.children_of(self.id);
        if children.is_empty() {
            // Leaf: vote to parent.
            if let Some(parent) = tree.parent(self.id) {
                self.telemetry
                    .instant(Stage::Vote, self.id, view, ctx.now.as_micros(), vec![]);
                ctx.send(
                    parent,
                    KauriMessage::Vote {
                        view,
                        voter: self.id,
                    },
                );
            }
            self.maybe_declare_stale_failure(ctx);
            return;
        }
        // Intermediate: forward downwards and start aggregating — once per
        // view. Duplicate deliveries (possible while replicas still disagree
        // on the tree) must not re-forward, or a transient routing cycle
        // amplifies one proposal into an unbounded message storm.
        let agg = self.aggregates.entry(view).or_default();
        if agg.votes.contains(&self.id) {
            return;
        }
        let msg = KauriMessage::Proposal {
            view,
            digest,
            commands,
            timestamp_us,
            epoch,
            tree: tree.clone(),
            committed,
        };
        // A scripted intermediate holds its forwarded payloads too.
        self.send_down(ctx, children, msg);
        self.telemetry
            .instant(Stage::Vote, self.id, view, ctx.now.as_micros(), vec![]);
        let agg = self.aggregates.entry(view).or_default();
        agg.digest = digest;
        agg.votes.insert(self.id);
        agg.tree = Some(tree);
        ctx.set_timer(self.policy.child_timeout(), TIMER_CHILD_BASE + view);
        self.maybe_forward_aggregate(ctx, view, false);
        self.maybe_declare_stale_failure(ctx);
    }

    /// React to repeated stale proposals. Called after the stale proposal
    /// has been processed, so the evidence has already travelled down the
    /// tree. The receiver records the §6.4 reciprocal pair
    /// (receiver, upstream); what else happens depends on where the
    /// receiver sits:
    ///
    /// * Directly under the root (phase 1): consensus itself is being
    ///   stalled at the source, so the replica also declares the tree
    ///   failed — liveness cannot wait for evidence to commit through the
    ///   very pipeline being withheld. The declaration carries no blame.
    /// * Deeper (phase 2): only this subtree is starved — the tree at
    ///   large still commits (a single subtree cannot break the quorum),
    ///   so the replica keeps participating and lets the committed pair
    ///   trigger the *coordinated* rotation in `apply_committed`.
    fn maybe_declare_stale_failure(&mut self, ctx: &mut Context<KauriMessage>) {
        if self.stale_strikes >= STALE_STRIKE_LIMIT && !self.is_root() && !self.reconfiguring {
            self.stale_strikes = 0;
            let Some((upstream, depth)) = self.last_stale_upstream.take() else {
                return;
            };
            let pair = SuspicionPair {
                accuser: self.id,
                accused: upstream,
                round: self.last_strike_view,
                phase: depth,
                reciprocal: false,
            };
            self.file_pair(pair);
            if depth == 1 {
                self.reconfigure(ctx, &[]);
            } else {
                self.flush_evidence(ctx);
            }
        }
    }

    fn maybe_forward_aggregate(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        view: u64,
        timeout: bool,
    ) {
        let (forwarded, votes, view_tree) = match self.aggregates.get(&view) {
            Some(a) => (a.forwarded, a.votes.clone(), a.tree.clone()),
            None => return,
        };
        if forwarded {
            return;
        }
        // Aggregate on the tree the view routed on (falling back to the
        // durable tree for votes that arrived without a proposal).
        let tree = view_tree.as_deref().unwrap_or(&self.tree);
        let children: BTreeSet<usize> = tree.children_of(self.id).into_iter().collect();
        let have_all = children.iter().all(|c| votes.contains(c));
        if !have_all && !timeout {
            return;
        }
        let parent = tree.parent(self.id);
        if let Some(a) = self.aggregates.get_mut(&view) {
            a.forwarded = true;
        }
        let voters: Vec<usize> = votes.iter().copied().collect();
        let missing: Vec<usize> = children
            .iter()
            .copied()
            .filter(|c| !votes.contains(c))
            .collect();
        if let Some(parent) = parent {
            self.telemetry.instant(
                Stage::Aggregate,
                self.id,
                view,
                ctx.now.as_micros(),
                vec![("votes", voters.len() as f64)],
            );
            ctx.send(
                parent,
                KauriMessage::Aggregate {
                    view,
                    voters,
                    missing,
                    aggregator: self.id,
                },
            );
        }
    }

    fn handle_vote(&mut self, ctx: &mut Context<KauriMessage>, view: u64, voter: usize) {
        if self.is_root() {
            // Star topology (or direct children of the root): count directly.
            self.add_root_votes(ctx, view, &[voter], &[]);
            return;
        }
        let agg = self.aggregates.entry(view).or_default();
        agg.votes.insert(voter);
        self.maybe_forward_aggregate(ctx, view, false);
    }

    fn handle_aggregate(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        view: u64,
        voters: Vec<usize>,
        missing: Vec<usize>,
        aggregator: usize,
    ) {
        if !self.is_root() {
            return;
        }
        let mut all = voters;
        all.push(aggregator);
        self.add_root_votes(ctx, view, &all, &missing);
    }

    fn add_root_votes(
        &mut self,
        ctx: &mut Context<KauriMessage>,
        view: u64,
        voters: &[usize],
        missing: &[usize],
    ) {
        let threshold = self.vote_threshold();
        let Some(state) = self.views.get_mut(&view) else {
            return;
        };
        state.voters.extend(voters.iter().copied());
        state.missing.extend(missing.iter().copied());
        for v in voters {
            state.missing.remove(v);
        }
        if !state.committed && state.voters.len() >= threshold {
            state.committed = true;
            let (ts, commands, batch_id) = (state.proposal_ts, state.commands, state.batch_id);
            self.commit_config_payload(ctx, view);
            self.stats.record_commit(ts, ctx.now, commands);
            self.throughput.record(ctx.now, commands as u64);
            self.telemetry.span(
                Stage::Commit,
                self.id,
                view,
                ts.as_micros(),
                ctx.now.since(ts).as_micros(),
                vec![("commands", commands as f64)],
            );
            self.telemetry
                .counter_add("kauri.node.commits", Some(self.id), 1);
            self.telemetry.observe(
                "kauri.node.commit_us",
                Some(self.id),
                ctx.now.since(ts).as_micros(),
            );
            // The proposing root reports the committed batch back to the
            // traffic queue for end-to-end accounting. Batches in views a
            // reconfiguration discards are retried by the client population
            // (see `abandon_uncommitted_views`).
            if let (Some(queue), Some(id)) = (&self.traffic, batch_id) {
                queue.commit_batch_in(id, ctx.now, view);
            }
            self.propose_next(ctx);
        }
    }

    /// The role-config commit path: the first committed view of a new
    /// operating epoch commits the epoch's tree command, and the evidence
    /// commands the view carried commit with it. The grown prefix is
    /// broadcast as the commit notification (and keeps riding every later
    /// proposal), and only then does the root act on any reconfiguration
    /// the committed evidence triggered — so the evidence always reaches
    /// the other replicas even if this root stops proposing right after.
    fn commit_config_payload(&mut self, ctx: &mut Context<KauriMessage>, view: u64) {
        let before = self.config.len();
        let mut accused = Vec::new();
        if self.config.epoch() < self.epoch {
            let cmd = ConfigCommand::Config {
                epoch: self.epoch,
                config: self.tree.clone(),
            };
            self.apply_committed(ctx, &cmd);
        }
        let cmds = self
            .views
            .get_mut(&view)
            .map(|s| std::mem::take(&mut s.cmds))
            .unwrap_or_default();
        for cmd in cmds {
            if let Some(a) = self.apply_committed(ctx, &cmd) {
                accused.push(a);
            }
        }
        if self.config.len() > before {
            self.refresh_wire();
            let others: Vec<usize> = (0..self.system.n).filter(|&r| r != self.id).collect();
            ctx.multicast(
                &others,
                KauriMessage::Committed {
                    prefix: self.committed_wire.clone(),
                },
            );
        }
        if !accused.is_empty() {
            self.reconfigure(ctx, &accused);
        }
    }

    fn handle_view_timeout(&mut self, ctx: &mut Context<KauriMessage>, view: u64) {
        if !self.is_root() || self.reconfiguring {
            return;
        }
        // A scripted attacker ignores its own view timeouts: a Byzantine
        // root wants to *keep* the role it is abusing, and letting it
        // honestly declare its own tree failed would fork the shared policy
        // sequence (its `missing` set differs from the honest replicas',
        // which all blame the root). Recovery comes from the honest side —
        // the staleness strikes in `handle_proposal`.
        if self.attacking(ctx.now) {
            return;
        }
        let failed = self.views.get(&view).map(|s| !s.committed).unwrap_or(false);
        if failed {
            let missing: Vec<usize> = self
                .views
                .get(&view)
                .map(|s| {
                    (0..self.system.n)
                        .filter(|r| !s.voters.contains(r))
                        .collect()
                })
                .unwrap_or_default();
            // §6.4 pairs on view failures: the root observed the omission,
            // so it pairs itself with each unresponsive *internal* node of
            // the failed tree and feeds the pairs through the log (the
            // local `on_view_failure` below keeps the immediate exclusion
            // the policies already perform; the committed pairs are the
            // shared evidence the other replicas' monitors converge on).
            for internal in self.tree.internal_nodes() {
                if internal != self.id && missing.contains(&internal) {
                    self.file_pair(SuspicionPair {
                        accuser: self.id,
                        accused: internal,
                        round: view,
                        phase: 1,
                        reciprocal: false,
                    });
                }
            }
            self.reconfigure(ctx, &missing);
        }
    }

    fn reconfigure(&mut self, ctx: &mut Context<KauriMessage>, missing: &[usize]) {
        self.policy.on_view_failure(missing);
        self.tree = self.policy.next_tree(self.system.n, self.branch);
        self.epoch += 1;
        self.reconfig_times.push(ctx.now);
        self.telemetry.instant(
            Stage::Reconfigure,
            self.id,
            self.epoch,
            ctx.now.as_micros(),
            vec![("missing", missing.len() as f64)],
        );
        self.telemetry
            .counter_add("kauri.node.reconfigurations", Some(self.id), 1);
        self.aggregates.clear();
        self.held.clear();
        self.stale_strikes = 0;
        self.last_strike_view = 0;
        // (The pair filter is NOT reset here: local reconfigures happen at
        // replica-specific instants, and the filter must remain a pure
        // function of the committed prefix — it resets on committed epoch
        // adoptions instead.)
        // Dropped views return their batches to the clients (bounded
        // retries); fresh batches will be proposed on the new tree.
        self.abandon_uncommitted_views(ctx.now);
        // The new root is legitimately silent while it runs the
        // reconfiguration search (reconfig_delay): start the staleness clock
        // only once it could have proposed, or every replica walks off to
        // the next tree before any root ever speaks — a reconfiguration
        // treadmill that blanks throughput for tens of seconds.
        self.last_progress = ctx.now + self.reconfig_delay;
        if self.tree.root == self.id {
            self.reconfiguring = true;
            ctx.set_timer(self.reconfig_delay, TIMER_RECONFIG_DONE);
        } else {
            self.reconfiguring = false;
        }
        // Evidence (including what this failure produced) goes to whoever
        // can now commit it.
        self.flush_evidence(ctx);
    }
}

impl Node for KauriNode {
    type Msg = KauriMessage;

    fn on_start(&mut self, ctx: &mut Context<KauriMessage>) {
        self.arm_progress_timer(ctx);
        if self.is_root() {
            self.propose_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<KauriMessage>, _from: NodeId, msg: KauriMessage) {
        match msg {
            KauriMessage::Proposal {
                view,
                digest,
                commands,
                timestamp_us,
                epoch,
                tree,
                committed,
            } => self.handle_proposal(
                ctx,
                view,
                digest,
                commands,
                timestamp_us,
                epoch,
                tree,
                committed,
            ),
            KauriMessage::Vote { view, voter } => self.handle_vote(ctx, view, voter),
            KauriMessage::Aggregate {
                view,
                voters,
                missing,
                aggregator,
            } => self.handle_aggregate(ctx, view, voters, missing, aggregator),
            KauriMessage::Evidence { cmds } => {
                // Only the replica currently proposing can order evidence;
                // senders re-flush after reconfigurations, so evidence that
                // reaches a non-root is simply dropped here.
                if self.is_root() {
                    self.enqueue_pending(cmds);
                }
            }
            KauriMessage::Committed { prefix } => {
                self.apply_committed_prefix(ctx, &prefix);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<KauriMessage>, _timer: TimerId, tag: u64) {
        match tag {
            TIMER_PROGRESS => {
                // No proposal seen for a whole progress window: if we are not
                // the (live) root, assume the tree failed and move on — the
                // crash detector. Root silence while the shared traffic
                // queue has nothing flushable is *legitimate* (an `OnOff`
                // burst gap, or the end of the schedule), not failure: the
                // staleness clock is pushed forward instead of striking.
                let stale = ctx.now.since(self.last_progress) >= self.progress_window();
                let idle = self
                    .traffic
                    .as_ref()
                    .is_some_and(|q| !q.has_flushable(ctx.now));
                if stale && idle {
                    self.last_progress = ctx.now;
                } else if stale && !self.is_root() {
                    // Silence is ambiguous: the root may be dead, or an
                    // upstream hop may be withholding everything it should
                    // forward. Before walking, file the §6.4 pair
                    // (self, upstream) with the *current* root: if the tree
                    // at large is still committing (a withholding
                    // intermediate starves only its own subtree), the pair
                    // commits within a round trip and the whole cluster
                    // rotates coordinately off the committed evidence —
                    // instead of this subtree deposing an innocent root on
                    // its own. If the root really is dead the evidence is
                    // re-flushed to its successor, and walking now (with
                    // the crash-blame the policies expect) preserves
                    // liveness exactly as before.
                    let tree = self.tree.clone();
                    if let Some(pair) =
                        self.pair_against_upstream(&tree, self.highest_view_seen + 1)
                    {
                        self.file_pair(pair);
                        self.flush_evidence(ctx);
                    }
                    self.reconfigure(ctx, &[self.tree.root]);
                }
                self.arm_progress_timer(ctx);
            }
            TIMER_RECONFIG_DONE => {
                self.reconfiguring = false;
                self.next_view = self.highest_view_seen.max(self.next_view) + 1;
                self.propose_next(ctx);
            }
            TIMER_TRAFFIC_READY => self.propose_next(ctx),
            t if t >= TIMER_HELD_BASE => self.release_held(ctx, t - TIMER_HELD_BASE),
            t if t >= TIMER_VIEW_BASE => self.handle_view_timeout(ctx, t - TIMER_VIEW_BASE),
            t if t >= TIMER_CHILD_BASE => {
                self.maybe_forward_aggregate(ctx, t - TIMER_CHILD_BASE, true)
            }
            _ => {}
        }
    }
}

/// Configuration of a Kauri experiment run.
pub struct KauriConfig {
    /// System size and fault threshold.
    pub system: SystemConfig,
    /// Tree branch factor (the paper uses `b = (√(4n−3) − 1)/2`).
    pub branch: usize,
    /// Number of concurrently pipelined views (the paper uses 3; 1 disables
    /// pipelining).
    pub pipeline: usize,
    /// Commands per block.
    pub batch_size: usize,
    /// Virtual run duration.
    pub run_for: Duration,
    /// Delay between a tree failure and the new root resuming proposals
    /// (models the configuration search, e.g. 1 s of simulated annealing).
    pub reconfig_delay: Duration,
    /// Scripted protocol-level misbehavior (proposal-delay attacks).
    pub misbehavior: MisbehaviorPlan,
    /// Open-loop traffic source shared by every (rotating) root; `None`
    /// keeps the saturated paper workload.
    pub traffic: Option<SharedTrafficQueue>,
    /// Telemetry handle installed on every replica (disabled by default).
    pub telemetry: Telemetry,
}

impl KauriConfig {
    /// The paper's defaults for `n` replicas.
    pub fn new(n: usize) -> Self {
        let system = SystemConfig::new(n);
        KauriConfig {
            branch: system.tree_branch_factor(),
            system,
            pipeline: 3,
            batch_size: 1000,
            run_for: Duration::from_secs(120),
            reconfig_delay: Duration::from_secs(1),
            misbehavior: MisbehaviorPlan::none(),
            traffic: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Disable pipelining.
    pub fn without_pipelining(mut self) -> Self {
        self.pipeline = 1;
        self
    }
}
