//! Height-3 dissemination/aggregation trees.
//!
//! A [`Tree`] assigns every replica one of three roles: root, intermediate
//! node, or leaf attached to a specific intermediate (Fig 5). Trees are built
//! from an ordering of replicas — the first becomes the root, the next `b`
//! become intermediates, and the remaining replicas are distributed over the
//! intermediates as leaves — or degenerate into a star (root with `n − 1`
//! direct children) for Kauri's fallback.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A height-3 tree (or a star) over replica ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tree {
    /// The root (leader) replica.
    pub root: usize,
    /// Intermediate nodes in order.
    pub intermediates: Vec<usize>,
    /// Children of each internal node (the root's entry holds its direct
    /// leaf children in the star case; intermediates hold their leaves).
    pub children: BTreeMap<usize, Vec<usize>>,
}

impl Tree {
    /// Build a tree from an ordering: `order[0]` is the root, the next `b`
    /// replicas are intermediates, the rest are leaves spread round-robin.
    ///
    /// # Panics
    /// Panics if the ordering is empty or contains duplicates.
    pub fn from_ordering(order: &[usize], b: usize) -> Tree {
        assert!(!order.is_empty(), "ordering must not be empty");
        let mut seen = order.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), order.len(), "ordering contains duplicates");

        let root = order[0];
        let inner_count = b.min(order.len().saturating_sub(1));
        let intermediates: Vec<usize> = order[1..1 + inner_count].to_vec();
        let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &i in &intermediates {
            children.insert(i, Vec::new());
        }
        if intermediates.is_empty() {
            children.insert(root, Vec::new());
        }
        for (idx, &leaf) in order[1 + inner_count..].iter().enumerate() {
            if intermediates.is_empty() {
                children.get_mut(&root).expect("root entry").push(leaf);
            } else {
                let parent = intermediates[idx % intermediates.len()];
                children.get_mut(&parent).expect("intermediate entry").push(leaf);
            }
        }
        Tree {
            root,
            intermediates,
            children,
        }
    }

    /// A star: the root is directly connected to every other replica
    /// (Kauri's fallback topology, equivalent to HotStuff's layout).
    pub fn star(root: usize, n: usize) -> Tree {
        let mut children = BTreeMap::new();
        children.insert(root, (0..n).filter(|&r| r != root).collect());
        Tree {
            root,
            intermediates: Vec::new(),
            children,
        }
    }

    /// A uniformly random tree over `n` replicas with branch factor `b`.
    pub fn random(n: usize, b: usize, seed: u64) -> Tree {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        Tree::from_ordering(&order, b)
    }

    /// True if the tree degenerated into a star.
    pub fn is_star(&self) -> bool {
        self.intermediates.is_empty()
    }

    /// All internal nodes: the root plus the intermediates.
    pub fn internal_nodes(&self) -> Vec<usize> {
        let mut v = vec![self.root];
        v.extend(&self.intermediates);
        v
    }

    /// The parent of a replica, if it has one.
    pub fn parent(&self, replica: usize) -> Option<usize> {
        if replica == self.root {
            return None;
        }
        if self.intermediates.contains(&replica) {
            return Some(self.root);
        }
        for (&parent, kids) in &self.children {
            if kids.contains(&replica) {
                return Some(parent);
            }
        }
        None
    }

    /// The children of an internal node (empty for leaves).
    pub fn children_of(&self, replica: usize) -> Vec<usize> {
        if replica == self.root && !self.is_star() {
            return self.intermediates.clone();
        }
        self.children.get(&replica).cloned().unwrap_or_default()
    }

    /// Total number of replicas covered by the tree.
    pub fn size(&self) -> usize {
        1 + self.intermediates.len()
            + self
                .children
                .values()
                .map(|v| v.len())
                .sum::<usize>()
    }

    /// The leaf children of a given intermediate node.
    pub fn leaves_of(&self, intermediate: usize) -> &[usize] {
        self.children
            .get(&intermediate)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Partition `n` replicas into `t = ⌊n / i⌋` disjoint bins of `i = b + 1`
/// internal-node slots each — Kauri's t-bounded-conformity construction. The
/// `k`-th candidate tree uses bin `k` as its internal nodes (root first) and
/// all remaining replicas as leaves.
pub fn conformity_bins(n: usize, b: usize) -> Vec<Vec<usize>> {
    let i = b + 1;
    let t = n / i;
    (0..t).map(|k| ((k * i)..(k * i + i)).collect()).collect()
}

/// Build the `k`-th conformity tree: internals from bin `k`, leaves from the
/// remaining replicas.
pub fn conformity_tree(n: usize, b: usize, k: usize) -> Tree {
    let bins = conformity_bins(n, b);
    let bin = &bins[k % bins.len()];
    let mut order = bin.clone();
    order.extend((0..n).filter(|r| !bin.contains(r)));
    Tree::from_ordering(&order, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ordering_builds_paper_figure_shape() {
        // Fig 5: n = 13, b = 3 → root, 3 intermediates, 9 leaves (3 each).
        let order: Vec<usize> = (0..13).collect();
        let t = Tree::from_ordering(&order, 3);
        assert_eq!(t.root, 0);
        assert_eq!(t.intermediates, vec![1, 2, 3]);
        for &i in &t.intermediates {
            assert_eq!(t.leaves_of(i).len(), 3);
        }
        assert_eq!(t.size(), 13);
        assert_eq!(t.parent(5), Some(t.intermediates[1])); // (5 - 4) % 3
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.children_of(0), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_ordering_rejected() {
        Tree::from_ordering(&[0, 1, 1, 2], 2);
    }

    #[test]
    fn star_tree_has_no_intermediates() {
        let s = Tree::star(2, 5);
        assert!(s.is_star());
        assert_eq!(s.children_of(2), vec![0, 1, 3, 4]);
        assert_eq!(s.internal_nodes(), vec![2]);
        assert_eq!(s.size(), 5);
        assert_eq!(s.parent(4), Some(2));
    }

    #[test]
    fn random_trees_cover_all_replicas_and_vary_with_seed() {
        let a = Tree::random(21, 4, 1);
        let b = Tree::random(21, 4, 2);
        assert_eq!(a.size(), 21);
        assert_eq!(b.size(), 21);
        assert_ne!(a, b, "different seeds should give different trees");
        assert_eq!(a.intermediates.len(), 4);
    }

    #[test]
    fn conformity_bins_are_disjoint_and_cover_internals() {
        let n = 21;
        let b = 4;
        let bins = conformity_bins(n, b);
        assert_eq!(bins.len(), n / (b + 1));
        let mut all: Vec<usize> = bins.iter().flatten().copied().collect();
        let len_before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len_before, "bins are disjoint");
        for (k, bin) in bins.iter().enumerate() {
            let tree = conformity_tree(n, b, k);
            assert_eq!(tree.internal_nodes(), *bin);
            assert_eq!(tree.size(), n);
        }
    }

    #[test]
    fn conformity_guarantees_a_correct_tree_under_f_less_than_t() {
        // If fewer than t replicas are faulty, at least one bin is fault-free.
        let n = 21;
        let b = 4;
        let bins = conformity_bins(n, b);
        let t = bins.len();
        let faulty: Vec<usize> = (0..t - 1).map(|k| k * (b + 1)).collect(); // one per bin except the last
        let fault_free = bins
            .iter()
            .filter(|bin| bin.iter().all(|r| !faulty.contains(r)))
            .count();
        assert!(fault_free >= 1);
    }
}
