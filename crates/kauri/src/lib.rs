//! # kauri — tree-based BFT dissemination and aggregation
//!
//! Kauri \[51\] replaces HotStuff's star topology with a height-3 tree: the
//! root (leader) disseminates proposals to `b` intermediate nodes, each of
//! which forwards them to `b` leaves and aggregates their votes back towards
//! the root. The tree reduces the root's fan-out from `n − 1` to `b ≈ √n`,
//! and pipelining several consensus instances hides the extra hop's latency.
//!
//! Because a single faulty internal node can stall the whole tree, Kauri
//! reconfigures through *t-bounded conformity*: replicas are partitioned into
//! `t = n / i` disjoint bins; each candidate tree draws all of its internal
//! nodes from one bin, so if fewer than `t` replicas are faulty at least one
//! bin — and hence one tree — is fully correct. After `t` failed trees Kauri
//! falls back to a star topology.
//!
//! The [`TreePolicy`] trait abstracts how trees are chosen and when a view is
//! considered failed, so OptiTree (in the `optitree` crate) can plug in
//! latency-aware, suspicion-driven tree selection without forking the
//! protocol.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod node;
pub mod policy;
pub mod tree;

pub use node::{KauriConfig, KauriMessage, KauriNode, TreeCommand};
pub use policy::{KauriBinsPolicy, TreePolicy};
pub use tree::Tree;
