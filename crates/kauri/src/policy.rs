//! Tree-selection policies.
//!
//! Kauri's own policy draws trees from the t-bounded-conformity bins in a
//! random order and falls back to a star after `t` failures. OptiTree (in the
//! `optitree` crate) implements the same trait but selects trees with
//! simulated annealing over the latency matrix, restricted to the OptiLog
//! candidate set, and adjusts the vote threshold by the fault estimate `u`.

use crate::tree::{conformity_bins, Tree};
use configlog::SuspicionPair;
use runtime::Duration;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsm::SystemConfig;

/// How the protocol obtains trees and failure thresholds.
pub trait TreePolicy: Send {
    /// The next tree to try (called at start and after every failure).
    fn next_tree(&mut self, n: usize, b: usize) -> Tree;

    /// Votes the root must collect before committing a view.
    fn vote_threshold(&self, system: &SystemConfig) -> usize {
        system.quorum()
    }

    /// How long an intermediate node waits for its children before
    /// aggregating without them.
    fn child_timeout(&self) -> Duration {
        Duration::from_millis(400)
    }

    /// How long the root waits for a view to commit before declaring the
    /// tree failed and reconfiguring.
    fn view_timeout(&self) -> Duration {
        Duration::from_millis(2_000)
    }

    /// Notification that a view failed, with the replicas the root is missing
    /// votes from (lets latency-aware policies update suspicions).
    fn on_view_failure(&mut self, missing: &[usize]);

    /// A reciprocal suspicion pair committed through the replicated
    /// configuration log (§6.4). Committed pairs are identical at every
    /// replica, so pair-driven exclusion decisions converge without any
    /// out-of-band blame channel. Default: ignore (Kauri's conformity bins
    /// already guarantee the attacker is internal in at most one bin).
    fn on_committed_pair(&mut self, _pair: &SuspicionPair) {}

    /// A tree configuration for `epoch` committed through the log and
    /// adopted — a real leader term, the clock suspicion windows are
    /// denominated in. Default: ignore.
    fn on_adopted_epoch(&mut self, _epoch: u64) {}

    /// Replicas this policy currently excludes from internal positions
    /// (diagnostics / reports). Default: none.
    fn excluded(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Short label for reports.
    fn name(&self) -> &'static str;
}

/// Kauri's native policy: iterate the conformity bins in a random order and
/// revert to a star after all bins have been tried.
#[derive(Debug, Clone)]
pub struct KauriBinsPolicy {
    bin_order: Vec<usize>,
    trials: usize,
    n: usize,
    b: usize,
}

impl KauriBinsPolicy {
    /// Create the policy for an `n`-replica system with branch factor `b`.
    pub fn new(n: usize, b: usize, seed: u64) -> Self {
        let bins = conformity_bins(n, b);
        let mut bin_order: Vec<usize> = (0..bins.len()).collect();
        bin_order.shuffle(&mut StdRng::seed_from_u64(seed));
        KauriBinsPolicy {
            bin_order,
            trials: 0,
            n,
            b,
        }
    }

    /// Number of trees tried so far.
    pub fn trials(&self) -> usize {
        self.trials
    }
}

impl TreePolicy for KauriBinsPolicy {
    fn next_tree(&mut self, n: usize, b: usize) -> Tree {
        let trial = self.trials;
        self.trials += 1;
        if trial >= self.bin_order.len() {
            // Exhausted the bins: fall back to a star rooted at replica 0.
            return Tree::star(0, n);
        }
        let bin_idx = self.bin_order[trial];
        let bins = conformity_bins(self.n.max(n), self.b.max(b));
        let bin = &bins[bin_idx % bins.len()];
        let mut order = bin.clone();
        order.extend((0..n).filter(|r| !bin.contains(r)));
        Tree::from_ordering(&order, b)
    }

    fn on_view_failure(&mut self, _missing: &[usize]) {}

    fn name(&self) -> &'static str {
        "kauri"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_policy_uses_disjoint_internal_sets() {
        let mut p = KauriBinsPolicy::new(21, 4, 7);
        let t1 = p.next_tree(21, 4);
        let t2 = p.next_tree(21, 4);
        let i1 = t1.internal_nodes();
        let i2 = t2.internal_nodes();
        assert!(i1.iter().all(|r| !i2.contains(r)), "bins must be disjoint");
        assert_eq!(p.trials(), 2);
    }

    #[test]
    fn bins_policy_falls_back_to_star() {
        let n = 21;
        let b = 4;
        let bins = conformity_bins(n, b).len();
        let mut p = KauriBinsPolicy::new(n, b, 0);
        for _ in 0..bins {
            assert!(!p.next_tree(n, b).is_star());
        }
        assert!(p.next_tree(n, b).is_star(), "after t trials Kauri reverts to a star");
    }

    #[test]
    fn default_threshold_is_quorum() {
        let p = KauriBinsPolicy::new(21, 4, 0);
        assert_eq!(p.vote_threshold(&SystemConfig::new(21)), 15);
        assert_eq!(p.name(), "kauri");
    }

    #[test]
    fn bin_order_varies_with_seed() {
        let a = KauriBinsPolicy::new(43, 6, 1);
        let b = KauriBinsPolicy::new(43, 6, 2);
        assert_ne!(a.bin_order, b.bin_order);
    }
}
