//! Property-based tests for the simulated cryptographic substrate.

use crypto::{sha256, Digest, Keyring, PartialSignature, QuorumCertificate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SHA-256 streaming equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_independent(data in prop::collection::vec(any::<u8>(), 0..2048), cut in 0usize..2048) {
        let oneshot = sha256(&data);
        let cut = cut.min(data.len());
        let mut h = crypto::sha256::Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Signatures verify exactly for the signing replica and message.
    #[test]
    fn signature_binding(msg in prop::collection::vec(any::<u8>(), 1..128), signer in 0usize..7, claimed in 0usize..7) {
        let ring = Keyring::new(42, 7);
        let digest = Digest::of(&msg);
        let sig = ring.key(signer).sign(&digest);
        prop_assert!(ring.verify(&digest, &sig));
        prop_assert_eq!(ring.verify_from(claimed, &digest, &sig), claimed == signer);
        // A different message never verifies.
        let mut other = msg.clone();
        other.push(0xAB);
        prop_assert!(!ring.verify(&Digest::of(&other), &sig));
    }

    /// Quorum certificates verify exactly when they carry >= threshold
    /// distinct valid shares over the certified digest.
    #[test]
    fn quorum_certificate_threshold(signers in prop::collection::vec(0usize..10, 0..15), threshold in 1usize..8) {
        let ring = Keyring::new(9, 10);
        let digest = Digest::of(b"block");
        let shares: Vec<PartialSignature> = signers
            .iter()
            .map(|&s| PartialSignature::new(s, digest, ring.key(s).sign(&digest)))
            .collect();
        let qc = QuorumCertificate::new(digest, 1, shares);
        let distinct = qc.distinct_signers();
        prop_assert_eq!(qc.verify(&ring, threshold), distinct >= threshold);
    }
}
