//! Simulated keypairs and signatures.
//!
//! A signature is the SHA-256 of `(secret key ‖ message digest)`. Verification
//! recomputes it using the keyring's copy of the secret, which stands in for
//! public-key verification in the simulation: the signing equation still binds
//! the signature to both the signer and the message, so forgery attempts by
//! other replicas and signature-vs-content mismatches are detected — which is
//! what BFT safety and proof-of-misbehavior rely on.

use crate::digest::{Digest, Hashable};
use serde::{Deserialize, Serialize};

/// Wire size (bytes) of one signature, modelled after Ed25519 for the
/// Fig 13 overhead experiment.
pub const SIGNATURE_WIRE_BYTES: usize = 64;
/// Wire size (bytes) of one public key.
pub const PUBLIC_KEY_WIRE_BYTES: usize = 32;

/// A replica's secret key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey([u8; 32]);

/// A replica's public key (identifier-derived in the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey(pub [u8; 32]);

/// A signature over a digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Index of the signer (replica id) — carried for aggregation and auditing.
    pub signer: usize,
    bytes: [u8; 32],
}

/// A keypair for one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// Replica index this keypair belongs to.
    pub id: usize,
    secret: SecretKey,
    /// Public half.
    pub public: PublicKey,
}

impl KeyPair {
    /// Deterministically derive the keypair of replica `id` for a given
    /// system instance `seed` (all replicas of one simulation share the seed).
    pub fn derive(seed: u64, id: usize) -> KeyPair {
        let secret = Digest::of_parts(&[b"optilog-secret", &seed.to_le_bytes(), &id.to_le_bytes()]);
        let public = Digest::of_parts(&[b"optilog-public", &secret.0]);
        KeyPair {
            id,
            secret: SecretKey(secret.0),
            public: PublicKey(public.0),
        }
    }

    /// Sign a digest.
    pub fn sign(&self, digest: &Digest) -> Signature {
        Signature {
            signer: self.id,
            bytes: Digest::of_parts(&[b"optilog-sig", &self.secret.0, &digest.0]).0,
        }
    }

    /// Sign any hashable value.
    pub fn sign_value<T: Hashable>(&self, value: &T) -> Signature {
        self.sign(&value.digest())
    }
}

/// A value together with a signature over its digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signed<T> {
    /// The signed value.
    pub value: T,
    /// The signature over `value.digest()`.
    pub signature: Signature,
}

impl<T: Hashable> Signed<T> {
    /// Sign `value` with `key`.
    pub fn new(value: T, key: &KeyPair) -> Self {
        let signature = key.sign_value(&value);
        Signed { value, signature }
    }

    /// Verify against a keyring.
    pub fn verify(&self, keyring: &Keyring) -> bool {
        keyring.verify(&self.value.digest(), &self.signature)
    }
}

/// The set of all replicas' keys for one system instance.
///
/// In a real deployment each replica would hold only public keys of the
/// others; in the simulation the keyring can recompute signatures, which is
/// equivalent for verification purposes.
#[derive(Debug, Clone)]
pub struct Keyring {
    keys: Vec<KeyPair>,
}

impl Keyring {
    /// Create a keyring for `n` replicas of system instance `seed`.
    pub fn new(seed: u64, n: usize) -> Self {
        Keyring {
            keys: (0..n).map(|id| KeyPair::derive(seed, id)).collect(),
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the keyring is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The keypair of replica `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn key(&self, id: usize) -> &KeyPair {
        &self.keys[id]
    }

    /// Verify that `signature` is a valid signature by its claimed signer
    /// over `digest`.
    pub fn verify(&self, digest: &Digest, signature: &Signature) -> bool {
        match self.keys.get(signature.signer) {
            Some(key) => key.sign(digest) == *signature,
            None => false,
        }
    }

    /// Verify a signature claimed to be from a specific replica.
    pub fn verify_from(&self, expected_signer: usize, digest: &Digest, sig: &Signature) -> bool {
        sig.signer == expected_signer && self.verify(digest, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = KeyPair::derive(7, 0);
        let b = KeyPair::derive(7, 0);
        let c = KeyPair::derive(7, 1);
        let d = KeyPair::derive(8, 0);
        assert_eq!(a, b);
        assert_ne!(a.public, c.public);
        assert_ne!(a.public, d.public);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let ring = Keyring::new(42, 4);
        let digest = Digest::of(b"proposal");
        let sig = ring.key(2).sign(&digest);
        assert!(ring.verify(&digest, &sig));
        assert!(ring.verify_from(2, &digest, &sig));
        assert!(!ring.verify_from(1, &digest, &sig));
    }

    #[test]
    fn wrong_message_fails_verification() {
        let ring = Keyring::new(1, 4);
        let sig = ring.key(0).sign(&Digest::of(b"a"));
        assert!(!ring.verify(&Digest::of(b"b"), &sig));
    }

    #[test]
    fn forged_signer_fails_verification() {
        let ring = Keyring::new(1, 4);
        let digest = Digest::of(b"msg");
        // Replica 3 signs, then claims the signature came from replica 0.
        let mut sig = ring.key(3).sign(&digest);
        sig.signer = 0;
        assert!(!ring.verify(&digest, &sig));
    }

    #[test]
    fn out_of_range_signer_rejected() {
        let ring = Keyring::new(1, 4);
        let digest = Digest::of(b"msg");
        let mut sig = ring.key(0).sign(&digest);
        sig.signer = 99;
        assert!(!ring.verify(&digest, &sig));
    }

    #[test]
    fn signed_wrapper_verifies() {
        let ring = Keyring::new(3, 4);
        let signed = Signed::new(b"hello".to_vec(), ring.key(1));
        assert!(signed.verify(&ring));
        let tampered = Signed {
            value: b"hellp".to_vec(),
            signature: signed.signature,
        };
        assert!(!tampered.verify(&ring));
    }
}
