//! Quorum certificates and vote aggregation.
//!
//! HotStuff-family protocols certify a proposal with a quorum certificate
//! (QC): a collection of `q` partial signatures over the same digest. In
//! Kauri and OptiTree, intermediate nodes aggregate the votes of their
//! children before forwarding them towards the root; [`VoteAggregate`] models
//! such an aggregate, including the OptiTree rule that an aggregate must
//! carry a vote *or an explicit suspicion* for every child (§6.3).

use crate::digest::Digest;
use crate::keys::{Keyring, Signature, SIGNATURE_WIRE_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One replica's signature share over a proposal digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialSignature {
    /// The replica that voted.
    pub signer: usize,
    /// Digest the vote refers to.
    pub digest: Digest,
    /// The signature over the digest.
    pub signature: Signature,
}

impl PartialSignature {
    /// Create a partial signature from an existing signature.
    pub fn new(signer: usize, digest: Digest, signature: Signature) -> Self {
        PartialSignature {
            signer,
            digest,
            signature,
        }
    }

    /// Verify this share.
    pub fn verify(&self, keyring: &Keyring) -> bool {
        self.signature.signer == self.signer && keyring.verify(&self.digest, &self.signature)
    }

    /// Wire size of one share.
    pub fn wire_bytes() -> usize {
        8 + 32 + SIGNATURE_WIRE_BYTES
    }
}

/// A quorum certificate: at least `threshold` distinct valid votes over one digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct QuorumCertificate {
    /// Digest certified by the quorum.
    pub digest: Digest,
    /// View / round in which the certificate was formed.
    pub view: u64,
    /// The signature shares.
    pub shares: Vec<PartialSignature>,
}

impl QuorumCertificate {
    /// The genesis certificate (no shares, zero digest) used to bootstrap chains.
    pub fn genesis() -> Self {
        QuorumCertificate {
            digest: Digest::ZERO,
            view: 0,
            shares: Vec::new(),
        }
    }

    /// Build a certificate from shares that vote for `digest` in `view`.
    pub fn new(digest: Digest, view: u64, shares: Vec<PartialSignature>) -> Self {
        QuorumCertificate {
            digest,
            view,
            shares,
        }
    }

    /// Number of *distinct* signers among the shares.
    pub fn distinct_signers(&self) -> usize {
        self.shares
            .iter()
            .map(|s| s.signer)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// The set of distinct signers.
    pub fn signers(&self) -> BTreeSet<usize> {
        self.shares.iter().map(|s| s.signer).collect()
    }

    /// Verify the certificate: every share is valid, refers to this digest,
    /// and at least `threshold` distinct replicas signed. The genesis
    /// certificate verifies trivially.
    pub fn verify(&self, keyring: &Keyring, threshold: usize) -> bool {
        if self.digest == Digest::ZERO && self.shares.is_empty() {
            return true;
        }
        if self.distinct_signers() < threshold {
            return false;
        }
        self.shares
            .iter()
            .all(|s| s.digest == self.digest && s.verify(keyring))
    }

    /// Wire size of the certificate.
    pub fn wire_bytes(&self) -> usize {
        32 + 8 + self.shares.len() * PartialSignature::wire_bytes()
    }
}

/// What an aggregate carries for one child: either its vote or an explicit
/// suspicion that the child did not respond in time (OptiTree's misbehavior
/// rule requires one entry per child, §6.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateEntry {
    /// The child voted.
    Vote(PartialSignature),
    /// The aggregator suspects the child of not responding.
    Suspected { child: usize },
}

/// Votes aggregated by an intermediate tree node on behalf of its subtree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteAggregate {
    /// The aggregating (intermediate) node.
    pub aggregator: usize,
    /// Digest being voted on.
    pub digest: Digest,
    /// One entry per child, plus the aggregator's own vote.
    pub entries: Vec<AggregateEntry>,
}

impl VoteAggregate {
    /// Create an aggregate.
    pub fn new(aggregator: usize, digest: Digest, entries: Vec<AggregateEntry>) -> Self {
        VoteAggregate {
            aggregator,
            digest,
            entries,
        }
    }

    /// All valid votes contained in the aggregate.
    pub fn votes(&self) -> Vec<&PartialSignature> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                AggregateEntry::Vote(v) => Some(v),
                AggregateEntry::Suspected { .. } => None,
            })
            .collect()
    }

    /// Children the aggregator explicitly suspected.
    pub fn suspected(&self) -> Vec<usize> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                AggregateEntry::Suspected { child } => Some(*child),
                AggregateEntry::Vote(_) => None,
            })
            .collect()
    }

    /// OptiTree validity rule: the aggregate must account for the aggregator
    /// and each of its `children`, either with a vote or a suspicion. A
    /// missing entry is proof of misbehavior against the aggregator.
    pub fn is_complete(&self, children: &[usize]) -> bool {
        let mut accounted: BTreeSet<usize> = BTreeSet::new();
        for e in &self.entries {
            match e {
                AggregateEntry::Vote(v) => {
                    accounted.insert(v.signer);
                }
                AggregateEntry::Suspected { child } => {
                    accounted.insert(*child);
                }
            }
        }
        accounted.contains(&self.aggregator) && children.iter().all(|c| accounted.contains(c))
    }

    /// Verify all contained votes against the keyring and digest.
    pub fn verify_votes(&self, keyring: &Keyring) -> bool {
        self.votes()
            .iter()
            .all(|v| v.digest == self.digest && v.verify(keyring))
    }

    /// Wire size of the aggregate.
    pub fn wire_bytes(&self) -> usize {
        8 + 32
            + self
                .entries
                .iter()
                .map(|e| match e {
                    AggregateEntry::Vote(_) => PartialSignature::wire_bytes(),
                    AggregateEntry::Suspected { .. } => 8,
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keyring;

    fn share(ring: &Keyring, id: usize, digest: Digest) -> PartialSignature {
        PartialSignature::new(id, digest, ring.key(id).sign(&digest))
    }

    #[test]
    fn qc_verifies_with_threshold() {
        let ring = Keyring::new(1, 7);
        let d = Digest::of(b"block");
        let shares: Vec<_> = (0..5).map(|i| share(&ring, i, d)).collect();
        let qc = QuorumCertificate::new(d, 3, shares);
        assert!(qc.verify(&ring, 5));
        assert!(!qc.verify(&ring, 6));
        assert_eq!(qc.distinct_signers(), 5);
    }

    #[test]
    fn qc_rejects_duplicate_signers_towards_threshold() {
        let ring = Keyring::new(1, 4);
        let d = Digest::of(b"block");
        let s = share(&ring, 0, d);
        let qc = QuorumCertificate::new(d, 1, vec![s, s, s]);
        assert_eq!(qc.distinct_signers(), 1);
        assert!(!qc.verify(&ring, 2));
    }

    #[test]
    fn qc_rejects_share_for_other_digest() {
        let ring = Keyring::new(1, 4);
        let d1 = Digest::of(b"a");
        let d2 = Digest::of(b"b");
        let shares = vec![share(&ring, 0, d1), share(&ring, 1, d2)];
        let qc = QuorumCertificate::new(d1, 1, shares);
        assert!(!qc.verify(&ring, 2));
    }

    #[test]
    fn genesis_qc_verifies() {
        let ring = Keyring::new(1, 4);
        assert!(QuorumCertificate::genesis().verify(&ring, 3));
    }

    #[test]
    fn qc_wire_size_grows_with_shares() {
        let ring = Keyring::new(1, 10);
        let d = Digest::of(b"x");
        let small = QuorumCertificate::new(d, 0, (0..3).map(|i| share(&ring, i, d)).collect());
        let large = QuorumCertificate::new(d, 0, (0..9).map(|i| share(&ring, i, d)).collect());
        assert!(large.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn aggregate_completeness_requires_all_children() {
        let ring = Keyring::new(1, 6);
        let d = Digest::of(b"blk");
        let children = vec![2, 3, 4];
        let complete = VoteAggregate::new(
            1,
            d,
            vec![
                AggregateEntry::Vote(share(&ring, 1, d)),
                AggregateEntry::Vote(share(&ring, 2, d)),
                AggregateEntry::Suspected { child: 3 },
                AggregateEntry::Vote(share(&ring, 4, d)),
            ],
        );
        assert!(complete.is_complete(&children));
        assert_eq!(complete.suspected(), vec![3]);
        assert_eq!(complete.votes().len(), 3);
        assert!(complete.verify_votes(&ring));

        let incomplete = VoteAggregate::new(
            1,
            d,
            vec![
                AggregateEntry::Vote(share(&ring, 1, d)),
                AggregateEntry::Vote(share(&ring, 2, d)),
            ],
        );
        assert!(!incomplete.is_complete(&children));
    }

    #[test]
    fn aggregate_missing_own_vote_is_incomplete() {
        let ring = Keyring::new(1, 6);
        let d = Digest::of(b"blk");
        let agg = VoteAggregate::new(1, d, vec![AggregateEntry::Vote(share(&ring, 2, d))]);
        assert!(!agg.is_complete(&[2]));
    }

    #[test]
    fn aggregate_detects_invalid_vote() {
        let ring = Keyring::new(1, 6);
        let d = Digest::of(b"blk");
        let mut bad = share(&ring, 2, d);
        bad.signer = 3; // claims to be from 3, signed by 2
        let agg = VoteAggregate::new(1, d, vec![AggregateEntry::Vote(bad)]);
        assert!(!agg.verify_votes(&ring));
    }
}
