//! # crypto — simulated cryptographic substrate
//!
//! BFT protocols rely on digital signatures, quorum certificates, and
//! transferable proofs of misbehavior. The OptiLog reproduction runs entirely
//! inside a deterministic simulator, so this crate provides a *simulated*
//! authenticator scheme that preserves the three properties the protocols
//! actually depend on:
//!
//! 1. **Unforgeability between correct parties** — a signature over a message
//!    verifies only for the keypair that produced it (keyed SHA-256; within
//!    the simulation no party knows another party's secret, so forging would
//!    require guessing a 256-bit value).
//! 2. **Transferability** — signatures, votes, and quorum certificates can be
//!    forwarded and re-verified by third parties, which is what
//!    proof-of-misbehavior requires.
//! 3. **Realistic sizes** — every artifact reports its wire size so the
//!    Fig 13 proposal-size experiment can be reproduced.
//!
//! SHA-256 is implemented from scratch in [`sha256`] (FIPS 180-4) and tested
//! against the standard test vectors, keeping the crate dependency-free.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod digest;
pub mod keys;
pub mod misbehavior;
pub mod quorum;
pub mod sha256;

pub use digest::{Digest, Hashable};
pub use keys::{KeyPair, Keyring, PublicKey, SecretKey, Signature, Signed};
pub use misbehavior::{Complaint, MisbehaviorKind, MisbehaviorProof};
pub use quorum::{PartialSignature, QuorumCertificate, VoteAggregate};
pub use sha256::sha256;
