//! Content digests and a hashing trait for protocol data structures.

use crate::sha256::{sha256, Sha256};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-byte SHA-256 digest identifying a block, proposal, or message body.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the parent of genesis blocks.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hash arbitrary bytes.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Hash the concatenation of several byte slices (domain-separated by
    /// length prefixes so `["ab","c"]` and `["a","bc"]` hash differently).
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(&(p.len() as u64).to_le_bytes());
            h.update(p);
        }
        Digest(h.finalize())
    }

    /// First 8 bytes as a short hex string (for logs and debugging).
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short())
    }
}

/// Types that can be hashed into a [`Digest`] for signing.
///
/// Implementors should feed every field that determines the message's
/// semantics into the hasher; two messages with equal digests are treated as
/// identical by equivocation detection.
pub trait Hashable {
    /// Compute the content digest.
    fn digest(&self) -> Digest;
}

impl Hashable for Vec<u8> {
    fn digest(&self) -> Digest {
        Digest::of(self)
    }
}

impl Hashable for &[u8] {
    fn digest(&self) -> Digest {
        Digest::of(self)
    }
}

impl Hashable for Digest {
    fn digest(&self) -> Digest {
        *self
    }
}

impl Hashable for String {
    fn digest(&self) -> Digest {
        Digest::of(self.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_parts_is_length_prefixed() {
        let a = Digest::of_parts(&[b"ab", b"c"]);
        let b = Digest::of_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn of_matches_sha256() {
        assert_eq!(Digest::of(b"abc").0, sha256(b"abc"));
    }

    #[test]
    fn zero_digest_is_all_zero() {
        assert!(Digest::ZERO.0.iter().all(|&b| b == 0));
    }

    #[test]
    fn short_and_display() {
        let d = Digest::of(b"abc");
        assert_eq!(d.short().len(), 8);
        assert_eq!(format!("{d}"), d.short());
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn hashable_impls_agree() {
        let v: Vec<u8> = b"hello".to_vec();
        let s: &[u8] = b"hello";
        assert_eq!(v.digest(), s.digest());
        assert_eq!("hello".to_string().digest(), Digest::of(b"hello"));
        let d = Digest::of(b"x");
        assert_eq!(d.digest(), d);
    }
}
