//! Transferable proofs of misbehavior.
//!
//! OptiLog's MisbehaviorSensor raises a *complaint* when it observes provable
//! protocol violations: equivocation (two conflicting signed messages for the
//! same view), invalid signatures or certificates, and — for OptiTree — an
//! incomplete vote aggregate (§6.3). Complaints are signed, proposed through
//! the log, and verified by every replica's MisbehaviorMonitor before the
//! accused replica is added to the provably-faulty set F.

use crate::digest::{Digest, Hashable};
use crate::keys::{Keyring, Signature, SIGNATURE_WIRE_BYTES};
use crate::quorum::{QuorumCertificate, VoteAggregate};
use serde::{Deserialize, Serialize};

/// The kinds of provable misbehavior the sensor can report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MisbehaviorKind {
    /// The accused signed two different digests for the same view, although
    /// the protocol requires it to send identical messages.
    Equivocation {
        /// View in which the equivocation happened.
        view: u64,
        /// First signed digest.
        first: (Digest, Signature),
        /// Conflicting signed digest.
        second: (Digest, Signature),
    },
    /// The accused produced a signature that does not verify.
    InvalidSignature {
        /// Digest the signature claims to cover.
        digest: Digest,
        /// The invalid signature.
        signature: Signature,
    },
    /// The accused presented a quorum certificate that does not verify.
    InvalidCertificate {
        /// The certificate, carried for independent verification.
        certificate: QuorumCertificate,
        /// The quorum threshold it should have met.
        threshold: usize,
    },
    /// An intermediate node forwarded an aggregate that does not account for
    /// every child with a vote or a suspicion (OptiTree rule, §6.3).
    IncompleteAggregate {
        /// The offending aggregate.
        aggregate: VoteAggregate,
        /// The children the aggregate was responsible for.
        children: Vec<usize>,
    },
}

/// A proof of misbehavior against one replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisbehaviorProof {
    /// The replica accused of misbehaving.
    pub accused: usize,
    /// Evidence.
    pub kind: MisbehaviorKind,
}

impl MisbehaviorProof {
    /// Verify the proof is conclusive: a third party accepting this returns
    /// `true` only when the evidence indeed incriminates `accused`.
    pub fn verify(&self, keyring: &Keyring) -> bool {
        match &self.kind {
            MisbehaviorKind::Equivocation { first, second, .. } => {
                // Both signatures must be by the accused, valid, and over
                // *different* digests.
                first.0 != second.0
                    && first.1.signer == self.accused
                    && second.1.signer == self.accused
                    && keyring.verify(&first.0, &first.1)
                    && keyring.verify(&second.0, &second.1)
            }
            MisbehaviorKind::InvalidSignature { digest, signature } => {
                // The signature claims to be from the accused but does not verify.
                signature.signer == self.accused && !keyring.verify(digest, signature)
            }
            MisbehaviorKind::InvalidCertificate {
                certificate,
                threshold,
            } => !certificate.verify(keyring, *threshold),
            MisbehaviorKind::IncompleteAggregate {
                aggregate,
                children,
            } => aggregate.aggregator == self.accused && !aggregate.is_complete(children),
        }
    }

    /// Approximate wire size of the proof in bytes (used by the Fig 13
    /// proposal-size experiment; proofs dominated by embedded certificates).
    pub fn wire_bytes(&self) -> usize {
        8 + match &self.kind {
            MisbehaviorKind::Equivocation { .. } => 8 + 2 * (32 + SIGNATURE_WIRE_BYTES),
            MisbehaviorKind::InvalidSignature { .. } => 32 + SIGNATURE_WIRE_BYTES,
            MisbehaviorKind::InvalidCertificate { certificate, .. } => 8 + certificate.wire_bytes(),
            MisbehaviorKind::IncompleteAggregate { aggregate, .. } => {
                aggregate.wire_bytes() + 8 * aggregate.entries.len()
            }
        }
    }
}

/// A signed complaint carrying a proof, as appended to the shared log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Complaint {
    /// The replica raising the complaint.
    pub reporter: usize,
    /// The proof.
    pub proof: MisbehaviorProof,
    /// Reporter's signature over the proof digest.
    pub signature: Signature,
}

impl Hashable for MisbehaviorProof {
    fn digest(&self) -> Digest {
        // Hash a compact structural encoding of the proof.
        let tag: u8 = match self.kind {
            MisbehaviorKind::Equivocation { .. } => 1,
            MisbehaviorKind::InvalidSignature { .. } => 2,
            MisbehaviorKind::InvalidCertificate { .. } => 3,
            MisbehaviorKind::IncompleteAggregate { .. } => 4,
        };
        Digest::of_parts(&[b"misbehavior", &[tag], &self.accused.to_le_bytes()])
    }
}

impl Complaint {
    /// Create and sign a complaint.
    pub fn new(reporter: usize, proof: MisbehaviorProof, keyring: &Keyring) -> Self {
        let signature = keyring.key(reporter).sign(&proof.digest());
        Complaint {
            reporter,
            proof,
            signature,
        }
    }

    /// Verify the reporter's signature and the embedded proof.
    pub fn verify(&self, keyring: &Keyring) -> bool {
        keyring.verify_from(self.reporter, &self.proof.digest(), &self.signature)
            && self.proof.verify(keyring)
    }

    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + SIGNATURE_WIRE_BYTES + self.proof.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::{AggregateEntry, PartialSignature};

    fn ring() -> Keyring {
        Keyring::new(99, 7)
    }

    #[test]
    fn equivocation_proof_verifies() {
        let ring = ring();
        let d1 = Digest::of(b"proposal-a");
        let d2 = Digest::of(b"proposal-b");
        let proof = MisbehaviorProof {
            accused: 2,
            kind: MisbehaviorKind::Equivocation {
                view: 5,
                first: (d1, ring.key(2).sign(&d1)),
                second: (d2, ring.key(2).sign(&d2)),
            },
        };
        assert!(proof.verify(&ring));
    }

    #[test]
    fn equivocation_same_digest_is_not_proof() {
        let ring = ring();
        let d = Digest::of(b"same");
        let proof = MisbehaviorProof {
            accused: 2,
            kind: MisbehaviorKind::Equivocation {
                view: 5,
                first: (d, ring.key(2).sign(&d)),
                second: (d, ring.key(2).sign(&d)),
            },
        };
        assert!(!proof.verify(&ring));
    }

    #[test]
    fn equivocation_framing_detected() {
        let ring = ring();
        let d1 = Digest::of(b"a");
        let d2 = Digest::of(b"b");
        // Reporter tries to frame replica 2 using replica 3's signature.
        let proof = MisbehaviorProof {
            accused: 2,
            kind: MisbehaviorKind::Equivocation {
                view: 5,
                first: (d1, ring.key(2).sign(&d1)),
                second: (d2, ring.key(3).sign(&d2)),
            },
        };
        assert!(!proof.verify(&ring));
    }

    #[test]
    fn invalid_signature_proof() {
        let ring = ring();
        let d = Digest::of(b"msg");
        let mut bad = ring.key(4).sign(&Digest::of(b"other"));
        bad.signer = 4;
        let proof = MisbehaviorProof {
            accused: 4,
            kind: MisbehaviorKind::InvalidSignature {
                digest: d,
                signature: bad,
            },
        };
        assert!(proof.verify(&ring));

        // A *valid* signature is not proof of misbehavior.
        let good = ring.key(4).sign(&d);
        let not_proof = MisbehaviorProof {
            accused: 4,
            kind: MisbehaviorKind::InvalidSignature {
                digest: d,
                signature: good,
            },
        };
        assert!(!not_proof.verify(&ring));
    }

    #[test]
    fn invalid_certificate_proof() {
        let ring = ring();
        let d = Digest::of(b"blk");
        let shares = vec![PartialSignature::new(0, d, ring.key(0).sign(&d))];
        let weak = QuorumCertificate::new(d, 1, shares);
        let proof = MisbehaviorProof {
            accused: 1,
            kind: MisbehaviorKind::InvalidCertificate {
                certificate: weak,
                threshold: 5,
            },
        };
        assert!(proof.verify(&ring));
    }

    #[test]
    fn incomplete_aggregate_proof() {
        let ring = ring();
        let d = Digest::of(b"blk");
        let agg = VoteAggregate::new(
            3,
            d,
            vec![AggregateEntry::Vote(PartialSignature::new(
                3,
                d,
                ring.key(3).sign(&d),
            ))],
        );
        let proof = MisbehaviorProof {
            accused: 3,
            kind: MisbehaviorKind::IncompleteAggregate {
                aggregate: agg.clone(),
                children: vec![5, 6],
            },
        };
        assert!(proof.verify(&ring));

        // Complete aggregates do not incriminate.
        let complete = VoteAggregate::new(
            3,
            d,
            vec![
                AggregateEntry::Vote(PartialSignature::new(3, d, ring.key(3).sign(&d))),
                AggregateEntry::Suspected { child: 5 },
                AggregateEntry::Suspected { child: 6 },
            ],
        );
        let not_proof = MisbehaviorProof {
            accused: 3,
            kind: MisbehaviorKind::IncompleteAggregate {
                aggregate: complete,
                children: vec![5, 6],
            },
        };
        assert!(!not_proof.verify(&ring));
    }

    #[test]
    fn complaint_signature_checked() {
        let ring = ring();
        let d1 = Digest::of(b"x");
        let d2 = Digest::of(b"y");
        let proof = MisbehaviorProof {
            accused: 1,
            kind: MisbehaviorKind::Equivocation {
                view: 1,
                first: (d1, ring.key(1).sign(&d1)),
                second: (d2, ring.key(1).sign(&d2)),
            },
        };
        let complaint = Complaint::new(0, proof.clone(), &ring);
        assert!(complaint.verify(&ring));

        let forged = Complaint {
            reporter: 5,
            proof,
            signature: complaint.signature,
        };
        assert!(!forged.verify(&ring));
    }

    #[test]
    fn proof_sizes_reflect_contents() {
        let ring = ring();
        let d = Digest::of(b"blk");
        let shares: Vec<_> = (0..5)
            .map(|i| PartialSignature::new(i, d, ring.key(i).sign(&d)))
            .collect();
        let cert_proof = MisbehaviorProof {
            accused: 0,
            kind: MisbehaviorKind::InvalidCertificate {
                certificate: QuorumCertificate::new(d, 1, shares),
                threshold: 6,
            },
        };
        let sig_proof = MisbehaviorProof {
            accused: 0,
            kind: MisbehaviorKind::InvalidSignature {
                digest: d,
                signature: ring.key(0).sign(&d),
            },
        };
        assert!(cert_proof.wire_bytes() > sig_proof.wire_bytes());
    }
}
