//! Safety invariant, checked inside the simulator: every replica observes
//! the same digest for each view it stores. The replicas themselves are
//! runtime-agnostic; the simulator is pulled in here (as a dev-dependency
//! only) to drive them deterministically.

use crypto::Digest;
use hotstuff::{HotStuffConfig, HotStuffNode, Pacemaker};
use netsim::{Duration, SimTime, Simulation, SimulationConfig, UniformLatency};
use std::collections::BTreeMap;

#[test]
fn replicas_agree_on_committed_prefix() {
    let cfg = HotStuffConfig {
        run_for: Duration::from_secs(5),
        ..HotStuffConfig::new(7, Pacemaker::Fixed { leader: 2 })
    };
    let n = cfg.system.n;
    let nodes: Vec<HotStuffNode> = (0..n)
        .map(|id| HotStuffNode::new(id, cfg.system, cfg.pacemaker, 10))
        .collect();
    let latency = Box::new(UniformLatency::new(n, Duration::from_millis(20)));
    let mut sim = Simulation::new(nodes, latency).with_config(SimulationConfig {
        horizon: SimTime::ZERO + cfg.run_for,
        max_events: 10_000_000,
    });
    sim.run();
    // Every replica observed the same digest for each view it stored.
    let reference: BTreeMap<u64, Digest> = sim.node(0).view_digests().into_iter().collect();
    for id in 1..n {
        for (v, d) in sim.node(id).view_digests() {
            if let Some(r) = reference.get(&v) {
                assert_eq!(r, &d, "view {v} digest mismatch at replica {id}");
            }
        }
    }
}
