//! Leader-selection pacemakers.

use serde::{Deserialize, Serialize};

/// Decides which replica leads each view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pacemaker {
    /// One replica leads every view (the paper's HotStuff-fixed baseline and
    /// the mode used for throughput experiments, §7.3).
    Fixed {
        /// The fixed leader.
        leader: usize,
    },
    /// The leader rotates round-robin every view (HotStuff-rr).
    RoundRobin,
}

impl Pacemaker {
    /// Leader of a view in an `n`-replica system.
    pub fn leader(&self, view: u64, n: usize) -> usize {
        match self {
            Pacemaker::Fixed { leader } => *leader,
            Pacemaker::RoundRobin => (view % n as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_leader_never_changes() {
        let p = Pacemaker::Fixed { leader: 3 };
        assert_eq!(p.leader(0, 7), 3);
        assert_eq!(p.leader(100, 7), 3);
    }

    #[test]
    fn round_robin_rotates() {
        let p = Pacemaker::RoundRobin;
        assert_eq!(p.leader(0, 4), 0);
        assert_eq!(p.leader(1, 4), 1);
        assert_eq!(p.leader(5, 4), 1);
    }
}
