//! The chained HotStuff replica (the simulation harness lives in
//! `lab::harness::hotstuff`).
//!
//! Protocol sketch (chained HotStuff with implicit pacemaker progress):
//!
//! 1. The leader of view `v` proposes a block carrying the quorum
//!    certificate of view `v − 1` and a proposal timestamp.
//! 2. Every replica stores the block, commits the block of view `v − 2` once
//!    the chain `v − 2, v − 1, v` is contiguous (three-chain rule), and sends
//!    its vote for view `v` to the leader of view `v + 1`.
//! 3. That leader forms a quorum certificate from `n − f` votes and proposes
//!    view `v + 1`.
//!
//! Batches come from a saturated [`rsm::BlockSource`], matching the paper's
//! workload of 1000 empty commands per block — or, when the run is driven by
//! an open-loop [`traffic::SharedTrafficQueue`], from the leader-side
//! admission queue: the leader of the next view pulls a size-or-timeout
//! batch, and when none is ready yet it parks the view and wakes up at the
//! queue's next flush instant instead of proposing pre-filled blocks.

use crate::pacemaker::Pacemaker;
use crypto::{Digest, Hashable};
use rsm::{
    misbehavior, Block, BlockSource, CommitStats, DelayStage, MisbehaviorPlan, SystemConfig,
};
use runtime::{Context, Duration, Node, NodeId, SimTime, TimerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use telemetry::{Stage, Telemetry};
use traffic::SharedTrafficQueue;

/// Held-proposal timers encode a release sequence number in the tag.
const TIMER_HELD_BASE: u64 = 1_000_000;
/// Wake-up when the traffic queue's next batch becomes flushable.
const TIMER_TRAFFIC_READY: u64 = 2;

/// Messages exchanged by HotStuff replicas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum HotStuffMessage {
    /// A block proposal for `view`, implicitly certifying view `view − 1`.
    Proposal {
        /// The proposal's view.
        view: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// Number of commands batched in the block.
        commands: usize,
        /// Proposal timestamp in µs (for consensus-latency measurement).
        timestamp_us: u64,
    },
    /// A vote for `view`, sent to the leader of `view + 1`.
    Vote {
        /// The voted view.
        view: u64,
        /// Digest voted for.
        digest: Digest,
        /// The voting replica.
        voter: usize,
    },
}

/// Per-view bookkeeping at a replica.
#[derive(Debug, Clone)]
struct ViewEntry {
    digest: Digest,
    commands: usize,
    proposal_ts: SimTime,
    committed: bool,
}

/// One HotStuff replica.
pub struct HotStuffNode {
    id: usize,
    config: SystemConfig,
    pacemaker: Pacemaker,
    batch: BlockSource,
    views: BTreeMap<u64, ViewEntry>,
    votes: BTreeMap<u64, BTreeSet<usize>>,
    highest_proposed: u64,
    /// Scripted proposal-delay attack stages for this replica (empty when
    /// correct): while a stage is active, the leader *holds* each proposal
    /// broadcast by the stage's delay, keeping the proposal timestamp
    /// honest so the hold is visible as inflated consensus latency.
    delays: Vec<DelayStage>,
    /// Proposals held by an active delay stage, keyed by release tag.
    held: BTreeMap<u64, HotStuffMessage>,
    next_held: u64,
    /// Open-loop traffic source (`None` = the saturated paper workload).
    traffic: Option<SharedTrafficQueue>,
    /// View whose proposal is parked until the traffic queue can flush.
    pending_view: Option<u64>,
    /// Traffic batch ids by proposed view (proposer side), echoed to the
    /// queue when the view commits so end-to-end latency can be accounted.
    batch_ids: BTreeMap<u64, u64>,
    /// Commit statistics (consensus latency = proposal to three-chain commit).
    pub stats: CommitStats,
    /// Observability handle (disabled by default).
    telemetry: Telemetry,
}

impl HotStuffNode {
    /// Create a replica.
    pub fn new(id: usize, config: SystemConfig, pacemaker: Pacemaker, batch_size: usize) -> Self {
        HotStuffNode {
            id,
            config,
            pacemaker,
            batch: BlockSource::saturated(batch_size),
            views: BTreeMap::new(),
            votes: BTreeMap::new(),
            highest_proposed: 0,
            delays: Vec::new(),
            held: BTreeMap::new(),
            next_held: 0,
            traffic: None,
            pending_view: None,
            batch_ids: BTreeMap::new(),
            stats: CommitStats::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Install scripted proposal-delay stages (the protocol-level attack).
    pub fn with_delays(mut self, delays: Vec<DelayStage>) -> Self {
        self.delays = delays;
        self
    }

    /// Drive proposals from an open-loop traffic queue instead of the
    /// saturated source.
    pub fn with_traffic(mut self, traffic: Option<SharedTrafficQueue>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Install a telemetry handle (propose/forward/vote/commit spans plus
    /// per-replica commit metrics).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn leader_of(&self, view: u64) -> usize {
        self.pacemaker.leader(view, self.config.n)
    }

    /// Highest view this replica has proposed (harness diagnostics).
    pub fn highest_proposed(&self) -> u64 {
        self.highest_proposed
    }

    /// Number of views this replica has stored.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// `(view, digest)` for every stored view, in view order — the
    /// agreement-invariant surface harnesses and cluster tests check
    /// (any two replicas must agree on the digest of every shared view).
    pub fn view_digests(&self) -> Vec<(u64, Digest)> {
        self.views.iter().map(|(&v, e)| (v, e.digest)).collect()
    }

    /// Views this replica has committed, in view order.
    pub fn committed_views(&self) -> Vec<u64> {
        self.views
            .iter()
            .filter(|(_, e)| e.committed)
            .map(|(&v, _)| v)
            .collect()
    }

    fn propose(&mut self, ctx: &mut Context<HotStuffMessage>, view: u64) {
        if view <= self.highest_proposed {
            return;
        }
        let commands = if let Some(queue) = &self.traffic {
            match queue.try_batch_at(ctx.now, self.id) {
                Some(batch) => {
                    self.batch_ids.insert(view, batch.id);
                    batch.commands
                }
                // A committed batch needs two successor views (three-chain):
                // with an empty queue, an earlier command-bearing view would
                // otherwise wait for the *next arrival burst* to commit. An
                // empty flush block drives the chain instead; at most two
                // are needed before every payload view has committed and
                // the leader can park for real.
                None if self.views.values().any(|e| !e.committed && e.commands > 0) => Vec::new(),
                None => {
                    // Nothing flushable, nothing in flight: park the view
                    // and wake up when the queue's size or timeout condition
                    // can next fire. (The chain is idle until then — no
                    // other leader can make progress before this view.)
                    self.pending_view = Some(self.pending_view.unwrap_or(0).max(view));
                    if let Some(at) = queue.next_ready_at(ctx.now) {
                        ctx.set_timer(at.since(ctx.now), TIMER_TRAFFIC_READY);
                    }
                    return;
                }
            }
        } else {
            self.batch.next_batch()
        };
        self.highest_proposed = view;
        let block = Block::new(Digest::ZERO, view, view, self.id, commands);
        let digest = block.digest();
        let msg = HotStuffMessage::Proposal {
            view,
            digest,
            commands: block.len(),
            timestamp_us: ctx.now.as_micros(),
        };
        // A scripted attacker holds the broadcast (not its local processing):
        // the timestamp stays honest, so the withheld dissemination shows up
        // as inflated consensus latency at every replica — the tree/star
        // analogue of the PBFT Pre-Prepare delay attack.
        let hold = misbehavior::hold_at(&self.delays, ctx.now);
        self.telemetry.instant(
            Stage::Propose,
            self.id,
            view,
            ctx.now.as_micros(),
            vec![("commands", block.len() as f64)],
        );
        if hold.is_zero() {
            let others: Vec<NodeId> = (0..self.config.n).filter(|&r| r != self.id).collect();
            ctx.multicast(&others, msg.clone());
        } else {
            // The dissemination hold is visible as its own span under the
            // attacker's track — the widening bar of the Fig 7 trace.
            self.telemetry.span(
                Stage::Hold,
                self.id,
                view,
                ctx.now.as_micros(),
                hold.as_micros(),
                vec![],
            );
            let tag = self.next_held;
            self.next_held += 1;
            self.held.insert(tag, msg);
            ctx.set_timer(hold, TIMER_HELD_BASE + tag);
        }
        self.handle_proposal(ctx, view, digest, block.len(), ctx.now.as_micros());
    }

    fn release_held(&mut self, ctx: &mut Context<HotStuffMessage>, tag: u64) {
        if let Some(msg) = self.held.remove(&tag) {
            let others: Vec<NodeId> = (0..self.config.n).filter(|&r| r != self.id).collect();
            ctx.multicast(&others, msg);
        }
    }

    fn handle_proposal(
        &mut self,
        ctx: &mut Context<HotStuffMessage>,
        view: u64,
        digest: Digest,
        commands: usize,
        timestamp_us: u64,
    ) {
        self.views.entry(view).or_insert(ViewEntry {
            digest,
            commands,
            proposal_ts: SimTime::from_micros(timestamp_us),
            committed: false,
        });

        // Three-chain commit: views v-2, v-1, v contiguous → commit v-2.
        if view >= 2 {
            let ready =
                self.views.contains_key(&(view - 1)) && self.views.contains_key(&(view - 2));
            if ready {
                let entry = self.views.get_mut(&(view - 2)).expect("checked");
                if !entry.committed {
                    entry.committed = true;
                    // Agreement checkpoint for the online auditor: this
                    // replica's digest for the committed view, as a gauge
                    // pair set under one registry lock so a poll never sees
                    // a seq from one commit and a digest from another.
                    let fp = telemetry::fingerprint48(&entry.digest.0) as f64;
                    let id = self.id;
                    self.telemetry.with_registry(|reg| {
                        reg.gauge_set("hotstuff.node.commit_seq", Some(id), (view - 2) as f64);
                        reg.gauge_set("hotstuff.node.commit_digest", Some(id), fp);
                    });
                    // Empty chain-flush blocks (open-loop idle) carry no
                    // commands and are not commits worth recording.
                    if entry.commands > 0 {
                        self.stats
                            .record_commit(entry.proposal_ts, ctx.now, entry.commands);
                        let (ts, commands) = (entry.proposal_ts, entry.commands);
                        self.telemetry.span(
                            Stage::Commit,
                            self.id,
                            view - 2,
                            ts.as_micros(),
                            ctx.now.since(ts).as_micros(),
                            vec![("commands", commands as f64)],
                        );
                        self.telemetry
                            .counter_add("hotstuff.node.commits", Some(self.id), 1);
                        self.telemetry.observe(
                            "hotstuff.node.commit_us",
                            Some(self.id),
                            ctx.now.since(ts).as_micros(),
                        );
                    }
                    // The proposer of the committed view reports the batch
                    // back to the traffic queue (it is the only replica that
                    // knows the batch id) for end-to-end accounting.
                    if let Some(queue) = &self.traffic {
                        if let Some(id) = self.batch_ids.remove(&(view - 2)) {
                            queue.commit_batch_in(id, ctx.now, view - 2);
                        }
                    }
                }
            }
        }

        // Vote to the leader of the next view.
        self.telemetry
            .instant(Stage::Vote, self.id, view, ctx.now.as_micros(), vec![]);
        let next_leader = self.leader_of(view + 1);
        let vote = HotStuffMessage::Vote {
            view,
            digest,
            voter: self.id,
        };
        if next_leader == self.id {
            self.handle_vote(ctx, view, self.id);
        } else {
            ctx.send(next_leader, vote);
        }
    }

    fn handle_vote(&mut self, ctx: &mut Context<HotStuffMessage>, view: u64, voter: usize) {
        let votes = self.votes.entry(view).or_default();
        votes.insert(voter);
        if votes.len() >= self.config.quorum() && self.leader_of(view + 1) == self.id {
            self.propose(ctx, view + 1);
        }
    }
}

impl Node for HotStuffNode {
    type Msg = HotStuffMessage;

    fn on_start(&mut self, ctx: &mut Context<HotStuffMessage>) {
        if self.leader_of(1) == self.id {
            self.propose(ctx, 1);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<HotStuffMessage>,
        _from: NodeId,
        msg: HotStuffMessage,
    ) {
        match msg {
            HotStuffMessage::Proposal {
                view,
                digest,
                commands,
                timestamp_us,
            } => {
                // Dissemination hop as seen by this replica: proposal
                // timestamp (honest even under a hold) → delivery.
                self.telemetry.span(
                    Stage::Forward,
                    self.id,
                    view,
                    timestamp_us,
                    ctx.now.as_micros().saturating_sub(timestamp_us),
                    vec![],
                );
                self.handle_proposal(ctx, view, digest, commands, timestamp_us)
            }
            HotStuffMessage::Vote { view, voter, .. } => self.handle_vote(ctx, view, voter),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<HotStuffMessage>, _timer: TimerId, tag: u64) {
        if tag >= TIMER_HELD_BASE {
            self.release_held(ctx, tag - TIMER_HELD_BASE);
        } else if tag == TIMER_TRAFFIC_READY {
            if let Some(view) = self.pending_view.take() {
                self.propose(ctx, view);
            }
        }
    }
}

/// Configuration of a HotStuff experiment run.
#[derive(Debug, Clone)]
pub struct HotStuffConfig {
    /// System size and fault threshold.
    pub system: SystemConfig,
    /// Leader-selection policy.
    pub pacemaker: Pacemaker,
    /// Commands per block (the paper uses 1000).
    pub batch_size: usize,
    /// Virtual run duration (the paper uses 120 s).
    pub run_for: Duration,
    /// Scripted protocol-level misbehavior (proposal-delay attacks).
    pub misbehavior: MisbehaviorPlan,
    /// Open-loop traffic source shared by every (rotating) leader; `None`
    /// keeps the saturated paper workload.
    pub traffic: Option<SharedTrafficQueue>,
    /// Telemetry handle installed on every replica (disabled by default).
    pub telemetry: Telemetry,
}

impl HotStuffConfig {
    /// The paper's default setup for `n` replicas with a fixed leader.
    pub fn new(n: usize, pacemaker: Pacemaker) -> Self {
        HotStuffConfig {
            system: SystemConfig::new(n),
            pacemaker,
            batch_size: 1000,
            run_for: Duration::from_secs(120),
            misbehavior: MisbehaviorPlan::none(),
            traffic: None,
            telemetry: Telemetry::disabled(),
        }
    }
}
