//! The chained HotStuff replica and its experiment harness.
//!
//! Protocol sketch (chained HotStuff with implicit pacemaker progress):
//!
//! 1. The leader of view `v` proposes a block carrying the quorum
//!    certificate of view `v − 1` and a proposal timestamp.
//! 2. Every replica stores the block, commits the block of view `v − 2` once
//!    the chain `v − 2, v − 1, v` is contiguous (three-chain rule), and sends
//!    its vote for view `v` to the leader of view `v + 1`.
//! 3. That leader forms a quorum certificate from `n − f` votes and proposes
//!    view `v + 1`.
//!
//! Batches come from a saturated [`rsm::BlockSource`], matching the paper's
//! workload of 1000 empty commands per block — or, when the run is driven by
//! an open-loop [`traffic::SharedTrafficQueue`], from the leader-side
//! admission queue: the leader of the next view pulls a size-or-timeout
//! batch, and when none is ready yet it parks the view and wakes up at the
//! queue's next flush instant instead of proposing pre-filled blocks.

use crate::pacemaker::Pacemaker;
use crypto::{Digest, Hashable};
use netsim::{Context, Duration, FaultPlan, LatencyModel, Node, NodeId, SimTime, Simulation, SimulationConfig, TimerId};
use rsm::{misbehavior, Block, BlockSource, CommitStats, DelayStage, MisbehaviorPlan, RunSummary, SystemConfig};
use std::collections::{BTreeMap, BTreeSet};
use telemetry::{Stage, Telemetry};
use traffic::SharedTrafficQueue;

/// Held-proposal timers encode a release sequence number in the tag.
const TIMER_HELD_BASE: u64 = 1_000_000;
/// Wake-up when the traffic queue's next batch becomes flushable.
const TIMER_TRAFFIC_READY: u64 = 2;

/// Messages exchanged by HotStuff replicas.
#[derive(Debug, Clone)]
pub enum HotStuffMessage {
    /// A block proposal for `view`, implicitly certifying view `view − 1`.
    Proposal {
        /// The proposal's view.
        view: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// Number of commands batched in the block.
        commands: usize,
        /// Proposal timestamp in µs (for consensus-latency measurement).
        timestamp_us: u64,
    },
    /// A vote for `view`, sent to the leader of `view + 1`.
    Vote {
        /// The voted view.
        view: u64,
        /// Digest voted for.
        digest: Digest,
        /// The voting replica.
        voter: usize,
    },
}

/// Per-view bookkeeping at a replica.
#[derive(Debug, Clone)]
struct ViewEntry {
    // Read only by the digest-agreement invariant check in the test module.
    #[cfg_attr(not(test), allow(dead_code))]
    digest: Digest,
    commands: usize,
    proposal_ts: SimTime,
    committed: bool,
}

/// One HotStuff replica.
pub struct HotStuffNode {
    id: usize,
    config: SystemConfig,
    pacemaker: Pacemaker,
    batch: BlockSource,
    views: BTreeMap<u64, ViewEntry>,
    votes: BTreeMap<u64, BTreeSet<usize>>,
    highest_proposed: u64,
    /// Scripted proposal-delay attack stages for this replica (empty when
    /// correct): while a stage is active, the leader *holds* each proposal
    /// broadcast by the stage's delay, keeping the proposal timestamp
    /// honest so the hold is visible as inflated consensus latency.
    delays: Vec<DelayStage>,
    /// Proposals held by an active delay stage, keyed by release tag.
    held: BTreeMap<u64, HotStuffMessage>,
    next_held: u64,
    /// Open-loop traffic source (`None` = the saturated paper workload).
    traffic: Option<SharedTrafficQueue>,
    /// View whose proposal is parked until the traffic queue can flush.
    pending_view: Option<u64>,
    /// Traffic batch ids by proposed view (proposer side), echoed to the
    /// queue when the view commits so end-to-end latency can be accounted.
    batch_ids: BTreeMap<u64, u64>,
    /// Commit statistics (consensus latency = proposal to three-chain commit).
    pub stats: CommitStats,
    /// Observability handle (disabled by default).
    telemetry: Telemetry,
}

impl HotStuffNode {
    /// Create a replica.
    pub fn new(id: usize, config: SystemConfig, pacemaker: Pacemaker, batch_size: usize) -> Self {
        HotStuffNode {
            id,
            config,
            pacemaker,
            batch: BlockSource::saturated(batch_size),
            views: BTreeMap::new(),
            votes: BTreeMap::new(),
            highest_proposed: 0,
            delays: Vec::new(),
            held: BTreeMap::new(),
            next_held: 0,
            traffic: None,
            pending_view: None,
            batch_ids: BTreeMap::new(),
            stats: CommitStats::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Install scripted proposal-delay stages (the protocol-level attack).
    pub fn with_delays(mut self, delays: Vec<DelayStage>) -> Self {
        self.delays = delays;
        self
    }

    /// Drive proposals from an open-loop traffic queue instead of the
    /// saturated source.
    pub fn with_traffic(mut self, traffic: Option<SharedTrafficQueue>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Install a telemetry handle (propose/forward/vote/commit spans plus
    /// per-replica commit metrics).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn leader_of(&self, view: u64) -> usize {
        self.pacemaker.leader(view, self.config.n)
    }

    fn propose(&mut self, ctx: &mut Context<HotStuffMessage>, view: u64) {
        if view <= self.highest_proposed {
            return;
        }
        let commands = if let Some(queue) = &self.traffic {
            match queue.try_batch_at(ctx.now, self.id) {
                Some(batch) => {
                    self.batch_ids.insert(view, batch.id);
                    batch.commands
                }
                // A committed batch needs two successor views (three-chain):
                // with an empty queue, an earlier command-bearing view would
                // otherwise wait for the *next arrival burst* to commit. An
                // empty flush block drives the chain instead; at most two
                // are needed before every payload view has committed and
                // the leader can park for real.
                None if self.views.values().any(|e| !e.committed && e.commands > 0) => Vec::new(),
                None => {
                    // Nothing flushable, nothing in flight: park the view
                    // and wake up when the queue's size or timeout condition
                    // can next fire. (The chain is idle until then — no
                    // other leader can make progress before this view.)
                    self.pending_view = Some(self.pending_view.unwrap_or(0).max(view));
                    if let Some(at) = queue.next_ready_at(ctx.now) {
                        ctx.set_timer(at.since(ctx.now), TIMER_TRAFFIC_READY);
                    }
                    return;
                }
            }
        } else {
            self.batch.next_batch()
        };
        self.highest_proposed = view;
        let block = Block::new(Digest::ZERO, view, view, self.id, commands);
        let digest = block.digest();
        let msg = HotStuffMessage::Proposal {
            view,
            digest,
            commands: block.len(),
            timestamp_us: ctx.now.as_micros(),
        };
        // A scripted attacker holds the broadcast (not its local processing):
        // the timestamp stays honest, so the withheld dissemination shows up
        // as inflated consensus latency at every replica — the tree/star
        // analogue of the PBFT Pre-Prepare delay attack.
        let hold = misbehavior::hold_at(&self.delays, ctx.now);
        self.telemetry.instant(
            Stage::Propose,
            self.id,
            view,
            ctx.now.as_micros(),
            vec![("commands", block.len() as f64)],
        );
        if hold.is_zero() {
            let others: Vec<NodeId> = (0..self.config.n).filter(|&r| r != self.id).collect();
            ctx.multicast(&others, msg.clone());
        } else {
            // The dissemination hold is visible as its own span under the
            // attacker's track — the widening bar of the Fig 7 trace.
            self.telemetry.span(
                Stage::Hold,
                self.id,
                view,
                ctx.now.as_micros(),
                hold.as_micros(),
                vec![],
            );
            let tag = self.next_held;
            self.next_held += 1;
            self.held.insert(tag, msg);
            ctx.set_timer(hold, TIMER_HELD_BASE + tag);
        }
        self.handle_proposal(ctx, view, digest, block.len(), ctx.now.as_micros());
    }

    fn release_held(&mut self, ctx: &mut Context<HotStuffMessage>, tag: u64) {
        if let Some(msg) = self.held.remove(&tag) {
            let others: Vec<NodeId> = (0..self.config.n).filter(|&r| r != self.id).collect();
            ctx.multicast(&others, msg);
        }
    }

    fn handle_proposal(
        &mut self,
        ctx: &mut Context<HotStuffMessage>,
        view: u64,
        digest: Digest,
        commands: usize,
        timestamp_us: u64,
    ) {
        self.views.entry(view).or_insert(ViewEntry {
            digest,
            commands,
            proposal_ts: SimTime::from_micros(timestamp_us),
            committed: false,
        });

        // Three-chain commit: views v-2, v-1, v contiguous → commit v-2.
        if view >= 2 {
            let ready = self.views.contains_key(&(view - 1)) && self.views.contains_key(&(view - 2));
            if ready {
                let entry = self.views.get_mut(&(view - 2)).expect("checked");
                if !entry.committed {
                    entry.committed = true;
                    // Empty chain-flush blocks (open-loop idle) carry no
                    // commands and are not commits worth recording.
                    if entry.commands > 0 {
                        self.stats
                            .record_commit(entry.proposal_ts, ctx.now, entry.commands);
                        let (ts, commands) = (entry.proposal_ts, entry.commands);
                        self.telemetry.span(
                            Stage::Commit,
                            self.id,
                            view - 2,
                            ts.as_micros(),
                            ctx.now.since(ts).as_micros(),
                            vec![("commands", commands as f64)],
                        );
                        self.telemetry.counter_add(
                            "hotstuff.node.commits",
                            Some(self.id),
                            1,
                        );
                        self.telemetry.observe(
                            "hotstuff.node.commit_us",
                            Some(self.id),
                            ctx.now.since(ts).as_micros(),
                        );
                    }
                    // The proposer of the committed view reports the batch
                    // back to the traffic queue (it is the only replica that
                    // knows the batch id) for end-to-end accounting.
                    if let Some(queue) = &self.traffic {
                        if let Some(id) = self.batch_ids.remove(&(view - 2)) {
                            queue.commit_batch(id, ctx.now);
                        }
                    }
                }
            }
        }

        // Vote to the leader of the next view.
        self.telemetry
            .instant(Stage::Vote, self.id, view, ctx.now.as_micros(), vec![]);
        let next_leader = self.leader_of(view + 1);
        let vote = HotStuffMessage::Vote {
            view,
            digest,
            voter: self.id,
        };
        if next_leader == self.id {
            self.handle_vote(ctx, view, self.id);
        } else {
            ctx.send(next_leader, vote);
        }
    }

    fn handle_vote(&mut self, ctx: &mut Context<HotStuffMessage>, view: u64, voter: usize) {
        let votes = self.votes.entry(view).or_default();
        votes.insert(voter);
        if votes.len() >= self.config.quorum() && self.leader_of(view + 1) == self.id {
            self.propose(ctx, view + 1);
        }
    }
}

impl Node for HotStuffNode {
    type Msg = HotStuffMessage;

    fn on_start(&mut self, ctx: &mut Context<HotStuffMessage>) {
        if self.leader_of(1) == self.id {
            self.propose(ctx, 1);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<HotStuffMessage>, _from: NodeId, msg: HotStuffMessage) {
        match msg {
            HotStuffMessage::Proposal {
                view,
                digest,
                commands,
                timestamp_us,
            } => {
                // Dissemination hop as seen by this replica: proposal
                // timestamp (honest even under a hold) → delivery.
                self.telemetry.span(
                    Stage::Forward,
                    self.id,
                    view,
                    timestamp_us,
                    ctx.now.as_micros().saturating_sub(timestamp_us),
                    vec![],
                );
                self.handle_proposal(ctx, view, digest, commands, timestamp_us)
            }
            HotStuffMessage::Vote { view, voter, .. } => self.handle_vote(ctx, view, voter),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<HotStuffMessage>, _timer: TimerId, tag: u64) {
        if tag >= TIMER_HELD_BASE {
            self.release_held(ctx, tag - TIMER_HELD_BASE);
        } else if tag == TIMER_TRAFFIC_READY {
            if let Some(view) = self.pending_view.take() {
                self.propose(ctx, view);
            }
        }
    }
}

/// Configuration of a HotStuff experiment run.
#[derive(Debug, Clone)]
pub struct HotStuffConfig {
    /// System size and fault threshold.
    pub system: SystemConfig,
    /// Leader-selection policy.
    pub pacemaker: Pacemaker,
    /// Commands per block (the paper uses 1000).
    pub batch_size: usize,
    /// Virtual run duration (the paper uses 120 s).
    pub run_for: Duration,
    /// Scripted protocol-level misbehavior (proposal-delay attacks).
    pub misbehavior: MisbehaviorPlan,
    /// Open-loop traffic source shared by every (rotating) leader; `None`
    /// keeps the saturated paper workload.
    pub traffic: Option<SharedTrafficQueue>,
    /// Telemetry handle installed on every replica (disabled by default).
    pub telemetry: Telemetry,
}

impl HotStuffConfig {
    /// The paper's default setup for `n` replicas with a fixed leader.
    pub fn new(n: usize, pacemaker: Pacemaker) -> Self {
        HotStuffConfig {
            system: SystemConfig::new(n),
            pacemaker,
            batch_size: 1000,
            run_for: Duration::from_secs(120),
            misbehavior: MisbehaviorPlan::none(),
            traffic: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Result of a HotStuff run.
#[derive(Debug, Clone)]
pub struct HotStuffReport {
    /// Throughput / latency summary measured at replica 0.
    pub summary: RunSummary,
    /// Per-commit `(time s, latency ms)` timeline at the observer replica,
    /// in commit order — the Fig 7-style latency timeline.
    pub latency_timeline: Vec<(f64, f64)>,
    /// Number of views driven during the run.
    pub views: u64,
    /// Simulator events processed during the run (engine-throughput metric).
    pub events: u64,
}

/// Run chained HotStuff over the given latency model and report throughput
/// and consensus latency (one row of Fig 9). `faults` injects network-level
/// adversary stages (crashes, delays) exactly as for the other substrates.
pub fn run_hotstuff(
    config: &HotStuffConfig,
    latency: Box<dyn LatencyModel>,
    faults: FaultPlan,
) -> HotStuffReport {
    let n = config.system.n;
    let nodes: Vec<HotStuffNode> = (0..n)
        .map(|id| {
            HotStuffNode::new(id, config.system, config.pacemaker, config.batch_size)
                .with_delays(config.misbehavior.stages_for(id))
                .with_traffic(config.traffic.clone())
                .with_telemetry(config.telemetry.clone())
        })
        .collect();
    let mut sim = Simulation::new(nodes, latency)
        .with_faults(faults)
        .with_config(SimulationConfig {
            horizon: SimTime::ZERO + config.run_for,
            max_events: 500_000_000,
        });
    sim.run();
    sim.record_engine_metrics(&config.telemetry);
    let views = sim.node(0).highest_proposed.max(
        sim.nodes().map(|nd| nd.views.len() as u64).max().unwrap_or(0),
    );
    // Observe at a replica that is not the scripted attacker: a delaying
    // leader commits its own views early (it processes its proposal before
    // holding the broadcast), which would hide the very latency the attack
    // inflates everywhere else.
    let observer = (0..n)
        .find(|&i| {
            sim.node(i).stats.blocks() > 0 && config.misbehavior.stages_for(i).is_empty()
        })
        .unwrap_or(0);
    let latency_timeline = sim.node(observer).stats.latency_timeline().points().to_vec();
    let summary = sim
        .node_mut(observer)
        .stats
        .summary(config.run_for.as_micros() / 1_000_000);
    HotStuffReport {
        summary,
        latency_timeline,
        views,
        events: sim.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::UniformLatency;

    fn uniform(n: usize, ms: u64) -> Box<dyn LatencyModel> {
        Box::new(UniformLatency::new(n, Duration::from_millis(ms)))
    }

    #[test]
    fn fixed_leader_commits_blocks() {
        let cfg = HotStuffConfig {
            run_for: Duration::from_secs(20),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        let report = run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none());
        // One view per ~2 one-way delays (50 ms); 20 s → ~400 views, each
        // committing a 1000-command block two views later.
        assert!(report.summary.committed_blocks > 200, "{report:?}");
        assert!(report.summary.throughput_ops > 5_000.0);
        // Commit latency ≈ 2–3 view rounds (≥ 100 ms at the leader).
        assert!(report.summary.mean_latency_ms >= 99.0);
        assert!(report.summary.mean_latency_ms < 400.0);
    }

    #[test]
    fn latency_timeline_is_nonempty_monotone_and_consistent() {
        let cfg = HotStuffConfig {
            run_for: Duration::from_secs(20),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        let report = run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none());
        let tl = &report.latency_timeline;
        assert_eq!(tl.len() as u64, report.summary.committed_blocks);
        assert!(tl.windows(2).all(|w| w[0].0 <= w[1].0), "commit times must be monotone");
        // On a quiet run, the timeline's mean matches the summary's mean.
        let mean = tl.iter().map(|&(_, v)| v).sum::<f64>() / tl.len() as f64;
        assert!(
            (mean - report.summary.mean_latency_ms).abs() < 1.0,
            "timeline mean {mean:.1} vs summary {:.1}",
            report.summary.mean_latency_ms
        );
    }

    #[test]
    fn scripted_leader_delay_inflates_latency_protocol_side() {
        let mk = |attack: bool| {
            let mut cfg = HotStuffConfig {
                run_for: Duration::from_secs(30),
                ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
            };
            if attack {
                cfg.misbehavior.delay_proposals_during(
                    0,
                    Duration::from_millis(500),
                    SimTime::from_secs(10),
                    SimTime::from_secs(20),
                );
            }
            run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none())
        };
        let clean = mk(false);
        let attacked = mk(true);
        let window_mean =
            |r: &HotStuffReport, from: f64, to: f64| rsm::timeline_mean(&r.latency_timeline, from, to);
        // During the stage every commit pays the 500 ms hold (several times
        // over, since the three-chain stretches across held views)…
        let clean_mid = window_mean(&clean, 12.0, 22.0);
        let attacked_mid = window_mean(&attacked, 12.0, 22.0);
        assert!(
            attacked_mid > clean_mid + 400.0,
            "hold should inflate latency: clean={clean_mid:.1}ms attacked={attacked_mid:.1}ms"
        );
        // …and once the stage closes the protocol drains back to clean latency.
        let attacked_late = window_mean(&attacked, 25.0, 30.0);
        assert!(
            attacked_late < clean_mid * 2.0,
            "latency should recover after the stage: {attacked_late:.1}ms"
        );
    }

    #[test]
    fn open_loop_traffic_commits_offered_load_below_saturation() {
        // 200 cmd/s offered against a capacity of thousands: every command
        // should commit, and blocks should be timeout-flushed partials (the
        // saturated source would commit 1000-command blocks instead).
        let spec = rsm::TrafficSpec::poisson(200.0)
            .with_clients(4)
            .with_batching(100, Duration::from_millis(40));
        let queue = SharedTrafficQueue::generate(
            &spec,
            &[1.0, 2.0, 5.0, 10.0],
            99,
            SimTime::from_secs(20),
        );
        let mut cfg = HotStuffConfig {
            run_for: Duration::from_secs(22),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        cfg.traffic = Some(queue.clone());
        let report = run_hotstuff(&cfg, uniform(4, 10), FaultPlan::none());
        let tr = queue.report(20);
        assert!(tr.offered > 3_000, "~4000 arrivals over 20 s, got {}", tr.offered);
        assert_eq!(tr.rejected, 0, "no backpressure below saturation");
        // All but the last in-flight views' worth of commands commit.
        assert!(
            tr.committed >= tr.offered - 300,
            "committed {} of {}",
            tr.committed,
            tr.offered
        );
        assert_eq!(tr.committed, tr.goodput, "all commits meet a 1 s SLO here");
        // Blocks are demand-sized, far below the saturated 1000.
        let per_block =
            report.summary.committed_commands as f64 / report.summary.committed_blocks as f64;
        assert!(per_block < 150.0, "mean block size {per_block}");
        // End-to-end latency includes ingress, batching wait, and commit.
        assert!(tr.e2e_mean_ms > 40.0, "e2e mean {}", tr.e2e_mean_ms);
    }

    #[test]
    fn bursty_traffic_tail_commits_before_the_next_burst() {
        // On/off load with a 3 s silence between bursts: the final batch of
        // each burst must commit via empty chain-flush blocks right away,
        // not wait out the off-phase for two more batches to arrive.
        let spec = rsm::TrafficSpec::poisson(0.0)
            .with_arrivals(rsm::ArrivalProcess::OnOff {
                rate: 800.0,
                on: Duration::from_secs(1),
                off: Duration::from_secs(3),
            })
            .with_clients(4)
            .with_batching(100, Duration::from_millis(40))
            .with_slo(Duration::from_secs(1));
        let queue =
            SharedTrafficQueue::generate(&spec, &[1.0; 4], 13, SimTime::from_secs(16));
        let mut cfg = HotStuffConfig {
            run_for: Duration::from_secs(18),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        cfg.traffic = Some(queue.clone());
        run_hotstuff(&cfg, uniform(4, 10), FaultPlan::none());
        let tr = queue.report(16);
        assert!(tr.offered > 2_000, "four bursts of ~800, got {}", tr.offered);
        assert!(
            tr.committed >= tr.offered - 120,
            "committed {} of {}",
            tr.committed,
            tr.goodput
        );
        // Without the chain flush every burst tail waits ~3 s and blows the
        // 1 s SLO; with it, virtually everything is goodput.
        assert!(
            tr.goodput as f64 >= tr.committed as f64 * 0.95,
            "burst tails must not wait out the off-phase: goodput {} of {} committed (p99 {:.0} ms)",
            tr.goodput,
            tr.committed,
            tr.e2e_p99_ms
        );
    }

    #[test]
    fn round_robin_leaders_share_the_traffic_queue() {
        let spec = rsm::TrafficSpec::poisson(500.0)
            .with_clients(4)
            .with_batching(50, Duration::from_millis(30));
        let queue =
            SharedTrafficQueue::generate(&spec, &[1.0; 4], 3, SimTime::from_secs(10));
        let mut cfg = HotStuffConfig {
            run_for: Duration::from_secs(12),
            ..HotStuffConfig::new(4, Pacemaker::RoundRobin)
        };
        cfg.traffic = Some(queue.clone());
        run_hotstuff(&cfg, uniform(4, 10), FaultPlan::none());
        let tr = queue.report(10);
        assert!(
            tr.committed >= tr.offered.saturating_sub(200),
            "rotating leaders must drain the shared queue: {} of {}",
            tr.committed,
            tr.offered
        );
    }

    #[test]
    fn round_robin_also_makes_progress() {
        let cfg = HotStuffConfig {
            run_for: Duration::from_secs(10),
            ..HotStuffConfig::new(4, Pacemaker::RoundRobin)
        };
        let report = run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none());
        assert!(report.summary.committed_blocks > 50);
    }

    #[test]
    fn slower_network_lowers_throughput() {
        let mk = |ms| {
            let cfg = HotStuffConfig {
                run_for: Duration::from_secs(15),
                ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
            };
            run_hotstuff(&cfg, uniform(4, ms), FaultPlan::none()).summary.throughput_ops
        };
        assert!(mk(10) > mk(80) * 2.0);
    }

    #[test]
    fn replicas_agree_on_committed_prefix() {
        let cfg = HotStuffConfig {
            run_for: Duration::from_secs(5),
            ..HotStuffConfig::new(7, Pacemaker::Fixed { leader: 2 })
        };
        let n = cfg.system.n;
        let nodes: Vec<HotStuffNode> = (0..n)
            .map(|id| HotStuffNode::new(id, cfg.system, cfg.pacemaker, 10))
            .collect();
        let mut sim = Simulation::new(nodes, uniform(n, 20)).with_config(SimulationConfig {
            horizon: SimTime::ZERO + cfg.run_for,
            max_events: 10_000_000,
        });
        sim.run();
        // Every replica observed the same digest for each view it stored.
        let reference: BTreeMap<u64, Digest> = sim
            .node(0)
            .views
            .iter()
            .map(|(&v, e)| (v, e.digest))
            .collect();
        for id in 1..n {
            for (v, e) in &sim.node(id).views {
                if let Some(d) = reference.get(v) {
                    assert_eq!(d, &e.digest, "view {v} digest mismatch at replica {id}");
                }
            }
        }
    }
}
