//! # hotstuff — chained HotStuff over a star topology
//!
//! The baseline protocol for the tree-overlay experiments (Fig 9): a chained
//! HotStuff \[63\] replica set where the leader of each view proposes a block
//! certified by the previous view's quorum certificate, replicas vote
//! directly to the (next) leader, and a block commits once it heads a
//! three-chain of consecutive views. Two pacemakers are provided, matching
//! the paper's baselines:
//!
//! * **HotStuff-fixed** — a fixed leader drives every view;
//! * **HotStuff-rr** — the leader role rotates round-robin each view.
//!
//! The implementation exchanges explicit messages through the runtime-
//! agnostic `runtime` node API, so leader placement and replica geography
//! determine throughput and latency exactly as in the paper's emulation —
//! in the simulator and over real sockets alike.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod node;
pub mod pacemaker;

pub use node::{HotStuffConfig, HotStuffMessage, HotStuffNode};
pub use pacemaker::Pacemaker;
