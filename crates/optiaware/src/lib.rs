//! # optiaware — OptiLog applied to the Aware/BFT-SMaRt substrate (§5)
//!
//! OptiAware keeps Aware's deterministic latency optimisation and adds what
//! Aware lacks: accountability for replicas that *behave differently for
//! protocol messages than for probes*. It wires the OptiLog pipeline into the
//! PBFT substrate:
//!
//! * the LatencySensor output (probe round-trip vectors) is replicated
//!   through the log and folded into the shared latency matrix;
//! * a [`optilog::SuspicionSensor`] checks every committed round against the
//!   per-message timeouts derived from the Aware score function (`d_m`,
//!   `d_rnd` — the TR1–TR3 construction of Appendix C) and logs `⟨Slow, …⟩`
//!   suspicions for replicas that miss their deadlines, e.g. a leader running
//!   the Pre-Prepare delay attack;
//! * the [`optilog::SuspicionMonitor`] turns committed suspicions into the
//!   candidate set `K` and fault estimate `u`;
//! * the configuration search is restricted to candidates, so the attacker
//!   loses the leader role and its `V_max` weight at the next
//!   reconfiguration — which is exactly the recovery Fig 7 shows.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
use runtime::{Duration, SimTime};
use optilog::{
    ConfigCommand, ConfigLog, LatencyMonitor, LatencyVector, MessageTimeout, RoundObservation,
    RoundTimeouts, Suspicion, SuspicionMonitor, SuspicionMonitorParams, SuspicionSensor,
};
use pbft::score::optimize_configuration;
use pbft::{predict_message_delays, predict_round_latency, PbftRoundRecord, ReconfigPolicy, WeightConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How many past configuration epochs the replicated configuration log
/// retains for judging in-flight round records. Records older than the
/// window are skipped (they are also long past their observation hold, so
/// this only bounds memory).
const EPOCH_HISTORY: usize = 4;

/// Measurement blobs OptiAware replicates through the ordered log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum OptiAwareBlob {
    /// A probe-derived latency vector.
    Latency {
        /// Reporting replica.
        reporter: usize,
        /// Round-trip times in ms (∞ encoded as 1e9).
        rtt_ms: Vec<f64>,
    },
    /// A suspicion raised by the SuspicionSensor.
    Suspicion(Suspicion),
}

impl OptiAwareBlob {
    /// Encode for the log.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("blob serializes")
    }

    /// Decode from the log.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }
}

/// The OptiAware reconfiguration policy: Aware's optimisation plus OptiLog's
/// suspicion monitoring.
pub struct OptiAwarePolicy {
    id: usize,
    n: usize,
    f: usize,
    latency: LatencyMonitor,
    sensor: SuspicionSensor,
    monitor: SuspicionMonitor,
    current_config: WeightConfig,
    /// The replicated configuration log: the epoch → configuration history
    /// (with the time this replica adopted each epoch), kept so a round
    /// record proposed under epoch `e` is judged against epoch `e`'s
    /// timeouts — even when it is evaluated after a reconfiguration. This
    /// removes the old post-reconfiguration observation blackout (a 2x
    /// grace hold during which the sensor was blind). Weight
    /// configurations enter it only through `decide` — the deterministic
    /// function of committed log content — so identical logs yield
    /// identical histories at every replica.
    config_log: ConfigLog<WeightConfig>,
    /// Per-epoch timeouts derived from the config log and the latency
    /// matrix, with the worst-case observation hold across them. Rebuilt
    /// only when the matrix or the config set changes — deriving timeouts
    /// is O(n²) and `observation_hold` is consulted on every commit.
    timeouts_cache: BTreeMap<u64, RoundTimeouts>,
    cached_hold: Duration,
    current_score: f64,
    optimize_after: SimTime,
    improvement_factor: f64,
    /// Leader terms seen so far: the monitor's "view" clock. Advances when
    /// the replica's adopted configuration epoch changes — an actual leader
    /// term — not once per commit, so the paper's term-denominated windows
    /// apply unscaled.
    terms: u64,
    /// The configuration epoch the last `decide` call ran under.
    last_epoch: Option<u64>,
}

impl OptiAwarePolicy {
    /// Create the policy for replica `id` of an `n`-replica system.
    pub fn new(id: usize, n: usize, f: usize, delta: f64, optimize_after: SimTime) -> Self {
        OptiAwarePolicy {
            id,
            n,
            f,
            latency: LatencyMonitor::new(n),
            sensor: SuspicionSensor::new(id, delta),
            // The monitor's clock counts *actual leader terms* (configuration
            // epoch changes stamped on every `PbftRoundRecord` and mirrored
            // by `decide`'s `current_epoch`), so the paper's windows apply
            // with their own constants: reciprocation `f + 1` terms, and the
            // default stability window `w = 10` terms — which spans a whole
            // run (a 180 s experiment sees a handful of reconfigurations),
            // exactly as the paper's `w = 10` covers its experiment. An
            // excluded attacker therefore stays excluded for the run instead
            // of being rehabilitated by a commit-rate-scaled clock. A
            // reciprocation still has several commits to round-trip through
            // the log before the window can close: terms only advance on
            // reconfigurations, which are far sparser than commits.
            monitor: SuspicionMonitor::new(SuspicionMonitorParams::new(n, f)),
            current_config: WeightConfig::initial(n, f),
            config_log: ConfigLog::new(WeightConfig::initial(n, f), EPOCH_HISTORY),
            timeouts_cache: BTreeMap::new(),
            cached_hold: Duration::ZERO,
            current_score: f64::INFINITY,
            optimize_after,
            improvement_factor: 0.9,
            terms: 0,
            last_epoch: None,
        }
    }

    /// The candidate set currently derived from committed suspicions.
    pub fn candidates(&mut self) -> Vec<usize> {
        self.monitor.selection().as_vec()
    }

    /// True once the latency matrix covers every replica pair.
    pub fn matrix_complete(&self) -> bool {
        self.latency.matrix().is_complete()
    }

    /// Derive the per-message timeouts and round duration for `config` from
    /// the shared latency matrix (TR1–TR3).
    fn round_timeouts_for(&self, config: &WeightConfig) -> RoundTimeouts {
        let matrix = self.latency.matrix().to_vec();
        if matrix.iter().any(|x| !x.is_finite()) {
            return RoundTimeouts::default();
        }
        let d_rnd = predict_round_latency(&matrix, self.n, self.f, config, &[]);
        let messages = predict_message_delays(&matrix, self.n, self.f, config, self.id)
            .into_iter()
            .map(|(from, kind, ms)| MessageTimeout::new(from, kind, Duration::from_millis_f64(ms)))
            .collect();
        RoundTimeouts::new(Duration::from_millis_f64(d_rnd), messages)
    }

    /// Rebuild the per-epoch timeout cache and the worst-case hold. Called
    /// whenever the latency matrix gains a vector or the config set changes.
    fn rebuild_timeout_caches(&mut self) {
        self.timeouts_cache = self
            .config_log
            .epochs()
            .map(|a| (a.epoch, self.round_timeouts_for(&a.config)))
            .collect();
        self.cached_hold = self
            .timeouts_cache
            .values()
            .map(|t| self.hold_for(t))
            .max()
            .unwrap_or(Duration::ZERO);
    }

    /// The slowest δ-scaled per-message deadline plus slack.
    fn hold_for(&self, timeouts: &RoundTimeouts) -> Duration {
        let slowest = timeouts
            .messages
            .iter()
            .map(|mt| mt.deadline(self.sensor.delta))
            .max()
            .unwrap_or(Duration::ZERO);
        slowest + optilog::DEADLINE_SLACK + optilog::DEADLINE_SLACK
    }
}

impl ReconfigPolicy for OptiAwarePolicy {
    fn on_latency_vector(&mut self, reporter: usize, rtt_ms: &[f64]) -> Vec<Vec<u8>> {
        let safe: Vec<f64> = rtt_ms
            .iter()
            .map(|&x| if x.is_finite() { x } else { 1.0e9 })
            .collect();
        vec![OptiAwareBlob::Latency {
            reporter,
            rtt_ms: safe,
        }
        .encode()]
    }

    fn observation_hold(&self) -> Duration {
        // Round records must not be judged before the slowest per-message
        // deadline has passed, or on-time messages from distant replicas get
        // reported as missing (and their senders falsely suspected). Pending
        // records may still belong to earlier epochs, so this is the
        // slowest hold across the tracked configurations (precomputed: the
        // replica asks on every commit).
        self.cached_hold
    }

    fn on_round(&mut self, record: &PbftRoundRecord) -> Vec<Vec<u8>> {
        // Judge the round against the configuration it was proposed under.
        // Rounds from epochs the log no longer retains cannot be judged
        // fairly.
        let Some(adopted) = self.config_log.adopted_at(record.epoch) else {
            return Vec::new();
        };
        // The boundary round (whose predecessor ran under another epoch)
        // straddles the leader handover: its quorum assembled under a mix of
        // old and new weights, so its timings belong to neither epoch.
        if ConfigLog::<WeightConfig>::is_boundary_round(record.epoch, record.prev_epoch) {
            return Vec::new();
        }
        match self.timeouts_cache.get(&record.epoch) {
            Some(t) if !t.messages.is_empty() => {}
            _ => return Vec::new(),
        }
        let timeouts = self.timeouts_cache[&record.epoch].clone();
        // Pipeline-refill transient: for ~2 rounds after this replica
        // adopted the epoch, commits are still paced by stragglers switching
        // configurations. Skipping them replaces the old 2x-hold blackout
        // (typically 10+ rounds of blindness) with a 2-round one.
        let transient = timeouts.d_rnd + timeouts.d_rnd;
        if record.proposal_ts < adopted + transient {
            return Vec::new();
        }
        let obs = RoundObservation {
            round: record.seq,
            leader: record.leader,
            proposal_ts: record.proposal_ts,
            prev_proposal_ts: record.prev_proposal_ts,
            timeouts,
            arrivals: record.arrivals.clone(),
        };
        let is_leader = record.leader == self.id;
        self.sensor
            .evaluate_round(&obs, is_leader)
            .into_iter()
            .map(|s| OptiAwareBlob::Suspicion(s).encode())
            .collect()
    }

    fn on_committed_measurement(&mut self, _replica_id: usize, blob: &[u8]) -> Vec<Vec<u8>> {
        let Some(blob) = OptiAwareBlob::decode(blob) else {
            return Vec::new();
        };
        match blob {
            OptiAwareBlob::Latency { reporter, rtt_ms } => {
                self.latency.on_vector(&LatencyVector::new(reporter, rtt_ms));
                self.rebuild_timeout_caches();
                Vec::new()
            }
            OptiAwareBlob::Suspicion(s) => {
                self.monitor.on_suspicion(&s);
                // Condition (c): reciprocate suspicions raised against us.
                self.sensor
                    .reciprocate(&s)
                    .map(|r| vec![OptiAwareBlob::Suspicion(r).encode()])
                    .unwrap_or_default()
            }
        }
    }

    fn decide(&mut self, current_epoch: u64, now: SimTime) -> Option<WeightConfig> {
        // Advance the monitor's clock one *leader term* per adopted epoch.
        // `on_view` is still consulted every commit (it is where expiry is
        // evaluated), but the view number only moves on a real term change.
        if self.last_epoch != Some(current_epoch) {
            self.terms += 1;
            self.last_epoch = Some(current_epoch);
        }
        self.monitor.on_view(self.terms);
        if now < self.optimize_after || !self.matrix_complete() {
            return None;
        }
        let selection = self.monitor.selection();
        let candidates = selection.as_vec();
        let suspected: Vec<usize> = (0..self.n).filter(|r| !selection.contains(*r)).collect();
        if candidates.is_empty() {
            return None;
        }
        let matrix = self.latency.matrix().to_vec();
        let (config, score) = optimize_configuration(
            &matrix,
            self.n,
            self.f,
            &candidates,
            &suspected,
            current_epoch + 1,
        );

        // Reconfigure if the current configuration became invalid (a special
        // role is held by a suspect) or the improvement is significant.
        let current_invalid = self
            .current_config
            .special_roles()
            .iter()
            .any(|r| suspected.contains(r));
        let improves = score < self.current_score * self.improvement_factor;
        if current_invalid || improves {
            self.current_config = config.clone();
            self.current_score = score;
            // The new configuration enters the replicated configuration log
            // (epoch-monotone adoption with the history pruning and
            // adoption-time bookkeeping the round judging needs).
            self.config_log.apply(
                ConfigCommand::Config {
                    epoch: config.epoch,
                    config: config.clone(),
                },
                now,
            );
            self.rebuild_timeout_caches();
            Some(config)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "optiaware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optilog::SuspicionKind;

    fn uniformish(n: usize, fast: &[usize], fast_ms: f64, slow_ms: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| {
                        if a == b {
                            0.0
                        } else if fast.contains(&a) && fast.contains(&b) {
                            fast_ms
                        } else {
                            slow_ms
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn feed_matrix(p: &mut OptiAwarePolicy, rows: &[Vec<f64>]) {
        for (r, row) in rows.iter().enumerate() {
            let blob = OptiAwareBlob::Latency {
                reporter: r,
                rtt_ms: row.clone(),
            }
            .encode();
            p.on_committed_measurement(0, &blob);
        }
    }

    #[test]
    fn blob_roundtrip() {
        let s = Suspicion {
            kind: SuspicionKind::Slow,
            accuser: 1,
            accused: 0,
            round: 7,
            phase: 1,
            accuser_is_leader: false,
        };
        let blob = OptiAwareBlob::Suspicion(s).encode();
        match OptiAwareBlob::decode(&blob) {
            Some(OptiAwareBlob::Suspicion(d)) => assert_eq!(d, s),
            other => panic!("unexpected decode: {other:?}"),
        }
        assert!(OptiAwareBlob::decode(b"garbage").is_none());
    }

    #[test]
    fn optimises_like_aware_without_suspicions() {
        let n = 4;
        let mut p = OptiAwarePolicy::new(1, n, 1, 1.0, SimTime::ZERO);
        feed_matrix(&mut p, &uniformish(n, &[1, 2, 3], 10.0, 200.0));
        let cfg = p.decide(0, SimTime::from_secs(1)).expect("optimises");
        assert!([1, 2, 3].contains(&cfg.leader));
        assert_eq!(cfg.epoch, 1);
    }

    #[test]
    fn suspected_leader_is_excluded_from_roles() {
        let n = 4;
        let mut p = OptiAwarePolicy::new(1, n, 1, 1.0, SimTime::ZERO);
        // Replica 0 would normally be the best leader (fastest links).
        feed_matrix(&mut p, &uniformish(n, &[0, 1], 5.0, 80.0));
        let first = p.decide(0, SimTime::from_secs(1)).expect("initial optimisation");
        assert_eq!(first.leader, 0);

        // Two replicas suspect replica 0 (e.g. it delays proposals); replica 0
        // reciprocates only against one, leaving mutual suspicion pairs.
        for accuser in [1usize, 2] {
            let s = Suspicion {
                kind: SuspicionKind::Slow,
                accuser,
                accused: 0,
                round: 10,
                phase: 1,
                accuser_is_leader: false,
            };
            p.on_committed_measurement(0, &OptiAwareBlob::Suspicion(s).encode());
            let rec = Suspicion {
                kind: SuspicionKind::False,
                accuser: 0,
                accused: accuser,
                round: 10,
                phase: 1,
                accuser_is_leader: false,
            };
            p.on_committed_measurement(0, &OptiAwareBlob::Suspicion(rec).encode());
        }
        let cfg = p
            .decide(first.epoch, SimTime::from_secs(2))
            .expect("reconfigures away from the suspect");
        assert_ne!(cfg.leader, 0, "suspected replica must not lead");
        assert!(!cfg.special_roles().contains(&0));
    }

    #[test]
    fn sensor_raises_suspicion_for_delayed_proposal() {
        let n = 4;
        let mut p = OptiAwarePolicy::new(1, n, 1, 1.0, SimTime::ZERO);
        feed_matrix(&mut p, &uniformish(n, &[0, 1, 2, 3], 20.0, 20.0));
        // Complete the initial optimisation so timeouts are defined.
        let cfg = p.decide(0, SimTime::from_secs(1)).expect("optimises");

        // A round whose proposal timestamp is far later than the previous one.
        let record = PbftRoundRecord {
            seq: 50,
            epoch: cfg.epoch,
            leader: cfg.leader,
            proposal_ts: SimTime::from_millis(10_000),
            prev_proposal_ts: Some(SimTime::from_millis(8_000)),
            prev_epoch: Some(cfg.epoch),
            commit_time: SimTime::from_millis(10_100),
            arrivals: (0..n)
                .flat_map(|r| {
                    vec![
                        (r, 2, SimTime::from_millis(10_040)),
                        (r, 3, SimTime::from_millis(10_080)),
                    ]
                })
                .collect(),
        };
        let blobs = p.on_round(&record);
        let suspicions: Vec<Suspicion> = blobs
            .iter()
            .filter_map(|b| match OptiAwareBlob::decode(b) {
                Some(OptiAwareBlob::Suspicion(s)) => Some(s),
                _ => None,
            })
            .collect();
        assert!(
            suspicions.iter().any(|s| s.accused == cfg.leader),
            "delayed proposal must raise a suspicion against the leader: {suspicions:?}"
        );
    }

    /// After a reconfiguration, a round proposed under the *previous* epoch
    /// is still judged — against that epoch's timeouts — instead of falling
    /// into a post-reconfiguration observation blackout.
    #[test]
    fn old_epoch_rounds_are_judged_against_their_own_config() {
        let n = 4;
        let mut p = OptiAwarePolicy::new(1, n, 1, 1.0, SimTime::ZERO);
        // Replica 0 leads initially (epoch 0); the optimiser then moves the
        // leader role into the fast cluster {1, 2, 3} (epoch 1).
        feed_matrix(&mut p, &uniformish(n, &[1, 2, 3], 20.0, 200.0));
        let cfg = p.decide(0, SimTime::from_secs(1)).expect("optimises");
        assert_ne!(cfg.leader, 0);

        // A round proposed under epoch 0 by the old leader, with a proposal
        // gap far beyond epoch 0's round estimate. Under the old grace-hold
        // this record (arriving right after the reconfiguration) was dropped.
        let record = PbftRoundRecord {
            seq: 60,
            epoch: 0,
            leader: 0,
            proposal_ts: SimTime::from_millis(20_000),
            prev_proposal_ts: Some(SimTime::from_millis(10_000)),
            prev_epoch: Some(0),
            commit_time: SimTime::from_millis(20_400),
            arrivals: (0..n)
                .flat_map(|r| {
                    vec![
                        (r, 2, SimTime::from_millis(20_150)),
                        (r, 3, SimTime::from_millis(20_300)),
                    ]
                })
                .collect(),
        };
        let blobs = p.on_round(&record);
        let suspicions: Vec<Suspicion> = blobs
            .iter()
            .filter_map(|b| match OptiAwareBlob::decode(b) {
                Some(OptiAwareBlob::Suspicion(s)) => Some(s),
                _ => None,
            })
            .collect();
        assert!(
            suspicions.iter().any(|s| s.accused == 0),
            "old-epoch round must still be judged: {suspicions:?}"
        );

        // A record from an epoch the policy has never seen is skipped.
        let unknown = PbftRoundRecord {
            epoch: 7,
            ..record.clone()
        };
        assert!(p.on_round(&unknown).is_empty());
    }

    /// Regression for the leader-term monitor clock: an excluded attacker
    /// must not be rehabilitated mid-run. With the paper's `w = 10` windows
    /// counted in *commits* (the old, pre-epoch behaviour), a few hundred
    /// quiet commits would expire the suspicion edges and the optimiser
    /// would re-elect the attacker; counted in *leader terms*, a whole run's
    /// worth of commits and several reconfigurations stay inside the window.
    #[test]
    fn excluded_attacker_is_not_rehabilitated_mid_run() {
        let n = 7;
        let f = 2;
        let mut p = OptiAwarePolicy::new(1, n, f, 1.0, SimTime::ZERO);
        // Replica 0 has the fastest links: the optimiser's natural pick.
        feed_matrix(&mut p, &uniformish(n, &[0, 1], 5.0, 80.0));
        let first = p.decide(0, SimTime::from_secs(1)).expect("optimises");
        assert_eq!(first.leader, 0);

        // The delay attack plays out: three replicas suspect 0, and 0
        // reciprocates (it is alive and processing the log).
        for accuser in [1usize, 2, 3] {
            let s = Suspicion {
                kind: SuspicionKind::Slow,
                accuser,
                accused: 0,
                round: 50,
                phase: 1,
                accuser_is_leader: false,
            };
            p.on_committed_measurement(0, &OptiAwareBlob::Suspicion(s).encode());
            let rec = Suspicion {
                kind: SuspicionKind::False,
                accuser: 0,
                accused: accuser,
                round: 50,
                phase: 1,
                accuser_is_leader: false,
            };
            p.on_committed_measurement(0, &OptiAwareBlob::Suspicion(rec).encode());
        }
        let reconf = p
            .decide(first.epoch, SimTime::from_secs(2))
            .expect("excludes the attacker");
        assert_ne!(reconf.leader, 0);
        assert!(!p.candidates().contains(&0));

        // A run's worth of quiet commits — thousands of `decide` calls —
        // across several further adopted epochs (leader terms). The
        // stability window is denominated in terms, so nothing expires and
        // the attacker stays out of every configuration.
        let mut epoch = reconf.epoch;
        let mut t = 2_000u64;
        for term in 0..4u64 {
            for _ in 0..1_500 {
                t += 30;
                if let Some(cfg) = p.decide(epoch, SimTime::from_millis(t)) {
                    assert_ne!(cfg.leader, 0, "attacker re-elected at term {term}");
                    assert!(!cfg.special_roles().contains(&0));
                    epoch = cfg.epoch;
                }
            }
            epoch += 1; // an externally adopted reconfiguration = a new term
        }
        assert!(
            !p.candidates().contains(&0),
            "suspicion edges must survive the whole run: attacker rehabilitated"
        );
    }

    #[test]
    fn identical_logs_identical_decisions() {
        let n = 4;
        let rows = uniformish(n, &[2, 3], 15.0, 120.0);
        let run = |id: usize| {
            let mut p = OptiAwarePolicy::new(id, n, 1, 1.0, SimTime::ZERO);
            feed_matrix(&mut p, &rows);
            p.decide(0, SimTime::from_secs(5))
        };
        assert_eq!(run(0), run(3), "decisions depend only on committed data");
    }
}
