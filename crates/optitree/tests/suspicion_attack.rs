//! Targeted-suspicion attack comparisons over the worldwide city dataset.
//! The dataset lives in `netsim` (a dev-dependency here — the library itself
//! is runtime-agnostic); the attack simulation is pure policy arithmetic.

use netsim::CityDataset;
use optitree::{simulate_suspicion_attack, AttackVariant};

fn world_matrix(n: usize) -> Vec<f64> {
    let ds = CityDataset::worldwide();
    let subset = ds.global73();
    let assignment = ds.assign_random(&subset, n, 11);
    let mut m = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            m[a * n + b] = ds.rtt_ms(assignment[a], assignment[b]);
        }
    }
    m
}

#[test]
fn attack_degrades_all_variants_but_optitree_stays_ahead_of_kauri() {
    let n = 43;
    let m = world_matrix(n);
    let steps = 6;
    let kauri = simulate_suspicion_attack(AttackVariant::Kauri, n, &m, steps, 5);
    let opti = simulate_suspicion_attack(AttackVariant::OptiTree, n, &m, steps, 5);
    assert_eq!(kauri.scores.len(), steps + 1);
    assert_eq!(opti.scores.len(), steps + 1);
    // Initial OptiTree tree beats a random Kauri tree.
    assert!(opti.scores[0] < kauri.scores[0]);
    // Averaged over the attack, OptiTree stays ahead.
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(avg(&opti.scores) < avg(&kauri.scores));
}

#[test]
fn optitree_scores_rise_with_suspicions() {
    let n = 43;
    let m = world_matrix(n);
    let outcome = simulate_suspicion_attack(AttackVariant::OptiTree, n, &m, 8, 3);
    // The score after several forced reconfigurations is no better than
    // the initial optimum (candidates shrink and u rises).
    assert!(outcome.scores[8] >= outcome.scores[0]);
    assert!(outcome.scores.iter().all(|s| s.is_finite()));
}

#[test]
fn kauri_sa_degrades_faster_than_optitree_under_long_attacks() {
    let n = 43;
    let m = world_matrix(n);
    let steps = 7;
    let sa = simulate_suspicion_attack(AttackVariant::KauriSa, n, &m, steps, 9);
    let opti = simulate_suspicion_attack(AttackVariant::OptiTree, n, &m, steps, 9);
    // Kauri-sa throws away five internals per failure, so late trees are
    // built from whatever is left; OptiTree excludes at most two replicas
    // per failure and should end no worse.
    assert!(opti.scores[steps] <= sa.scores[steps] * 1.25 + 1.0);
}
