//! # optitree — OptiLog applied to Kauri's tree topology (§6)
//!
//! OptiTree selects *correct, low-latency* trees for large-scale tree-based
//! BFT deployments:
//!
//! * [`score`] implements Definition 1 — the minimum latency for the root to
//!   collect votes from `k = q + u` nodes, where `u` is the
//!   SuspicionMonitor's estimate of misbehaving replicas — and the
//!   tree-specific timeout derivation.
//! * [`search`] runs simulated annealing over tree layouts, constraining the
//!   internal-node positions to OptiLog's candidate set `K`.
//! * [`policy`] packages the search as a [`kauri::TreePolicy`], together with
//!   the `Kauri-sa` baseline from §7.5 (SA-optimised trees without the
//!   candidate set / fault estimate).
//! * [`attack`] reproduces the targeted-suspicion attack of Fig 10, where
//!   faulty replicas suspect the correct internal nodes of the optimal tree
//!   to force reconfigurations.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod attack;
pub mod policy;
pub mod score;
pub mod search;

pub use attack::{simulate_suspicion_attack, AttackOutcome, AttackVariant};
pub use policy::{KauriSaPolicy, OptiTreePolicy};
pub use score::{tree_score, tree_timeouts};
pub use search::{search_tree, TreeSearchSpace};
