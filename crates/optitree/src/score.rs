//! The tree score function (Definition 1) and tree timeout derivation (§6.3).
//!
//! `score(k, τ)` is the minimum latency for the root of tree `τ` to collect
//! votes from `k` nodes: an intermediate node `I` contributes its subtree
//! (`|Ch(I)| + 1` votes) after its *aggregation latency* — the maximum
//! latency to any of its children — plus the link back to the root. The root
//! chooses the fastest set of subtrees that covers `k − 1` votes (its own
//! vote is free), so the score is obtained by greedily taking subtrees in
//! order of their ready time.

use kauri::Tree;
use runtime::Duration;

/// Latency lookup: one-way latency in ms between two replicas from a
/// symmetric RTT matrix.
fn one_way(matrix_rtt_ms: &[f64], n: usize, a: usize, b: usize) -> f64 {
    if a == b {
        0.0
    } else {
        matrix_rtt_ms[a * n + b] / 2.0
    }
}

/// Aggregation latency of an intermediate node: the maximum one-way latency
/// to any of its children (Definition 1's `L_agg`).
pub fn aggregation_latency(tree: &Tree, matrix_rtt_ms: &[f64], n: usize, intermediate: usize) -> f64 {
    tree.leaves_of(intermediate)
        .iter()
        .map(|&leaf| one_way(matrix_rtt_ms, n, intermediate, leaf))
        .fold(0.0, f64::max)
}

/// `score(k, τ)`: the minimum latency (in ms) for the root to collect votes
/// from `k` nodes. Returns `f64::INFINITY` if the tree cannot provide `k`
/// votes at all.
///
/// The model charges one one-way delay for the proposal to reach an
/// intermediate node, the aggregation latency for its subtree (down to the
/// leaves and back), and one one-way delay for the aggregate to return to the
/// root — matching how the paper predicts tree latency from link latencies.
pub fn tree_score(tree: &Tree, matrix_rtt_ms: &[f64], n: usize, k: usize) -> f64 {
    if k <= 1 {
        return 0.0;
    }
    if tree.is_star() {
        // Star: the root collects individual votes; the k-1 fastest round trips.
        let mut rtts: Vec<f64> = tree
            .children_of(tree.root)
            .iter()
            .map(|&c| 2.0 * one_way(matrix_rtt_ms, n, tree.root, c))
            .collect();
        rtts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        return if rtts.len() >= k - 1 {
            rtts[k - 2]
        } else {
            f64::INFINITY
        };
    }

    // Ready time and vote count of each intermediate's subtree.
    let mut subtrees: Vec<(f64, usize)> = tree
        .intermediates
        .iter()
        .map(|&i| {
            let down = one_way(matrix_rtt_ms, n, tree.root, i);
            let agg = aggregation_latency(tree, matrix_rtt_ms, n, i);
            let up = one_way(matrix_rtt_ms, n, i, tree.root);
            // Proposal down + (forward to leaves + votes back = 2 * agg) + aggregate up.
            (down + 2.0 * agg + up, tree.leaves_of(i).len() + 1)
        })
        .collect();
    subtrees.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    let needed = k - 1; // the root's own vote is counted separately
    let mut collected = 0usize;
    for (ready, votes) in subtrees {
        collected += votes;
        if collected >= needed {
            return ready;
        }
    }
    f64::INFINITY
}

/// Round duration and per-link timeouts for a tree, used to configure the
/// view and child timeouts of the Kauri/OptiTree protocol: the view timeout
/// is `δ ×` the predicted time to collect `k` votes, and the child timeout is
/// `δ ×` the slowest leaf round trip below any intermediate node.
pub fn tree_timeouts(
    tree: &Tree,
    matrix_rtt_ms: &[f64],
    n: usize,
    k: usize,
    delta: f64,
) -> (Duration, Duration) {
    let d_rnd = tree_score(tree, matrix_rtt_ms, n, k);
    let worst_child = tree
        .internal_nodes()
        .iter()
        .map(|&i| 2.0 * aggregation_latency(tree, matrix_rtt_ms, n, i))
        .fold(0.0, f64::max)
        .max(
            tree.intermediates
                .iter()
                .map(|&i| 2.0 * one_way(matrix_rtt_ms, n, tree.root, i))
                .fold(0.0, f64::max),
        );
    let view = if d_rnd.is_finite() { d_rnd } else { 5_000.0 };
    (
        Duration::from_millis_f64((view * delta).max(1.0)),
        Duration::from_millis_f64((worst_child * delta).max(1.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n replicas where 0..cluster are 10 ms apart and the rest 200 ms away.
    fn matrix(n: usize, cluster: usize) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                m[a * n + b] = if a < cluster && b < cluster { 10.0 } else { 200.0 };
            }
        }
        m
    }

    #[test]
    fn score_zero_for_trivial_k() {
        let tree = Tree::from_ordering(&(0..13).collect::<Vec<_>>(), 3);
        assert_eq!(tree_score(&tree, &matrix(13, 13), 13, 1), 0.0);
    }

    #[test]
    fn uniform_tree_score_is_four_hops() {
        let n = 13;
        let tree = Tree::from_ordering(&(0..n).collect::<Vec<_>>(), 3);
        let m = matrix(n, n); // all 10 ms RTT → 5 ms one-way
        let s = tree_score(&tree, &m, n, 9);
        // down 5 + (2 * agg 5 = 10) + up 5 = 20 ms
        assert_eq!(s, 20.0);
    }

    #[test]
    fn score_increases_with_k_when_subtrees_differ() {
        let n = 13;
        // Cluster of 8 fast replicas: a tree whose first subtrees are fast.
        let m = matrix(n, 8);
        let order: Vec<usize> = (0..n).collect();
        let tree = Tree::from_ordering(&order, 3);
        let low_k = tree_score(&tree, &m, n, 5);
        let high_k = tree_score(&tree, &m, n, 12);
        assert!(high_k >= low_k);
    }

    #[test]
    fn fast_internal_nodes_beat_slow_internal_nodes() {
        let n = 13;
        let m = matrix(n, 4); // replicas 0..4 fast among themselves
        // Tree A: root + intermediates all from the fast cluster.
        let mut order_fast: Vec<usize> = vec![0, 1, 2, 3];
        order_fast.extend(4..n);
        // Tree B: root fast but intermediates from the slow set.
        let mut order_slow: Vec<usize> = vec![0, 10, 11, 12];
        order_slow.extend((1..10).collect::<Vec<_>>());
        let a = tree_score(&Tree::from_ordering(&order_fast, 3), &m, n, 9);
        let b = tree_score(&Tree::from_ordering(&order_slow, 3), &m, n, 9);
        assert!(a < b, "fast internals {a} should beat slow internals {b}");
    }

    #[test]
    fn impossible_k_is_infinite() {
        let tree = Tree::from_ordering(&[0, 1, 2, 3], 1);
        assert!(tree_score(&tree, &matrix(4, 4), 4, 10).is_infinite());
    }

    #[test]
    fn star_score_uses_kth_fastest_round_trip() {
        let n = 5;
        let mut m = vec![0.0; n * n];
        for (i, rtt) in [(1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)] {
            m[i] = rtt; // row 0
            m[i * n] = rtt; // col 0
        }
        let star = Tree::star(0, n);
        assert_eq!(tree_score(&star, &m, n, 3), 20.0);
        assert_eq!(tree_score(&star, &m, n, 5), 40.0);
    }

    #[test]
    fn timeouts_scale_with_delta() {
        let n = 13;
        let tree = Tree::from_ordering(&(0..n).collect::<Vec<_>>(), 3);
        let m = matrix(n, n);
        let (v1, c1) = tree_timeouts(&tree, &m, n, 9, 1.0);
        let (v2, c2) = tree_timeouts(&tree, &m, n, 9, 1.4);
        assert!(v2 > v1);
        assert!(c2 >= c1);
        assert_eq!(v1, Duration::from_millis(20));
    }
}
