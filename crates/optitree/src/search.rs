//! Simulated-annealing tree search constrained to the candidate set (§4.2.4,
//! §6.2).
//!
//! A tree layout is encoded as an ordering of all replicas (root, then the
//! intermediates, then the leaves). The search space only generates and
//! mutates orderings whose internal positions are filled from the candidate
//! set `K`; the score is Definition 1's `score(k, τ)` with `k = q + u`.

use crate::score::tree_score;
use kauri::Tree;
use optilog::{Annealer, AnnealingParams, SearchSpace};
use rand::rngs::StdRng;
use rand::Rng;

/// The tree-layout search space.
pub struct TreeSearchSpace {
    /// Total number of replicas.
    pub n: usize,
    /// Branch factor (the tree has `b + 1` internal nodes).
    pub branch: usize,
    /// Symmetric RTT matrix in milliseconds.
    pub matrix_rtt_ms: Vec<f64>,
    /// Candidate replicas allowed to hold internal positions.
    pub candidates: Vec<usize>,
    /// Number of votes the score must account for (`q + u`).
    pub k: usize,
}

impl TreeSearchSpace {
    /// Number of internal positions (root + intermediates).
    fn internal_slots(&self) -> usize {
        (self.branch + 1).min(self.n)
    }

    /// Build the [`Tree`] encoded by an ordering.
    pub fn tree_of(&self, ordering: &[usize]) -> Tree {
        Tree::from_ordering(ordering, self.branch)
    }
}

impl SearchSpace for TreeSearchSpace {
    type Config = Vec<usize>;

    fn random_config(&self, rng: &mut StdRng) -> Vec<usize> {
        // Internal slots drawn from candidates, remaining replicas as leaves.
        let mut cands = self.candidates.clone();
        // Fisher-Yates on the candidate list.
        for i in (1..cands.len()).rev() {
            let j = rng.gen_range(0..=i);
            cands.swap(i, j);
        }
        let slots = self.internal_slots();
        let internals: Vec<usize> = cands.iter().copied().take(slots).collect();
        let mut rest: Vec<usize> = (0..self.n).filter(|r| !internals.contains(r)).collect();
        for i in (1..rest.len()).rev() {
            let j = rng.gen_range(0..=i);
            rest.swap(i, j);
        }
        let mut order = internals;
        order.extend(rest);
        order
    }

    fn mutate(&self, config: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        let mut c = config.clone();
        let slots = self.internal_slots();
        // Either swap an internal position with a candidate leaf, or swap two
        // leaves (changes which leaves hang below which intermediate).
        if rng.gen_bool(0.7) && slots < c.len() {
            let i = rng.gen_range(0..slots);
            // Choose a leaf position holding a candidate replica, if any.
            let leaf_candidates: Vec<usize> = (slots..c.len())
                .filter(|&p| self.candidates.contains(&c[p]))
                .collect();
            if let Some(&p) = leaf_candidates.get(rng.gen_range(0..leaf_candidates.len().max(1)).min(leaf_candidates.len().saturating_sub(1))) {
                if !leaf_candidates.is_empty() {
                    c.swap(i, p);
                }
            }
        } else {
            let i = rng.gen_range(0..c.len());
            let j = rng.gen_range(0..c.len());
            // Never move a non-candidate into an internal slot.
            let into_internal = i < slots || j < slots;
            if !into_internal
                || (self.candidates.contains(&c[i]) && self.candidates.contains(&c[j]))
            {
                c.swap(i, j);
            }
        }
        c
    }

    fn score(&self, config: &Vec<usize>) -> f64 {
        let tree = self.tree_of(config);
        tree_score(&tree, &self.matrix_rtt_ms, self.n, self.k)
    }
}

/// Run the annealing search and return the best tree found with its score.
pub fn search_tree(
    space: &TreeSearchSpace,
    params: AnnealingParams,
    seed: u64,
) -> (Tree, f64) {
    let result = Annealer::new(params).search(space, seed);
    (space.tree_of(&result.config), result.score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn clustered_matrix(n: usize, cluster: usize) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = if a < cluster && b < cluster { 10.0 } else { 200.0 };
                }
            }
        }
        m
    }

    fn space(n: usize, cluster: usize, candidates: Vec<usize>) -> TreeSearchSpace {
        TreeSearchSpace {
            n,
            branch: 4,
            matrix_rtt_ms: clustered_matrix(n, cluster),
            candidates,
            k: 2 * ((n - 1) / 3) + 1,
        }
    }

    #[test]
    fn random_configs_respect_candidate_constraint() {
        let sp = space(21, 8, (0..10).collect());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let cfg = sp.random_config(&mut rng);
            assert_eq!(cfg.len(), 21);
            for &r in cfg.iter().take(sp.internal_slots()) {
                assert!(sp.candidates.contains(&r), "internal {r} not a candidate");
            }
        }
    }

    #[test]
    fn mutation_preserves_permutation_and_constraint() {
        let sp = space(21, 8, (0..10).collect());
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = sp.random_config(&mut rng);
        for _ in 0..200 {
            cfg = sp.mutate(&cfg, &mut rng);
            let mut sorted = cfg.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..21).collect::<Vec<_>>(), "still a permutation");
            for &r in cfg.iter().take(sp.internal_slots()) {
                assert!(sp.candidates.contains(&r));
            }
        }
    }

    #[test]
    fn annealing_finds_clustered_internals() {
        // Replicas 0..8 are fast; the best tree puts all internals there.
        let sp = space(21, 8, (0..21).collect());
        let (tree, score) = search_tree(
            &sp,
            AnnealingParams {
                iterations: 8_000,
                ..Default::default()
            },
            7,
        );
        assert!(score < 450.0, "score {score} should reflect mostly-fast paths");
        let fast_internals = tree
            .internal_nodes()
            .iter()
            .filter(|&&r| r < 8)
            .count();
        assert!(
            fast_internals >= 4,
            "most internal nodes should be fast, got {:?}",
            tree.internal_nodes()
        );
    }

    #[test]
    fn longer_search_is_not_worse() {
        let sp = space(43, 12, (0..43).collect());
        let short = search_tree(
            &sp,
            AnnealingParams {
                iterations: 200,
                ..Default::default()
            },
            3,
        )
        .1;
        let long = search_tree(
            &sp,
            AnnealingParams {
                iterations: 20_000,
                ..Default::default()
            },
            3,
        )
        .1;
        assert!(long <= short);
    }

    #[test]
    fn search_is_seed_deterministic() {
        let sp = space(21, 8, (0..21).collect());
        let params = AnnealingParams {
            iterations: 1_000,
            ..Default::default()
        };
        assert_eq!(search_tree(&sp, params, 5).1, search_tree(&sp, params, 5).1);
    }
}
