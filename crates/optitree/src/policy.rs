//! Tree policies: OptiTree and the Kauri-sa baseline.
//!
//! * [`OptiTreePolicy`] — simulated-annealing tree selection over the shared
//!   latency matrix, constrained to OptiLog's candidate set. On a view
//!   failure the replicas missing from the quorum are treated as suspicions:
//!   the tree-exclusion rule of §6.4 removes the failed internal node
//!   (possibly paired with one correct replica) from the candidate set and
//!   raises the fault estimate `u`, so the next tree is both valid and
//!   provisioned for `q + u` votes.
//! * [`KauriSaPolicy`] — the §7.5 baseline: SA-optimised trees, but after a
//!   failure *all* internal nodes of the failed tree are excluded and the
//!   score keeps provisioning for the worst case `f`.

use crate::score::{tree_score, tree_timeouts};
use crate::search::{search_tree, TreeSearchSpace};
use kauri::{Tree, TreePolicy};
use netsim::Duration;
use optilog::AnnealingParams;
use rsm::SystemConfig;
use std::collections::BTreeSet;

/// OptiTree: candidate-constrained SA tree selection with the `u` estimate.
pub struct OptiTreePolicy {
    system: SystemConfig,
    matrix_rtt_ms: Vec<f64>,
    candidates: BTreeSet<usize>,
    estimate_u: usize,
    annealing: AnnealingParams,
    seed: u64,
    delta: f64,
    last_tree: Option<Tree>,
    reconfigurations: usize,
}

impl OptiTreePolicy {
    /// Create the policy from the shared latency matrix.
    pub fn new(system: SystemConfig, matrix_rtt_ms: Vec<f64>, seed: u64) -> Self {
        OptiTreePolicy {
            candidates: (0..system.n).collect(),
            estimate_u: 0,
            annealing: AnnealingParams {
                iterations: 4_000,
                ..Default::default()
            },
            seed,
            delta: system.delta,
            system,
            matrix_rtt_ms,
            last_tree: None,
            reconfigurations: 0,
        }
    }

    /// Override the annealing budget (maps the paper's search time).
    pub fn with_annealing(mut self, params: AnnealingParams) -> Self {
        self.annealing = params;
        self
    }

    /// Current fault estimate `u`.
    pub fn estimate_u(&self) -> usize {
        self.estimate_u
    }

    /// Current candidate set.
    pub fn candidates(&self) -> &BTreeSet<usize> {
        &self.candidates
    }

    /// The number of votes the tree is provisioned for: `k = q + u`.
    pub fn k(&self) -> usize {
        (self.system.quorum() + self.estimate_u).min(self.system.n)
    }

    fn search_space(&self) -> TreeSearchSpace {
        TreeSearchSpace {
            n: self.system.n,
            branch: self.system.tree_branch_factor(),
            matrix_rtt_ms: self.matrix_rtt_ms.clone(),
            candidates: self.candidates.iter().copied().collect(),
            k: self.k(),
        }
    }
}

impl TreePolicy for OptiTreePolicy {
    fn next_tree(&mut self, n: usize, b: usize) -> Tree {
        // Ensure enough candidates remain to fill the internal positions;
        // Theorem D.1 guarantees this, but guard against degenerate configs.
        if self.candidates.len() < b + 1 {
            self.candidates = (0..n).collect();
            self.estimate_u = 0;
        }
        let space = self.search_space();
        let (tree, _) = search_tree(
            &space,
            self.annealing,
            self.seed.wrapping_add(self.reconfigurations as u64),
        );
        self.reconfigurations += 1;
        self.last_tree = Some(tree.clone());
        tree
    }

    fn vote_threshold(&self, system: &SystemConfig) -> usize {
        system.quorum()
    }

    fn child_timeout(&self) -> Duration {
        match &self.last_tree {
            Some(tree) => {
                tree_timeouts(tree, &self.matrix_rtt_ms, self.system.n, self.k(), self.delta).1
                    + Duration::from_millis(5)
            }
            None => Duration::from_millis(400),
        }
    }

    fn view_timeout(&self) -> Duration {
        match &self.last_tree {
            Some(tree) => {
                let (view, _) =
                    tree_timeouts(tree, &self.matrix_rtt_ms, self.system.n, self.k(), self.delta);
                // Leave headroom for pipelined views queued behind each other.
                view * 3 + Duration::from_millis(50)
            }
            None => Duration::from_millis(2_000),
        }
    }

    fn on_view_failure(&mut self, missing: &[usize]) {
        // §6.4: a failed tree yields suspicions against its unresponsive
        // internal nodes; every such node is excluded together with (at most)
        // one accuser, and u grows by the number of excluded pairs.
        let Some(tree) = &self.last_tree else {
            return;
        };
        let failed_internals: Vec<usize> = tree
            .internal_nodes()
            .into_iter()
            .filter(|r| missing.contains(r))
            .collect();
        if failed_internals.is_empty() {
            // The tree failed without an identifiable internal culprit
            // (e.g. too many leaves down): provision for one more fault.
            self.estimate_u = (self.estimate_u + 1).min(self.system.f);
            return;
        }
        for internal in failed_internals {
            if self.candidates.remove(&internal) {
                self.estimate_u = (self.estimate_u + 1).min(self.system.n);
            }
        }
    }

    fn name(&self) -> &'static str {
        "optitree"
    }
}

/// Kauri-sa: SA-optimised trees without OptiLog's candidate set or estimate.
/// After each failure, every internal node of the failed tree is excluded
/// (the behaviour described in §7.5), and the score always provisions for
/// the worst case `k = q + f`.
pub struct KauriSaPolicy {
    system: SystemConfig,
    matrix_rtt_ms: Vec<f64>,
    excluded: BTreeSet<usize>,
    annealing: AnnealingParams,
    seed: u64,
    last_tree: Option<Tree>,
    reconfigurations: usize,
}

impl KauriSaPolicy {
    /// Create the baseline policy.
    pub fn new(system: SystemConfig, matrix_rtt_ms: Vec<f64>, seed: u64) -> Self {
        KauriSaPolicy {
            system,
            matrix_rtt_ms,
            excluded: BTreeSet::new(),
            annealing: AnnealingParams {
                iterations: 4_000,
                ..Default::default()
            },
            seed,
            last_tree: None,
            reconfigurations: 0,
        }
    }

    /// Replicas currently excluded from internal positions.
    pub fn excluded(&self) -> &BTreeSet<usize> {
        &self.excluded
    }
}

impl TreePolicy for KauriSaPolicy {
    fn next_tree(&mut self, n: usize, b: usize) -> Tree {
        let mut candidates: Vec<usize> = (0..n).filter(|r| !self.excluded.contains(r)).collect();
        if candidates.len() < b + 1 {
            self.excluded.clear();
            candidates = (0..n).collect();
        }
        let space = TreeSearchSpace {
            n,
            branch: b,
            matrix_rtt_ms: self.matrix_rtt_ms.clone(),
            candidates,
            k: (self.system.quorum() + self.system.f).min(n),
        };
        let (tree, _) = search_tree(
            &space,
            self.annealing,
            self.seed.wrapping_add(self.reconfigurations as u64),
        );
        self.reconfigurations += 1;
        self.last_tree = Some(tree.clone());
        tree
    }

    fn on_view_failure(&mut self, _missing: &[usize]) {
        if let Some(tree) = &self.last_tree {
            self.excluded.extend(tree.internal_nodes());
        }
    }

    fn name(&self) -> &'static str {
        "kauri-sa"
    }
}

/// Score a policy-produced tree with Definition 1 (helper for harnesses).
pub fn score_tree(tree: &Tree, matrix_rtt_ms: &[f64], n: usize, k: usize) -> f64 {
    tree_score(tree, matrix_rtt_ms, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, cluster: usize) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = if a < cluster && b < cluster { 10.0 } else { 200.0 };
                }
            }
        }
        m
    }

    #[test]
    fn optitree_picks_better_trees_than_random() {
        let n = 21;
        let system = SystemConfig::new(n);
        let m = clustered(n, 10);
        let mut policy = OptiTreePolicy::new(system, m.clone(), 3);
        let tree = policy.next_tree(n, system.tree_branch_factor());
        let k = policy.k();
        let opt_score = tree_score(&tree, &m, n, k);
        // Average random tree score.
        let rand_score: f64 = (0..20)
            .map(|s| tree_score(&Tree::random(n, system.tree_branch_factor(), s), &m, n, k))
            .sum::<f64>()
            / 20.0;
        assert!(
            opt_score < rand_score,
            "OptiTree {opt_score} should beat random {rand_score}"
        );
    }

    #[test]
    fn view_failure_excludes_internal_and_raises_u() {
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 21), 1);
        let tree = policy.next_tree(n, system.tree_branch_factor());
        let victim = tree.intermediates[0];
        assert_eq!(policy.estimate_u(), 0);
        policy.on_view_failure(&[victim]);
        assert_eq!(policy.estimate_u(), 1);
        assert!(!policy.candidates().contains(&victim));
        let next = policy.next_tree(n, system.tree_branch_factor());
        assert!(
            !next.internal_nodes().contains(&victim),
            "excluded replica must not be internal again"
        );
    }

    #[test]
    fn failure_without_internal_culprit_still_raises_u() {
        let n = 13;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 13), 1);
        let tree = policy.next_tree(n, 3);
        let some_leaf = *tree.leaves_of(tree.intermediates[0]).first().expect("leaf");
        policy.on_view_failure(&[some_leaf]);
        assert_eq!(policy.estimate_u(), 1);
        assert_eq!(policy.candidates().len(), n, "leaves are not excluded");
    }

    #[test]
    fn kauri_sa_excludes_all_internals_after_failure() {
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = KauriSaPolicy::new(system, clustered(n, 21), 9);
        let t1 = policy.next_tree(n, 4);
        policy.on_view_failure(&[t1.root]);
        assert_eq!(policy.excluded().len(), 5, "root + 4 intermediates excluded");
        let t2 = policy.next_tree(n, 4);
        for r in t1.internal_nodes() {
            assert!(!t2.internal_nodes().contains(&r));
        }
    }

    #[test]
    fn optitree_timeouts_reflect_tree_latency() {
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 21), 2);
        assert_eq!(policy.view_timeout(), Duration::from_millis(2_000), "default before a tree exists");
        let _ = policy.next_tree(n, 4);
        let view = policy.view_timeout();
        // All links are 10 ms RTT, so the view timeout must be tight (well
        // below the 2 s default) once derived from the tree.
        assert!(view < Duration::from_millis(500), "got {view}");
        assert!(policy.child_timeout() < Duration::from_millis(100));
    }

    #[test]
    fn candidate_exhaustion_resets_instead_of_panicking() {
        let n = 13;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 13), 4);
        // Fail enough internal nodes to exhaust the candidate pool.
        for _ in 0..12 {
            let tree = policy.next_tree(n, 3);
            let internals = tree.internal_nodes();
            policy.on_view_failure(&internals);
        }
        let tree = policy.next_tree(n, 3);
        assert_eq!(tree.size(), n);
    }
}
