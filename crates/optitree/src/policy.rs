//! Tree policies: OptiTree and the Kauri-sa baseline.
//!
//! * [`OptiTreePolicy`] — simulated-annealing tree selection over the shared
//!   latency matrix, constrained to OptiLog's candidate set. On a view
//!   failure the replicas missing from the quorum are treated as suspicions:
//!   the tree-exclusion rule of §6.4 removes the failed internal node
//!   (possibly paired with one correct replica) from the candidate set and
//!   raises the fault estimate `u`, so the next tree is both valid and
//!   provisioned for `q + u` votes.
//! * [`KauriSaPolicy`] — the §7.5 baseline: SA-optimised trees, but after a
//!   failure *all* internal nodes of the failed tree are excluded and the
//!   score keeps provisioning for the worst case `f`.
//!
//! OptiTree consumes misbehavior evidence exclusively as *committed*
//! reciprocal suspicion pairs (§6.4) flowing through the replicated
//! configuration log: each pair becomes an edge of a [`SuspicionMonitor`]
//! running the disjoint-edge/triangle exclusion strategy, and the candidate
//! set handed to the SA search is the monitor's selection intersected with
//! the local crash-exclusion set. Because every replica's monitor digests
//! the identical committed pair sequence, the exclusion decisions converge
//! without trusting any replica's private blame.

use crate::score::{tree_score, tree_timeouts};
use crate::search::{search_tree, TreeSearchSpace};
use kauri::{Tree, TreePolicy};
use runtime::Duration;
use optilog::{
    AnnealingParams, PhaseFilter, Suspicion, SuspicionMonitor, SuspicionMonitorParams,
    SuspicionPair,
};
use rsm::SystemConfig;
use std::collections::BTreeSet;

/// OptiTree: candidate-constrained SA tree selection with the `u` estimate.
pub struct OptiTreePolicy {
    system: SystemConfig,
    matrix_rtt_ms: Vec<f64>,
    candidates: BTreeSet<usize>,
    estimate_u: usize,
    annealing: AnnealingParams,
    seed: u64,
    delta: f64,
    last_tree: Option<Tree>,
    reconfigurations: usize,
    /// Judges the committed pair evidence (§6.4): causal filtering by
    /// topology depth, reciprocation tracking, disjoint-pair exclusion.
    monitor: SuspicionMonitor,
    /// Causal filter applied *before* the monitor: the monitor's own filter
    /// only guards `Slow` suspicions, while a reciprocation of a filtered
    /// echo would still create an edge via its censoring heuristic — and an
    /// innocent intermediate implicated only by filtered echoes must not be
    /// excluded. Reset at every adopted epoch (round numbers are reused).
    filter: PhaseFilter,
    /// Forward pairs the filter accepted, normalized (accuser, accused,
    /// round): only their reciprocations reach the monitor.
    accepted_pairs: BTreeSet<(usize, usize, u64)>,
    /// Adopted configuration epochs seen — the monitor's leader-term clock.
    terms: u64,
    /// Cached monitor selection (refreshed when evidence or terms change):
    /// replicas the committed pairs exclude, and their `u` contribution.
    monitor_excluded: BTreeSet<usize>,
    monitor_u: usize,
}

impl OptiTreePolicy {
    /// Create the policy from the shared latency matrix.
    pub fn new(system: SystemConfig, matrix_rtt_ms: Vec<f64>, seed: u64) -> Self {
        OptiTreePolicy {
            candidates: (0..system.n).collect(),
            estimate_u: 0,
            annealing: AnnealingParams {
                iterations: 4_000,
                ..Default::default()
            },
            seed,
            delta: system.delta,
            monitor: SuspicionMonitor::new(
                SuspicionMonitorParams::new(system.n, system.f).with_tree_strategy(),
            ),
            filter: PhaseFilter::new(),
            accepted_pairs: BTreeSet::new(),
            terms: 0,
            monitor_excluded: BTreeSet::new(),
            monitor_u: 0,
            system,
            matrix_rtt_ms,
            last_tree: None,
            reconfigurations: 0,
        }
    }

    /// Re-derive the cached exclusion view from the monitor after new
    /// committed evidence or a term change.
    fn refresh_monitor_cache(&mut self) {
        let sel = self.monitor.selection();
        self.monitor_excluded = (0..self.system.n).filter(|&r| !sel.contains(r)).collect();
        self.monitor_u = sel.estimate_u;
    }

    /// Override the annealing budget (maps the paper's search time).
    pub fn with_annealing(mut self, params: AnnealingParams) -> Self {
        self.annealing = params;
        self
    }

    /// Current fault estimate `u`: locally observed view failures plus the
    /// pair-derived estimate of the committed-evidence monitor. The two
    /// sources can describe the same incident (a provisional local +1
    /// before the pair evidence commits), so the sum is capped at the
    /// system's fault threshold — provisioning for more than `f` faults is
    /// never warranted and would only inflate every tree's vote target.
    pub fn estimate_u(&self) -> usize {
        (self.estimate_u + self.monitor_u).min(self.system.f)
    }

    /// Current candidate set (local crash exclusions only; the pair-driven
    /// exclusions of the monitor are intersected in at search time — see
    /// [`OptiTreePolicy::effective_candidates`]).
    pub fn candidates(&self) -> &BTreeSet<usize> {
        &self.candidates
    }

    /// The candidates the SA search may place in internal positions: the
    /// local set minus every replica the committed pair evidence excludes.
    pub fn effective_candidates(&self) -> Vec<usize> {
        self.candidates
            .iter()
            .copied()
            .filter(|r| !self.monitor_excluded.contains(r))
            .collect()
    }

    /// The number of votes the tree is provisioned for: `k = q + u`.
    pub fn k(&self) -> usize {
        (self.system.quorum() + self.estimate_u()).min(self.system.n)
    }

    fn search_space(&self) -> TreeSearchSpace {
        TreeSearchSpace {
            n: self.system.n,
            branch: self.system.tree_branch_factor(),
            matrix_rtt_ms: self.matrix_rtt_ms.clone(),
            candidates: self.effective_candidates(),
            k: self.k(),
        }
    }
}

impl TreePolicy for OptiTreePolicy {
    fn next_tree(&mut self, n: usize, b: usize) -> Tree {
        // Ensure enough candidates remain to fill the internal positions;
        // Theorem D.1 guarantees this, but guard against degenerate configs.
        if self.effective_candidates().len() < b + 1 {
            self.candidates = (0..n).collect();
            self.estimate_u = 0;
            if self.effective_candidates().len() < b + 1 {
                // Even the committed evidence excludes too much: discard the
                // accumulated suspicions (the §4.2.3 too-many-suspicions
                // rule, coarse-grained) rather than deadlock. Resetting the
                // monitor itself — not just the cached view — keeps the
                // relief durable: otherwise the next committed pair would
                // restore the full exclusion set and this reset would wipe
                // the crash exclusions again on every reconfiguration.
                self.monitor = SuspicionMonitor::new(
                    SuspicionMonitorParams::new(self.system.n, self.system.f)
                        .with_tree_strategy(),
                );
                self.monitor.on_view(self.terms);
                self.refresh_monitor_cache();
            }
        }
        let space = self.search_space();
        let (tree, _) = search_tree(
            &space,
            self.annealing,
            self.seed.wrapping_add(self.reconfigurations as u64),
        );
        self.reconfigurations += 1;
        self.last_tree = Some(tree.clone());
        tree
    }

    fn vote_threshold(&self, system: &SystemConfig) -> usize {
        system.quorum()
    }

    fn child_timeout(&self) -> Duration {
        match &self.last_tree {
            Some(tree) => {
                tree_timeouts(tree, &self.matrix_rtt_ms, self.system.n, self.k(), self.delta).1
                    + Duration::from_millis(5)
            }
            None => Duration::from_millis(400),
        }
    }

    fn view_timeout(&self) -> Duration {
        match &self.last_tree {
            Some(tree) => {
                let (view, _) =
                    tree_timeouts(tree, &self.matrix_rtt_ms, self.system.n, self.k(), self.delta);
                // Leave headroom for pipelined views queued behind each other.
                view * 3 + Duration::from_millis(50)
            }
            None => Duration::from_millis(2_000),
        }
    }

    fn on_view_failure(&mut self, missing: &[usize]) {
        // §6.4: a failed tree yields suspicions against its unresponsive
        // internal nodes; every such node is excluded together with (at most)
        // one accuser, and u grows by the number of excluded pairs.
        let Some(tree) = &self.last_tree else {
            return;
        };
        let failed_internals: Vec<usize> = tree
            .internal_nodes()
            .into_iter()
            .filter(|r| missing.contains(r))
            .collect();
        if failed_internals.is_empty() {
            // The tree failed without an identifiable internal culprit
            // (a withheld-payload failure, or too many leaves down): the
            // committed pair evidence names the culprit once it flows
            // through the log; until then, provision for one more fault.
            self.estimate_u = (self.estimate_u + 1).min(self.system.f);
            return;
        }
        for internal in failed_internals {
            if self.candidates.remove(&internal) {
                self.estimate_u = (self.estimate_u + 1).min(self.system.n);
            }
        }
    }

    fn on_committed_pair(&mut self, pair: &SuspicionPair) {
        // The committed pair becomes an edge of the suspicion graph; the
        // disjoint-edge/triangle strategy excludes the pair members the
        // evidence keeps implicating (the actual delayer reappears in every
        // pair it caused; an innocent root appears in none). Deeper echoes
        // of an already-explained round — and reciprocations of such
        // filtered echoes — never reach the graph.
        if pair.reciprocal {
            if !self
                .accepted_pairs
                .contains(&(pair.accused, pair.accuser, pair.round))
            {
                return;
            }
        } else {
            if !self.filter.accept(pair.round, pair.phase) {
                return;
            }
            self.accepted_pairs
                .insert((pair.accuser, pair.accused, pair.round));
        }
        self.monitor.on_suspicion(&Suspicion::from_pair(pair));
        self.refresh_monitor_cache();
    }

    fn on_adopted_epoch(&mut self, _epoch: u64) {
        // One adopted configuration = one leader term: the clock the
        // reciprocation (`f + 1`) and stability (`w`) windows count in. A
        // new term's proposer may reuse round numbers, so the causal filter
        // starts fresh (accepted pairs are kept: a reciprocation may
        // legitimately commit just after the epoch boundary).
        self.terms += 1;
        self.monitor.on_view(self.terms);
        self.filter.reset();
        self.refresh_monitor_cache();
    }

    fn excluded(&self) -> Vec<usize> {
        (0..self.system.n)
            .filter(|r| !self.candidates.contains(r) || self.monitor_excluded.contains(r))
            .collect()
    }

    fn name(&self) -> &'static str {
        "optitree"
    }
}

/// Kauri-sa: SA-optimised trees without OptiLog's candidate set or estimate.
/// After each failure, every internal node of the failed tree is excluded
/// (the behaviour described in §7.5), and the score always provisions for
/// the worst case `k = q + f`.
pub struct KauriSaPolicy {
    system: SystemConfig,
    matrix_rtt_ms: Vec<f64>,
    excluded: BTreeSet<usize>,
    annealing: AnnealingParams,
    seed: u64,
    last_tree: Option<Tree>,
    reconfigurations: usize,
}

impl KauriSaPolicy {
    /// Create the baseline policy.
    pub fn new(system: SystemConfig, matrix_rtt_ms: Vec<f64>, seed: u64) -> Self {
        KauriSaPolicy {
            system,
            matrix_rtt_ms,
            excluded: BTreeSet::new(),
            annealing: AnnealingParams {
                iterations: 4_000,
                ..Default::default()
            },
            seed,
            last_tree: None,
            reconfigurations: 0,
        }
    }

    /// Replicas currently excluded from internal positions.
    pub fn excluded(&self) -> &BTreeSet<usize> {
        &self.excluded
    }
}

impl TreePolicy for KauriSaPolicy {
    fn next_tree(&mut self, n: usize, b: usize) -> Tree {
        let mut candidates: Vec<usize> = (0..n).filter(|r| !self.excluded.contains(r)).collect();
        if candidates.len() < b + 1 {
            self.excluded.clear();
            candidates = (0..n).collect();
        }
        let space = TreeSearchSpace {
            n,
            branch: b,
            matrix_rtt_ms: self.matrix_rtt_ms.clone(),
            candidates,
            k: (self.system.quorum() + self.system.f).min(n),
        };
        let (tree, _) = search_tree(
            &space,
            self.annealing,
            self.seed.wrapping_add(self.reconfigurations as u64),
        );
        self.reconfigurations += 1;
        self.last_tree = Some(tree.clone());
        tree
    }

    fn on_view_failure(&mut self, _missing: &[usize]) {
        if let Some(tree) = &self.last_tree {
            self.excluded.extend(tree.internal_nodes());
        }
    }

    // Deliberately no `on_committed_pair` override: Kauri-sa is the §7.5
    // baseline without OptiLog's evidence pipeline — it blames whole trees,
    // not pairs.

    fn excluded(&self) -> Vec<usize> {
        self.excluded.iter().copied().collect()
    }

    fn name(&self) -> &'static str {
        "kauri-sa"
    }
}

/// Score a policy-produced tree with Definition 1 (helper for harnesses).
pub fn score_tree(tree: &Tree, matrix_rtt_ms: &[f64], n: usize, k: usize) -> f64 {
    tree_score(tree, matrix_rtt_ms, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, cluster: usize) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = if a < cluster && b < cluster { 10.0 } else { 200.0 };
                }
            }
        }
        m
    }

    #[test]
    fn optitree_picks_better_trees_than_random() {
        let n = 21;
        let system = SystemConfig::new(n);
        let m = clustered(n, 10);
        let mut policy = OptiTreePolicy::new(system, m.clone(), 3);
        let tree = policy.next_tree(n, system.tree_branch_factor());
        let k = policy.k();
        let opt_score = tree_score(&tree, &m, n, k);
        // Average random tree score.
        let rand_score: f64 = (0..20)
            .map(|s| tree_score(&Tree::random(n, system.tree_branch_factor(), s), &m, n, k))
            .sum::<f64>()
            / 20.0;
        assert!(
            opt_score < rand_score,
            "OptiTree {opt_score} should beat random {rand_score}"
        );
    }

    #[test]
    fn view_failure_excludes_internal_and_raises_u() {
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 21), 1);
        let tree = policy.next_tree(n, system.tree_branch_factor());
        let victim = tree.intermediates[0];
        assert_eq!(policy.estimate_u(), 0);
        policy.on_view_failure(&[victim]);
        assert_eq!(policy.estimate_u(), 1);
        assert!(!policy.candidates().contains(&victim));
        let next = policy.next_tree(n, system.tree_branch_factor());
        assert!(
            !next.internal_nodes().contains(&victim),
            "excluded replica must not be internal again"
        );
    }

    #[test]
    fn failure_without_internal_culprit_still_raises_u() {
        let n = 13;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 13), 1);
        let tree = policy.next_tree(n, 3);
        let some_leaf = *tree.leaves_of(tree.intermediates[0]).first().expect("leaf");
        policy.on_view_failure(&[some_leaf]);
        assert_eq!(policy.estimate_u(), 1);
        assert_eq!(policy.candidates().len(), n, "leaves are not excluded");
    }

    #[test]
    fn kauri_sa_excludes_all_internals_after_failure() {
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = KauriSaPolicy::new(system, clustered(n, 21), 9);
        let t1 = policy.next_tree(n, 4);
        policy.on_view_failure(&[t1.root]);
        assert_eq!(policy.excluded().len(), 5, "root + 4 intermediates excluded");
        let t2 = policy.next_tree(n, 4);
        for r in t1.internal_nodes() {
            assert!(!t2.internal_nodes().contains(&r));
        }
    }

    #[test]
    fn optitree_timeouts_reflect_tree_latency() {
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 21), 2);
        assert_eq!(policy.view_timeout(), Duration::from_millis(2_000), "default before a tree exists");
        let _ = policy.next_tree(n, 4);
        let view = policy.view_timeout();
        // All links are 10 ms RTT, so the view timeout must be tight (well
        // below the 2 s default) once derived from the tree.
        assert!(view < Duration::from_millis(500), "got {view}");
        assert!(policy.child_timeout() < Duration::from_millis(100));
    }

    #[test]
    fn committed_pairs_exclude_the_recurring_member_not_the_root() {
        // The overtly-delaying-intermediate shape: replica 5 (an
        // intermediate) withholds forwarded payloads, so each of its leaves
        // commits a (leaf, 5) pair and 5 reciprocates. The disjoint-pair
        // rule excludes 5 (with at most one accuser); the root — implicated
        // by no pair — stays a candidate.
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 21), 1);
        let first = policy.next_tree(n, system.tree_branch_factor());
        let root = first.root;
        let attacker = 5;
        assert_ne!(root, attacker, "test setup: the root is not the attacker");
        for (i, leaf) in [10usize, 11, 12].into_iter().enumerate() {
            let pair = SuspicionPair {
                accuser: leaf,
                accused: attacker,
                round: 100 + i as u64,
                phase: 2,
                reciprocal: false,
            };
            policy.on_committed_pair(&pair);
            policy.on_committed_pair(&pair.reciprocation());
        }
        policy.on_adopted_epoch(2);
        assert!(policy.excluded().contains(&attacker), "pairs must exclude the delayer");
        assert!(
            !policy.excluded().contains(&root),
            "the innocent root must stay eligible: {:?}",
            policy.excluded()
        );
        assert!(policy.estimate_u() >= 1, "each excluded pair raises u");
        let next = policy.next_tree(n, system.tree_branch_factor());
        assert!(
            !next.internal_nodes().contains(&attacker),
            "the delayer must not hold an internal position again"
        );
    }

    #[test]
    fn phase_filter_keeps_root_level_evidence_only() {
        // A delaying *root* floods every tree edge with pairs: the
        // intermediates' phase-1 pairs commit alongside the leaves' phase-2
        // echoes of the very same withheld views. The causal filter keeps
        // the root-most evidence per round, so the root is excluded while
        // the echo pairs do not pile up extra exclusions.
        let n = 21;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 21), 1);
        let _ = policy.next_tree(n, system.tree_branch_factor());
        let root = 0;
        for (accuser, phase) in [(1usize, 1u32), (2, 1), (3, 1), (10, 2), (11, 2)] {
            let accused = if phase == 1 { root } else { accuser - 9 };
            let pair = SuspicionPair {
                accuser,
                accused,
                round: 50,
                phase,
                reciprocal: false,
            };
            policy.on_committed_pair(&pair);
            policy.on_committed_pair(&pair.reciprocation());
        }
        assert!(policy.excluded().contains(&root), "the delaying root is excluded");
        // The leaves' deeper echoes of round 50 (accusing intermediates 1
        // and 2) were causally filtered: the innocent intermediates they
        // would implicate are not *both* swept out with the root.
        assert!(
            !(policy.excluded().contains(&1) && policy.excluded().contains(&2)),
            "echo pairs must not exclude every implicated intermediate: {:?}",
            policy.excluded()
        );
    }

    #[test]
    fn candidate_exhaustion_resets_instead_of_panicking() {
        let n = 13;
        let system = SystemConfig::new(n);
        let mut policy = OptiTreePolicy::new(system, clustered(n, 13), 4);
        // Fail enough internal nodes to exhaust the candidate pool.
        for _ in 0..12 {
            let tree = policy.next_tree(n, 3);
            let internals = tree.internal_nodes();
            policy.on_view_failure(&internals);
        }
        let tree = policy.next_tree(n, 3);
        assert_eq!(tree.size(), n);
    }
}
