//! The targeted-suspicion attack of §7.5 / Fig 10.
//!
//! Faulty replicas pre-compute the optimal tree from the recorded latencies
//! and then raise suspicions against its correct internal nodes, forcing a
//! reconfiguration. Each attack step removes one internal node (paired with
//! the attacking root suspicion) from the candidate pool and, for OptiTree,
//! raises the estimate `u`. The simulation reports the score of the tree
//! selected after every reconfiguration — the y-axis of Fig 10 — for the
//! three variants compared in the paper.

use crate::policy::{KauriSaPolicy, OptiTreePolicy};
use crate::score::tree_score;
use kauri::{Tree, TreePolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsm::SystemConfig;

/// Which tree-selection strategy the attack is run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackVariant {
    /// Kauri: random trees, reconfiguration waits for `q + f` votes.
    Kauri,
    /// Kauri-sa: SA trees, all internals excluded after each failure, `q + f`.
    KauriSa,
    /// OptiTree: SA trees constrained to candidates, `q + u` votes.
    OptiTree,
}

/// The outcome of one attack simulation.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The variant attacked.
    pub variant: AttackVariant,
    /// Score (predicted latency, ms) of the tree active after `i`
    /// reconfigurations, for `i = 0..=reconfigurations`.
    pub scores: Vec<f64>,
}

/// Simulate `reconfigurations` rounds of the targeted-suspicion attack.
pub fn simulate_suspicion_attack(
    variant: AttackVariant,
    n: usize,
    matrix_rtt_ms: &[f64],
    reconfigurations: usize,
    seed: u64,
) -> AttackOutcome {
    let system = SystemConfig::new(n);
    let b = system.tree_branch_factor();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut opti = OptiTreePolicy::new(system, matrix_rtt_ms.to_vec(), seed);
    let mut kauri_sa = KauriSaPolicy::new(system, matrix_rtt_ms.to_vec(), seed);
    let mut kauri_trial = 0u64;

    let mut scores = Vec::with_capacity(reconfigurations + 1);
    for step in 0..=reconfigurations {
        let (tree, k) = match variant {
            AttackVariant::Kauri => {
                // Random tree; Kauri must provision for the worst case f.
                let tree = Tree::random(n, b, seed.wrapping_mul(31).wrapping_add(kauri_trial));
                kauri_trial += 1;
                (tree, system.quorum() + system.f)
            }
            AttackVariant::KauriSa => {
                let tree = kauri_sa.next_tree(n, b);
                (tree, system.quorum() + system.f)
            }
            AttackVariant::OptiTree => {
                let tree = opti.next_tree(n, b);
                let k = (system.quorum() + opti.estimate_u()).min(n);
                (tree, k)
            }
        };
        scores.push(tree_score(&tree, matrix_rtt_ms, n, k.min(n)));

        if step == reconfigurations {
            break;
        }
        // The attacker picks a random internal node and suspects the root,
        // rendering the tree invalid and forcing a reconfiguration.
        let internals = tree.internal_nodes();
        let victim = *internals
            .choose(&mut rng)
            .expect("tree has internal nodes");
        match variant {
            AttackVariant::Kauri => {}
            AttackVariant::KauriSa => kauri_sa.on_view_failure(&[victim]),
            AttackVariant::OptiTree => opti.on_view_failure(&[victim, tree.root]),
        }
    }

    AttackOutcome { variant, scores }
}
