//! Aware's deterministic latency prediction (`score(·)`).
//!
//! Given the shared latency matrix, Aware predicts the end-to-end duration of
//! one consensus round for a candidate configuration (leader + weights) by
//! simulating the message pattern analytically: the Propose reaches each
//! replica after one one-way delay, Write messages after two, Accepts form at
//! each replica once a weighted quorum of Writes arrived, and the round ends
//! when the leader holds a weighted quorum of Accepts. The same machinery
//! also yields the per-message delays `d_m` that OptiAware's SuspicionSensor
//! needs (TR1–TR3 of Appendix C).

use crate::weights::WeightConfig;

/// One-way latency lookup from a symmetric RTT matrix in milliseconds.
fn one_way(matrix: &[f64], n: usize, a: usize, b: usize) -> f64 {
    if a == b {
        0.0
    } else {
        matrix[a * n + b] / 2.0
    }
}

/// Time at which a weighted quorum of values (weight, arrival-time) is
/// complete: sort by arrival and accumulate weight until the threshold is
/// reached. Returns `f64::INFINITY` if the threshold is unreachable.
pub fn weighted_quorum_time(arrivals: &mut [(u32, f64)], threshold: u32) -> f64 {
    arrivals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times sort"));
    let mut acc = 0u32;
    for &(w, t) in arrivals.iter() {
        acc += w;
        if acc >= threshold {
            return t;
        }
    }
    f64::INFINITY
}

/// Predict the duration of one consensus round (from the leader timestamping
/// the Propose until the leader holds a weighted quorum of Accepts), in
/// milliseconds. `exclude` lists replicas assumed not to respond (e.g. the
/// SuspicionMonitor's estimate of misbehaving replicas is applied by the
/// caller by passing the suspected set).
pub fn predict_round_latency(
    matrix: &[f64],
    n: usize,
    f: usize,
    config: &WeightConfig,
    exclude: &[usize],
) -> f64 {
    let leader = config.leader;
    let threshold = config.quorum_threshold(f);
    let responds = |r: usize| !exclude.contains(&r);

    // Propose arrival at each replica.
    let propose_at: Vec<f64> = (0..n).map(|r| one_way(matrix, n, leader, r)).collect();

    // Write phase: replica r broadcasts after receiving the Propose; replica
    // j holds a weighted Write quorum at write_q[j].
    let mut write_q = vec![f64::INFINITY; n];
    for (j, slot) in write_q.iter_mut().enumerate() {
        if !responds(j) {
            continue;
        }
        let mut arrivals: Vec<(u32, f64)> = (0..n)
            .filter(|&r| responds(r))
            .map(|r| (config.weight(r), propose_at[r] + one_way(matrix, n, r, j)))
            .collect();
        *slot = weighted_quorum_time(&mut arrivals, threshold);
    }

    // Accept phase: replica r sends Accept once its Write quorum formed; the
    // round ends when the leader holds a weighted Accept quorum.
    let mut accept_arrivals: Vec<(u32, f64)> = (0..n)
        .filter(|&r| responds(r))
        .map(|r| (config.weight(r), write_q[r] + one_way(matrix, n, r, leader)))
        .collect();
    weighted_quorum_time(&mut accept_arrivals, threshold)
}

/// Per-message expected delays `d_m` relative to the proposal timestamp for
/// the messages a given `recipient` expects in one round, as
/// `(sender, phase, delay_ms)` triples. Phases: 1 = Propose, 2 = Write,
/// 3 = Accept. These satisfy TR1/TR2: each delay is the delay of the enabling
/// message plus the link latency of the final hop.
pub fn predict_message_delays(
    matrix: &[f64],
    n: usize,
    f: usize,
    config: &WeightConfig,
    recipient: usize,
) -> Vec<(usize, u32, f64)> {
    let leader = config.leader;
    let threshold = config.quorum_threshold(f);
    let mut out = Vec::new();

    let propose_at: Vec<f64> = (0..n).map(|r| one_way(matrix, n, leader, r)).collect();
    // Propose to this recipient (TR1).
    if recipient != leader {
        out.push((leader, 1, propose_at[recipient]));
    }
    // Writes from every other replica (TR2 with m' = Propose).
    for (r, &proposed) in propose_at.iter().enumerate() {
        if r != recipient {
            out.push((r, 2, proposed + one_way(matrix, n, r, recipient)));
        }
    }
    // Accepts from every other replica (TR2 with m' = slowest Write in the
    // fastest weighted quorum at the sender).
    for r in 0..n {
        if r == recipient {
            continue;
        }
        let mut arrivals: Vec<(u32, f64)> = (0..n)
            .map(|s| (config.weight(s), propose_at[s] + one_way(matrix, n, s, r)))
            .collect();
        let write_quorum_at = weighted_quorum_time(&mut arrivals, threshold);
        out.push((r, 3, write_quorum_at + one_way(matrix, n, r, recipient)));
    }
    out
}

/// Search all (leader, V_max holder) assignments exhaustively for small `n`,
/// or greedily for large `n`: Aware's deterministic optimisation step.
/// Returns the best configuration found and its predicted latency.
pub fn optimize_configuration(
    matrix: &[f64],
    n: usize,
    f: usize,
    candidates: &[usize],
    exclude: &[usize],
    epoch: u64,
) -> (WeightConfig, f64) {
    let vmax_count = 2 * f;
    let mut best: Option<(WeightConfig, f64)> = None;

    for &leader in candidates {
        // Greedy V_max assignment for this leader: give high weights to the
        // candidates closest to the leader (by RTT), which is the heuristic
        // Aware's exhaustive search converges to in well-behaved settings.
        let mut others: Vec<usize> = candidates.iter().copied().filter(|&r| r != leader).collect();
        others.sort_by(|&a, &b| {
            matrix[leader * n + a]
                .partial_cmp(&matrix[leader * n + b])
                .expect("finite RTTs")
                .then(a.cmp(&b))
        });
        let mut holders = vec![leader];
        holders.extend(others.iter().copied().take(vmax_count.saturating_sub(1)));
        let config = WeightConfig::with_assignment(n, leader, &holders, epoch);
        let score = predict_round_latency(matrix, n, f, &config, exclude);
        match &best {
            Some((_, s)) if *s <= score => {}
            _ => best = Some((config, score)),
        }
    }
    best.expect("at least one candidate leader")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-replica matrix where replicas {0,1,2} form a fast cluster and 3 is far.
    fn clustered_matrix() -> (Vec<f64>, usize) {
        let n = 4;
        let mut m = vec![0.0; n * n];
        let set = |m: &mut Vec<f64>, a: usize, b: usize, v: f64| {
            m[a * n + b] = v;
            m[b * n + a] = v;
        };
        set(&mut m, 0, 1, 10.0);
        set(&mut m, 0, 2, 10.0);
        set(&mut m, 1, 2, 10.0);
        set(&mut m, 0, 3, 200.0);
        set(&mut m, 1, 3, 200.0);
        set(&mut m, 2, 3, 200.0);
        (m, n)
    }

    #[test]
    fn weighted_quorum_time_accumulates_in_order() {
        let mut arrivals = vec![(1, 30.0), (2, 10.0), (1, 20.0)];
        // threshold 3: 10ms (w2) + 20ms (w1) = 3 → 20ms
        assert_eq!(weighted_quorum_time(&mut arrivals.clone(), 3), 20.0);
        assert_eq!(weighted_quorum_time(&mut arrivals.clone(), 4), 30.0);
        assert!(weighted_quorum_time(&mut arrivals, 10).is_infinite());
    }

    #[test]
    fn round_latency_prefers_cluster_leader() {
        let (m, n) = clustered_matrix();
        let f = 1;
        // Leader in the fast cluster with V_max in the cluster.
        let fast = WeightConfig::with_assignment(n, 0, &[0, 1], 1);
        // Leader at the remote replica.
        let slow = WeightConfig::with_assignment(n, 3, &[3, 0], 1);
        let fast_score = predict_round_latency(&m, n, f, &fast, &[]);
        let slow_score = predict_round_latency(&m, n, f, &slow, &[]);
        assert!(fast_score < slow_score);
        assert!(fast_score > 0.0);
    }

    #[test]
    fn excluding_a_fast_replica_increases_latency() {
        let (m, n) = clustered_matrix();
        let f = 1;
        let config = WeightConfig::with_assignment(n, 0, &[0, 1], 1);
        let base = predict_round_latency(&m, n, f, &config, &[]);
        let degraded = predict_round_latency(&m, n, f, &config, &[1]);
        assert!(degraded >= base);
    }

    #[test]
    fn optimizer_picks_cluster_configuration() {
        let (m, n) = clustered_matrix();
        let all: Vec<usize> = (0..n).collect();
        let (config, score) = optimize_configuration(&m, n, 1, &all, &[], 1);
        assert!([0, 1, 2].contains(&config.leader), "leader should be in the cluster");
        assert!(config.vmax_holders().iter().all(|r| [0, 1, 2].contains(r)));
        // Round trip within the cluster is 10ms; the predicted round should be
        // a small multiple of that, far below the 200ms links.
        assert!(score < 100.0, "score {score}");
    }

    #[test]
    fn optimizer_respects_candidate_restriction() {
        let (m, n) = clustered_matrix();
        // Only replicas 2 and 3 are candidates: the leader must be one of them.
        let (config, _) = optimize_configuration(&m, n, 1, &[2, 3], &[], 1);
        assert!([2, 3].contains(&config.leader));
    }

    #[test]
    fn message_delays_satisfy_tr_requirements() {
        let (m, n) = clustered_matrix();
        let f = 1;
        let config = WeightConfig::with_assignment(n, 0, &[0, 1], 1);
        let delays = predict_message_delays(&m, n, f, &config, 2);
        // The Propose from the leader takes exactly one one-way delay (TR1).
        let propose = delays.iter().find(|(s, p, _)| *s == 0 && *p == 1).expect("propose");
        assert_eq!(propose.2, 5.0);
        // Writes arrive no earlier than the Propose that enables them (TR2).
        for (s, phase, d) in &delays {
            if *phase == 2 {
                let enabling = m[*s] / 2.0; // row 0 (the leader)
                assert!(*d >= enabling);
            }
        }
        // Accept delays are the largest per sender.
        let write_from_1 = delays.iter().find(|(s, p, _)| *s == 1 && *p == 2).expect("write");
        let accept_from_1 = delays.iter().find(|(s, p, _)| *s == 1 && *p == 3).expect("accept");
        assert!(accept_from_1.2 >= write_from_1.2);
    }

    #[test]
    fn prediction_is_deterministic() {
        let (m, n) = clustered_matrix();
        let config = WeightConfig::initial(n, 1);
        let a = predict_round_latency(&m, n, 1, &config, &[]);
        let b = predict_round_latency(&m, n, 1, &config, &[]);
        assert_eq!(a, b);
    }
}
