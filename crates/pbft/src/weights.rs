//! Wheat-style weighted voting configurations.
//!
//! Wheat \[57\] assigns a higher voting weight `V_max` to `2f` replicas and
//! `V_min = 1` to the rest; a quorum forms once the collected weight reaches
//! the threshold, so well-placed high-weight replicas let consensus finish
//! before slow replicas answer. Aware \[13\] additionally chooses *which*
//! replicas get the high weights (and who leads) from measured latencies.
//!
//! This module holds the weight configuration itself and the weighted-quorum
//! arithmetic; the latency prediction lives in [`crate::score`].

use serde::{Deserialize, Serialize};

/// A voting-weight configuration: the leader plus each replica's weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightConfig {
    /// The leader replica.
    pub leader: usize,
    /// Per-replica voting weight (`V_min = 1` or `V_max = 2`).
    pub weights: Vec<u32>,
    /// Configuration epoch (incremented on every reconfiguration).
    pub epoch: u64,
}

/// The higher voting weight assigned to `2f` replicas.
pub const V_MAX: u32 = 2;
/// The default voting weight.
pub const V_MIN: u32 = 1;

impl WeightConfig {
    /// The uniform initial configuration: replica 0 leads, the first `2f`
    /// replicas hold `V_max` (matching BFT-SMaRt's static assignment).
    pub fn initial(n: usize, f: usize) -> Self {
        let mut weights = vec![V_MIN; n];
        for w in weights.iter_mut().take(2 * f) {
            *w = V_MAX;
        }
        WeightConfig {
            leader: 0,
            weights,
            epoch: 0,
        }
    }

    /// A configuration giving `V_max` to the replicas in `vmax_holders` and
    /// the leader role to `leader`.
    pub fn with_assignment(n: usize, leader: usize, vmax_holders: &[usize], epoch: u64) -> Self {
        let mut weights = vec![V_MIN; n];
        for &r in vmax_holders {
            if r < n {
                weights[r] = V_MAX;
            }
        }
        WeightConfig {
            leader,
            weights,
            epoch,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Total voting weight.
    pub fn total_weight(&self) -> u32 {
        self.weights.iter().sum()
    }

    /// The weighted quorum threshold.
    ///
    /// Safety requires any two quorums to intersect in more weight than `f`
    /// Byzantine replicas can hold (`f · V_max`), so the threshold is
    /// `⌊(W + f·V_max)/2⌋ + 1` where `W` is the total weight. This mirrors
    /// Wheat's `Q_v` construction: with well-placed `V_max` replicas, fewer
    /// distinct (fast) replies complete a quorum than with uniform weights.
    pub fn quorum_threshold(&self, f: usize) -> u32 {
        (self.total_weight() + V_MAX * f as u32) / 2 + 1
    }

    /// The replicas holding `V_max`.
    pub fn vmax_holders(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w == V_MAX)
            .map(|(i, _)| i)
            .collect()
    }

    /// Weight of one replica.
    pub fn weight(&self, replica: usize) -> u32 {
        self.weights.get(replica).copied().unwrap_or(0)
    }

    /// True if the votes of `voters` (distinct replicas) reach the weighted
    /// quorum threshold.
    pub fn is_quorum(&self, voters: &[usize], f: usize) -> bool {
        let mut seen = vec![false; self.n()];
        let mut sum = 0;
        for &v in voters {
            if v < self.n() && !seen[v] {
                seen[v] = true;
                sum += self.weights[v];
            }
        }
        sum >= self.quorum_threshold(f)
    }

    /// Special roles of this configuration: the leader and the V_max holders.
    /// These are the roles OptiLog requires to be held by candidates.
    pub fn special_roles(&self) -> Vec<usize> {
        let mut v = vec![self.leader];
        for r in self.vmax_holders() {
            if r != self.leader {
                v.push(r);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_config_gives_vmax_to_2f() {
        let c = WeightConfig::initial(7, 2);
        assert_eq!(c.vmax_holders(), vec![0, 1, 2, 3]);
        assert_eq!(c.total_weight(), 7 + 4);
        assert_eq!(c.leader, 0);
    }

    #[test]
    fn quorum_threshold_preserves_intersection() {
        // Any two weighted quorums must intersect in at least one correct
        // replica: threshold > (total + f_weight_max) / 2 is the classic
        // requirement; check it holds for representative sizes.
        for (n, f) in [(4, 1), (7, 2), (10, 3), (21, 6), (31, 10)] {
            let c = WeightConfig::initial(n, f);
            let total = c.total_weight();
            let threshold = c.quorum_threshold(f);
            // Two quorums overlap in weight >= 2*threshold - total; the
            // overlap must exceed the weight f Byzantine replicas can hold.
            let overlap = 2 * threshold as i64 - total as i64;
            let max_byz_weight = (V_MAX * f as u32) as i64;
            assert!(
                overlap > max_byz_weight,
                "intersection violated for n={n}, f={f}"
            );
        }
    }

    #[test]
    fn weighted_quorum_needs_fewer_fast_replicas() {
        let c = WeightConfig::initial(7, 2);
        // W = 11, threshold = (11 + 4)/2 + 1 = 8. Four V_max replicas
        // (weight 8) suffice…
        assert!(c.is_quorum(&[0, 1, 2, 3], 2));
        // …whereas one V_max + three V_min replicas (weight 5) do not.
        assert!(!c.is_quorum(&[3, 4, 5, 6], 2));
        // Duplicates never count twice.
        assert!(!c.is_quorum(&[0, 0, 0, 0, 0], 2));
        // All replicas always form a quorum.
        assert!(c.is_quorum(&[0, 1, 2, 3, 4, 5, 6], 2));
    }

    #[test]
    fn with_assignment_sets_roles() {
        let c = WeightConfig::with_assignment(7, 3, &[3, 4, 5, 6], 2);
        assert_eq!(c.leader, 3);
        assert_eq!(c.vmax_holders(), vec![3, 4, 5, 6]);
        assert_eq!(c.epoch, 2);
        assert_eq!(c.special_roles(), vec![3, 4, 5, 6]);
        assert_eq!(c.weight(0), V_MIN);
        assert_eq!(c.weight(4), V_MAX);
    }

    #[test]
    fn out_of_range_holders_ignored() {
        let c = WeightConfig::with_assignment(4, 0, &[0, 9], 1);
        assert_eq!(c.vmax_holders(), vec![0]);
        assert_eq!(c.weight(9), 0);
    }
}
