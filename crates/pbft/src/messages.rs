//! Wire messages of the PBFT/BFT-SMaRt-style protocol.

use crypto::Digest;
use rsm::{Block, Command};
use serde::{Deserialize, Serialize};

/// Protocol phases, ordered as the SuspicionSensor's causal filter expects
/// (smaller = earlier in the round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u32)]
pub enum Phase {
    /// Leader proposal (Pre-Prepare in PBFT, Propose in BFT-SMaRt).
    Propose = 1,
    /// First all-to-all vote phase (Prepare / Write).
    Write = 2,
    /// Second all-to-all vote phase (Commit / Accept).
    Accept = 3,
}

impl Phase {
    /// Numeric tag used in timing expectations.
    pub fn tag(self) -> u32 {
        self as u32
    }
}

/// Messages exchanged between replicas and clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PbftMessage {
    /// Client request broadcast to all replicas; the current leader batches it.
    Request {
        /// The command to replicate.
        cmd: Command,
    },
    /// Leader proposal: a block, the leader's proposal timestamp, and any
    /// measurement blobs riding on the proposal (the sensor app of Fig 1).
    Propose {
        /// Consensus sequence number.
        seq: u64,
        /// Configuration epoch the leader believes is active.
        epoch: u64,
        /// The proposed block.
        block: Block,
        /// The leader's proposal timestamp (µs of virtual time) — the
        /// reference point for all per-message timeouts (§4.2.3).
        timestamp_us: u64,
        /// Opaque measurement blobs to be committed with the block.
        measurements: Vec<Vec<u8>>,
    },
    /// First-phase vote.
    Write {
        /// Sequence number being voted on.
        seq: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// The voting replica.
        voter: usize,
    },
    /// Second-phase vote.
    Accept {
        /// Sequence number being voted on.
        seq: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// The voting replica.
        voter: usize,
    },
    /// Execution reply to a client.
    Reply {
        /// The client's command sequence number.
        client_seq: u64,
        /// The replying replica.
        replica: usize,
    },
    /// Latency probe.
    Probe {
        /// Nonce echoed in the reply.
        nonce: u64,
        /// Send time in µs, echoed back so the prober measures RTT.
        sent_at_us: u64,
    },
    /// Reply to a latency probe.
    ProbeReply {
        /// Echoed nonce.
        nonce: u64,
        /// Echoed send time.
        sent_at_us: u64,
        /// The replying replica.
        replica: usize,
    },
    /// Sensor output forwarded to the leader for inclusion in a proposal.
    SensorData {
        /// Opaque measurement blobs.
        blobs: Vec<Vec<u8>>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tags_are_ordered() {
        assert!(Phase::Propose.tag() < Phase::Write.tag());
        assert!(Phase::Write.tag() < Phase::Accept.tag());
    }

    #[test]
    fn messages_are_cloneable_and_serializable() {
        let msg = PbftMessage::Propose {
            seq: 1,
            epoch: 0,
            block: Block::genesis(),
            timestamp_us: 42,
            measurements: vec![vec![1, 2, 3]],
        };
        let cloned = msg.clone();
        let json = serde_json::to_string(&cloned).expect("serializes");
        assert!(json.contains("Propose"));
    }
}
