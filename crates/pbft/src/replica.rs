//! The PBFT/BFT-SMaRt replica and client state machines, driven by the
//! discrete-event simulator.
//!
//! A [`PbftNode`] is either a replica or a client. Replicas run the
//! three-phase protocol with weighted quorums; the leader piggybacks pending
//! measurement blobs on its proposals (the "sensor app" path of Fig 1), and
//! every replica feeds committed blobs to its [`ReconfigPolicy`] in log
//! order, so configuration decisions are identical everywhere. Clients issue
//! requests in a closed loop and record end-to-end latency, which is what
//! Fig 7 plots.

use crate::messages::{PbftMessage, Phase};
use crate::policy::{PbftRoundRecord, ReconfigPolicy};
use crate::weights::WeightConfig;
use crypto::{Digest, Hashable};
use rsm::{Block, Command, CommitStats};
use runtime::{Context, Duration, FaultWindow, Node, NodeId, SimTime, TimeSeries, TimerId};
use std::collections::{BTreeMap, BTreeSet};
use telemetry::{Stage, Telemetry};
use traffic::SharedTrafficQueue;

/// Timer tags used by replicas and clients.
const TIMER_PROBE_START: u64 = 1;
const TIMER_PROBE_COLLECT: u64 = 2;
const TIMER_PROPOSE_RETRY: u64 = 3;
const TIMER_DELAYED_PROPOSE: u64 = 4;

/// One phase of the Pre-Prepare delay attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayStage {
    /// Extra delay added to every proposal while the stage is active.
    pub delay: Duration,
    /// When the stage is active.
    pub window: FaultWindow,
}

/// How a replica behaves.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaBehavior {
    /// Follows the protocol.
    Correct,
    /// Performs the Pre-Prepare delay attack: whenever it is leader and a
    /// stage is active, it delays sending each proposal by the stage's
    /// delay (keeping its proposal timestamp honest, so the delay is
    /// visible as a widened inter-proposal gap — exactly what suspicion
    /// condition (a) detects). Stages let one replica attack in several
    /// phases (e.g. attack → quiet → attack again).
    DelayPropose {
        /// The attack phases; the first stage containing `now` applies.
        stages: Vec<DelayStage>,
    },
}

/// One in-flight consensus instance at a replica.
#[derive(Debug, Clone)]
struct Instance {
    block: Block,
    digest: Digest,
    /// Configuration epoch carried by the proposal message.
    epoch: u64,
    /// The replica that sent the proposal (the epoch's leader).
    leader: usize,
    proposal_ts: SimTime,
    measurements: Vec<Vec<u8>>,
    write_voters: BTreeSet<usize>,
    accept_voters: BTreeSet<usize>,
    sent_accept: bool,
    committed: bool,
    arrivals: Vec<(usize, u32, SimTime)>,
}

/// A record of one reconfiguration, for run reports.
#[derive(Debug, Clone)]
pub struct ReconfigEvent {
    /// When the replica switched.
    pub at: SimTime,
    /// The new configuration.
    pub config: WeightConfig,
}

/// Protocol state of one replica.
pub struct ReplicaState {
    /// Replica id (0-based, below `n`).
    pub id: usize,
    n: usize,
    f: usize,
    batch_cap: usize,
    probe_interval: Duration,
    probe_timeout: Duration,
    behavior: ReplicaBehavior,
    policy: Box<dyn ReconfigPolicy>,
    config: WeightConfig,
    pending_requests: Vec<Command>,
    committed_requests: BTreeSet<(u64, u64)>,
    pending_measurements: Vec<Vec<u8>>,
    instances: BTreeMap<u64, Instance>,
    next_seq: u64,
    last_committed_seq: u64,
    prev_proposal_ts: Option<SimTime>,
    prev_epoch: Option<u64>,
    delayed_block: Option<(u64, Block, Vec<Vec<u8>>)>,
    /// Committed rounds whose observations are still accumulating late
    /// arrivals; they are handed to the policy two commits later so that
    /// messages from replicas outside the fastest quorum are not mistaken
    /// for omissions.
    pending_records: Vec<PbftRoundRecord>,
    probe_nonce: u64,
    probe_rtts: Vec<f64>,
    /// Open-loop traffic source (`None` = client-driven closed loop). When
    /// set, the leader pulls size-or-timeout batches from the shared queue
    /// instead of draining client requests, and no client nodes exist.
    traffic: Option<SharedTrafficQueue>,
    /// Traffic batch ids by proposed sequence number (proposer side).
    traffic_batches: BTreeMap<u64, u64>,
    /// `(seq, digest fingerprint)` per commit, in local commit order — the
    /// exact agreement-checkpoint history the end-of-run auditor consumes
    /// (the live gauges only expose the latest pair).
    commit_checkpoints: Vec<(u64, u64)>,
    /// Telemetry handle (disabled by default).
    telemetry: Telemetry,
    /// Statistics: consensus latency and throughput.
    pub stats: CommitStats,
    /// Reconfigurations this replica performed.
    pub reconfigs: Vec<ReconfigEvent>,
}

impl ReplicaState {
    /// Create a replica.
    pub fn new(
        id: usize,
        n: usize,
        f: usize,
        policy: Box<dyn ReconfigPolicy>,
        behavior: ReplicaBehavior,
    ) -> Self {
        ReplicaState {
            id,
            n,
            f,
            batch_cap: 1000,
            probe_interval: Duration::from_secs(5),
            probe_timeout: Duration::from_millis(800),
            behavior,
            policy,
            config: WeightConfig::initial(n, f),
            pending_requests: Vec::new(),
            committed_requests: BTreeSet::new(),
            pending_measurements: Vec::new(),
            instances: BTreeMap::new(),
            next_seq: 1,
            last_committed_seq: 0,
            prev_proposal_ts: None,
            prev_epoch: None,
            delayed_block: None,
            pending_records: Vec::new(),
            probe_nonce: 0,
            probe_rtts: vec![f64::INFINITY; n],
            traffic: None,
            traffic_batches: BTreeMap::new(),
            commit_checkpoints: Vec::new(),
            telemetry: Telemetry::disabled(),
            stats: CommitStats::new(),
            reconfigs: Vec::new(),
        }
    }

    /// Drive proposals from an open-loop traffic queue instead of the
    /// closed-loop clients.
    pub fn with_traffic(mut self, traffic: Option<SharedTrafficQueue>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Install a telemetry handle (propose/forward/vote/commit spans plus
    /// per-replica commit metrics).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The currently active configuration.
    pub fn config(&self) -> &WeightConfig {
        &self.config
    }

    /// Every `(seq, digest fingerprint)` this replica committed, in local
    /// commit order. Feed these to the auditor's `pbft` surface.
    pub fn commit_checkpoints(&self) -> &[(u64, u64)] {
        &self.commit_checkpoints
    }

    fn is_leader(&self) -> bool {
        self.config.leader == self.id
    }

    fn client_node(&self, client: u64) -> NodeId {
        self.n + client as usize
    }

    fn try_propose(&mut self, ctx: &mut Context<PbftMessage>) {
        if !self.is_leader() || self.delayed_block.is_some() {
            return;
        }
        // Only one instance in flight (BFT-SMaRt's consensus-per-batch).
        if self.next_seq != self.last_committed_seq + 1 {
            return;
        }
        // Leaders propose continuously: when no client requests or
        // measurements are pending, an empty heartbeat block keeps rounds
        // back-to-back, which is what the round-duration estimate `d_rnd`
        // (and therefore suspicion condition (a)) assumes. With an open-loop
        // traffic source the same cadence holds: the leader attaches a batch
        // whenever the queue's size-or-timeout rule has one ready and
        // heartbeats otherwise, so batching never distorts round timing (and
        // never triggers condition (a) against an honest, lightly-loaded
        // leader).
        let commands: Vec<Command> = if let Some(queue) = &self.traffic {
            match queue.try_batch_at(ctx.now, self.id) {
                Some(batch) => {
                    self.traffic_batches.insert(self.next_seq, batch.id);
                    batch.commands
                }
                None => Vec::new(),
            }
        } else {
            let take = self.pending_requests.len().min(self.batch_cap);
            self.pending_requests.drain(..take).collect()
        };
        let block = Block::new(
            Digest::ZERO,
            self.next_seq,
            self.next_seq,
            self.id,
            commands,
        );
        let measurements = std::mem::take(&mut self.pending_measurements);

        if let ReplicaBehavior::DelayPropose { stages } = &self.behavior {
            if let Some(stage) = stages.iter().find(|s| s.window.contains(ctx.now)) {
                // The Pre-Prepare delay attack as its own span on the
                // attacker's track (the Fig 7 "dissemination-hold" bar).
                self.telemetry.span(
                    Stage::Hold,
                    self.id,
                    self.next_seq,
                    ctx.now.as_micros(),
                    stage.delay.as_micros(),
                    vec![],
                );
                self.delayed_block = Some((self.next_seq, block, measurements));
                ctx.set_timer(stage.delay, TIMER_DELAYED_PROPOSE);
                return;
            }
        }
        self.send_propose(ctx, self.next_seq, block, measurements);
    }

    fn send_propose(
        &mut self,
        ctx: &mut Context<PbftMessage>,
        seq: u64,
        block: Block,
        measurements: Vec<Vec<u8>>,
    ) {
        self.next_seq = seq + 1;
        let epoch = self.config.epoch;
        let msg = PbftMessage::Propose {
            seq,
            epoch,
            block: block.clone(),
            timestamp_us: ctx.now.as_micros(),
            measurements: measurements.clone(),
        };
        self.telemetry.instant(
            Stage::Propose,
            self.id,
            seq,
            ctx.now.as_micros(),
            vec![("commands", block.len() as f64)],
        );
        let replicas: Vec<NodeId> = (0..self.n).filter(|&r| r != self.id).collect();
        ctx.multicast(&replicas, msg);
        // Process our own proposal locally.
        self.handle_propose(
            ctx,
            self.id,
            seq,
            epoch,
            block,
            ctx.now.as_micros(),
            measurements,
        );
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Propose message fields
    fn handle_propose(
        &mut self,
        ctx: &mut Context<PbftMessage>,
        from: usize,
        seq: u64,
        epoch: u64,
        block: Block,
        timestamp_us: u64,
        measurements: Vec<Vec<u8>>,
    ) {
        if seq <= self.last_committed_seq {
            return;
        }
        let digest = block.digest();
        let entry = self.instances.entry(seq).or_insert_with(|| Instance {
            block: block.clone(),
            digest,
            epoch,
            leader: from,
            proposal_ts: SimTime::from_micros(timestamp_us),
            measurements: measurements.clone(),
            write_voters: BTreeSet::new(),
            accept_voters: BTreeSet::new(),
            sent_accept: false,
            committed: false,
            arrivals: Vec::new(),
        });
        entry.block = block;
        entry.digest = digest;
        entry.epoch = epoch;
        entry.leader = from;
        entry.proposal_ts = SimTime::from_micros(timestamp_us);
        entry.measurements = measurements;
        entry.arrivals.push((from, Phase::Propose.tag(), ctx.now));
        if from != self.id {
            // Dissemination hop: leader's (honest) proposal timestamp →
            // delivery at this replica, including any scripted hold.
            self.telemetry.span(
                Stage::Forward,
                self.id,
                seq,
                timestamp_us,
                ctx.now.as_micros().saturating_sub(timestamp_us),
                vec![],
            );
        }
        self.telemetry
            .instant(Stage::Vote, self.id, seq, ctx.now.as_micros(), vec![]);

        // Vote Write.
        let write = PbftMessage::Write {
            seq,
            digest,
            voter: self.id,
        };
        let replicas: Vec<NodeId> = (0..self.n).filter(|&r| r != self.id).collect();
        ctx.multicast(&replicas, write);
        self.handle_write(ctx, self.id, seq, digest);
    }

    /// Record a late arrival for a round that already committed but whose
    /// observation has not been evaluated yet.
    fn record_late_arrival(&mut self, seq: u64, from: usize, phase: u32, at: SimTime) {
        if let Some(record) = self.pending_records.iter_mut().find(|r| r.seq == seq) {
            record.arrivals.push((from, phase, at));
        }
    }

    fn handle_write(
        &mut self,
        ctx: &mut Context<PbftMessage>,
        voter: usize,
        seq: u64,
        digest: Digest,
    ) {
        if seq <= self.last_committed_seq {
            self.record_late_arrival(seq, voter, Phase::Write.tag(), ctx.now);
            return;
        }
        let config = self.config.clone();
        let entry = match self.instances.get_mut(&seq) {
            Some(e) if e.digest == digest => e,
            // Write may arrive before the proposal; buffer a placeholder.
            Some(_) => return,
            None => {
                self.instances.insert(
                    seq,
                    Instance {
                        block: Block::genesis(),
                        digest,
                        // Best guess until the proposal arrives; overwritten
                        // by handle_propose.
                        epoch: self.config.epoch,
                        leader: self.config.leader,
                        proposal_ts: ctx.now,
                        measurements: Vec::new(),
                        write_voters: BTreeSet::new(),
                        accept_voters: BTreeSet::new(),
                        sent_accept: false,
                        committed: false,
                        arrivals: Vec::new(),
                    },
                );
                self.instances.get_mut(&seq).expect("just inserted")
            }
        };
        if voter != self.id {
            entry.arrivals.push((voter, Phase::Write.tag(), ctx.now));
        }
        entry.write_voters.insert(voter);
        let voters: Vec<usize> = entry.write_voters.iter().copied().collect();
        if !entry.sent_accept && config.is_quorum(&voters, self.f) {
            entry.sent_accept = true;
            let accept = PbftMessage::Accept {
                seq,
                digest,
                voter: self.id,
            };
            let replicas: Vec<NodeId> = (0..self.n).filter(|&r| r != self.id).collect();
            ctx.multicast(&replicas, accept);
            self.handle_accept(ctx, self.id, seq, digest);
        }
    }

    fn handle_accept(
        &mut self,
        ctx: &mut Context<PbftMessage>,
        voter: usize,
        seq: u64,
        digest: Digest,
    ) {
        if seq <= self.last_committed_seq {
            self.record_late_arrival(seq, voter, Phase::Accept.tag(), ctx.now);
            return;
        }
        let config = self.config.clone();
        let entry = match self.instances.get_mut(&seq) {
            Some(e) if e.digest == digest => e,
            _ => return,
        };
        if voter != self.id {
            entry.arrivals.push((voter, Phase::Accept.tag(), ctx.now));
        }
        entry.accept_voters.insert(voter);
        let voters: Vec<usize> = entry.accept_voters.iter().copied().collect();
        if entry.committed || !config.is_quorum(&voters, self.f) {
            return;
        }
        entry.committed = true;
        self.commit(ctx, seq);
    }

    fn commit(&mut self, ctx: &mut Context<PbftMessage>, seq: u64) {
        let instance = self.instances.remove(&seq).expect("instance exists");
        self.last_committed_seq = seq;
        // Agreement checkpoint for the online auditor: any two replicas
        // committing the same seq must publish the same digest. Set under
        // one registry lock so seq and digest can never be read torn.
        let fp = telemetry::fingerprint48(&instance.digest.0);
        self.commit_checkpoints.push((seq, fp));
        let id = self.id;
        self.telemetry.with_registry(|reg| {
            reg.gauge_set("pbft.replica.commit_seq", Some(id), seq as f64);
            reg.gauge_set("pbft.replica.commit_digest", Some(id), fp as f64);
        });
        // Keep the proposal counter in sync even at replicas that never led,
        // so a replica that later gains the leader role proposes the right
        // sequence number.
        self.next_seq = self.next_seq.max(seq + 1);
        if !instance.block.is_empty() {
            self.stats
                .record_commit(instance.proposal_ts, ctx.now, instance.block.len());
            self.telemetry.span(
                Stage::Commit,
                self.id,
                seq,
                instance.proposal_ts.as_micros(),
                ctx.now.since(instance.proposal_ts).as_micros(),
                vec![("commands", instance.block.len() as f64)],
            );
            self.telemetry
                .counter_add("pbft.replica.commits", Some(self.id), 1);
            self.telemetry.observe(
                "pbft.replica.commit_us",
                Some(self.id),
                ctx.now.since(instance.proposal_ts).as_micros(),
            );
        }

        if let Some(queue) = &self.traffic {
            // Open-loop mode: no client nodes exist to reply to. The
            // proposer (the only replica that knows the batch id) reports
            // the commit so the queue can account end-to-end latency.
            if let Some(id) = self.traffic_batches.remove(&seq) {
                queue.commit_batch_in(id, ctx.now, seq);
            }
        } else {
            // Reply to clients and remember executed requests.
            for cmd in &instance.block.commands {
                self.committed_requests.insert((cmd.client, cmd.seq));
                ctx.send(
                    self.client_node(cmd.client),
                    PbftMessage::Reply {
                        client_seq: cmd.seq,
                        replica: self.id,
                    },
                );
            }
            self.pending_requests
                .retain(|c| !self.committed_requests.contains(&(c.client, c.seq)));
        }

        // Feed committed measurements to the policy (log order).
        let mut follow_ups = Vec::new();
        for blob in &instance.measurements {
            follow_ups.extend(self.policy.on_committed_measurement(self.id, blob));
        }

        // Sensor-side round observation: buffer it and evaluate it two
        // commits later (three, to cover the slowest per-message deadlines), so
        // messages from replicas outside the fastest
        // quorum can still be recorded as on-time arrivals.
        let record = PbftRoundRecord {
            seq,
            epoch: instance.epoch,
            leader: instance.leader,
            proposal_ts: instance.proposal_ts,
            prev_proposal_ts: self.prev_proposal_ts,
            prev_epoch: self.prev_epoch,
            commit_time: ctx.now,
            arrivals: instance.arrivals.clone(),
        };
        self.pending_records.push(record);
        self.prev_proposal_ts = Some(instance.proposal_ts);
        self.prev_epoch = Some(instance.epoch);
        // A record is ready once later commits exist (so late arrivals were
        // recorded) AND every per-message deadline the policy will check has
        // elapsed — with pipelined rounds, commit count alone can outpace the
        // stragglers' on-time messages.
        let hold = self.policy.observation_hold();
        while self
            .pending_records
            .first()
            .map(|r| r.seq + 3 <= seq && ctx.now >= r.proposal_ts + hold)
            .unwrap_or(false)
        {
            let ready = self.pending_records.remove(0);
            follow_ups.extend(self.policy.on_round(&ready));
        }
        self.forward_sensor_data(ctx, follow_ups);

        // Deterministic reconfiguration decision.
        if let Some(new_config) = self.policy.decide(self.config.epoch, ctx.now) {
            if new_config.epoch == self.config.epoch + 1 {
                self.telemetry.instant(
                    Stage::Reconfigure,
                    self.id,
                    new_config.epoch,
                    ctx.now.as_micros(),
                    vec![("leader", new_config.leader as f64)],
                );
                self.config = new_config.clone();
                self.reconfigs.push(ReconfigEvent {
                    at: ctx.now,
                    config: new_config,
                });
            }
        }

        if self.is_leader() {
            self.try_propose(ctx);
        }
    }

    fn forward_sensor_data(&mut self, ctx: &mut Context<PbftMessage>, blobs: Vec<Vec<u8>>) {
        if blobs.is_empty() {
            return;
        }
        if self.is_leader() {
            self.pending_measurements.extend(blobs);
        } else {
            ctx.send(self.config.leader, PbftMessage::SensorData { blobs });
        }
    }

    fn start_probe_round(&mut self, ctx: &mut Context<PbftMessage>) {
        self.probe_nonce += 1;
        self.probe_rtts = vec![f64::INFINITY; self.n];
        self.probe_rtts[self.id] = 0.0;
        let msg = PbftMessage::Probe {
            nonce: self.probe_nonce,
            sent_at_us: ctx.now.as_micros(),
        };
        let replicas: Vec<NodeId> = (0..self.n).filter(|&r| r != self.id).collect();
        ctx.multicast(&replicas, msg);
        ctx.set_timer(self.probe_timeout, TIMER_PROBE_COLLECT);
        ctx.set_timer(self.probe_interval, TIMER_PROBE_START);
    }

    fn finish_probe_round(&mut self, ctx: &mut Context<PbftMessage>) {
        let rtts = self.probe_rtts.clone();
        let blobs = self.policy.on_latency_vector(self.id, &rtts);
        self.forward_sensor_data(ctx, blobs);
    }
}

/// Client state: a closed-loop request issuer measuring end-to-end latency.
pub struct ClientState {
    /// Client id (its node id is `n + id`).
    pub id: u64,
    n: usize,
    f: usize,
    next_seq: u64,
    sent_at: SimTime,
    repliers: BTreeSet<usize>,
    /// End-to-end latency timeline: (reply time in s, latency in ms).
    pub latency: TimeSeries,
    /// Total completed requests.
    pub completed: u64,
}

impl ClientState {
    /// Create a client.
    pub fn new(id: u64, n: usize, f: usize) -> Self {
        ClientState {
            id,
            n,
            f,
            next_seq: 0,
            sent_at: SimTime::ZERO,
            repliers: BTreeSet::new(),
            latency: TimeSeries::new(),
            completed: 0,
        }
    }

    fn send_next(&mut self, ctx: &mut Context<PbftMessage>) {
        let cmd = Command::empty(self.id, self.next_seq);
        self.sent_at = ctx.now;
        self.repliers.clear();
        let replicas: Vec<NodeId> = (0..self.n).collect();
        ctx.multicast(&replicas, PbftMessage::Request { cmd });
    }

    fn on_reply(&mut self, ctx: &mut Context<PbftMessage>, client_seq: u64, replica: usize) {
        if client_seq != self.next_seq {
            return;
        }
        self.repliers.insert(replica);
        if self.repliers.len() > self.f {
            let latency = ctx.now.since(self.sent_at);
            self.latency.push(ctx.now, latency.as_millis_f64());
            self.completed += 1;
            self.next_seq += 1;
            self.send_next(ctx);
        }
    }
}

/// A node in the PBFT simulation: replica or client.
// Replica state dwarfs client state, but simulations hold only n + c
// nodes, so boxing would cost indirection for no measurable memory win.
#[allow(clippy::large_enum_variant)]
pub enum PbftNode {
    /// A consensus replica.
    Replica(ReplicaState),
    /// A request-issuing client.
    Client(ClientState),
}

impl Node for PbftNode {
    type Msg = PbftMessage;

    fn on_start(&mut self, ctx: &mut Context<PbftMessage>) {
        match self {
            PbftNode::Replica(r) => {
                // Stagger probe rounds slightly so they do not all collide.
                let offset = Duration::from_millis(50 * (r.id as u64 + 1));
                ctx.set_timer(offset, TIMER_PROBE_START);
                if r.is_leader() {
                    r.try_propose(ctx);
                }
            }
            PbftNode::Client(c) => c.send_next(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<PbftMessage>, from: NodeId, msg: PbftMessage) {
        match self {
            PbftNode::Replica(r) => match msg {
                PbftMessage::Request { cmd } => {
                    if !r.committed_requests.contains(&(cmd.client, cmd.seq))
                        && !r
                            .pending_requests
                            .iter()
                            .any(|c| c.client == cmd.client && c.seq == cmd.seq)
                    {
                        r.pending_requests.push(cmd);
                        if r.is_leader() {
                            r.try_propose(ctx);
                        }
                    }
                }
                PbftMessage::Propose {
                    seq,
                    epoch,
                    block,
                    timestamp_us,
                    measurements,
                } => r.handle_propose(ctx, from, seq, epoch, block, timestamp_us, measurements),
                PbftMessage::Write { seq, digest, voter } => {
                    r.handle_write(ctx, voter, seq, digest)
                }
                PbftMessage::Accept { seq, digest, voter } => {
                    r.handle_accept(ctx, voter, seq, digest)
                }
                PbftMessage::Probe { nonce, sent_at_us } => {
                    ctx.send(
                        from,
                        PbftMessage::ProbeReply {
                            nonce,
                            sent_at_us,
                            replica: r.id,
                        },
                    );
                }
                PbftMessage::ProbeReply {
                    nonce,
                    sent_at_us,
                    replica,
                } => {
                    if nonce == r.probe_nonce && replica < r.n {
                        let rtt = ctx.now.since(SimTime::from_micros(sent_at_us));
                        r.probe_rtts[replica] = rtt.as_millis_f64();
                    }
                }
                PbftMessage::SensorData { blobs } => {
                    if r.is_leader() {
                        r.pending_measurements.extend(blobs);
                        r.try_propose(ctx);
                    }
                }
                PbftMessage::Reply { .. } => {}
            },
            PbftNode::Client(c) => {
                if let PbftMessage::Reply {
                    client_seq,
                    replica,
                } = msg
                {
                    c.on_reply(ctx, client_seq, replica);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<PbftMessage>, _timer: TimerId, tag: u64) {
        match self {
            PbftNode::Replica(r) => match tag {
                TIMER_PROBE_START => r.start_probe_round(ctx),
                TIMER_PROBE_COLLECT => r.finish_probe_round(ctx),
                TIMER_PROPOSE_RETRY => r.try_propose(ctx),
                TIMER_DELAYED_PROPOSE => {
                    if let Some((seq, block, measurements)) = r.delayed_block.take() {
                        r.send_propose(ctx, seq, block, measurements);
                    }
                }
                _ => {}
            },
            PbftNode::Client(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;

    #[test]
    fn replica_initial_state() {
        let r = ReplicaState::new(2, 7, 2, Box::new(StaticPolicy), ReplicaBehavior::Correct);
        assert_eq!(r.config().leader, 0);
        assert!(!r.is_leader());
        assert_eq!(r.last_committed_seq, 0);
    }

    #[test]
    fn client_counts_distinct_repliers() {
        let mut c = ClientState::new(0, 4, 1);
        // Simulate context plumbing minimally by checking internal bookkeeping.
        c.next_seq = 0;
        c.repliers.insert(1);
        c.repliers.insert(1);
        assert_eq!(c.repliers.len(), 1);
    }
}
