//! # pbft — BFT-SMaRt-style replication with Wheat weights and Aware optimisation
//!
//! This crate implements the PBFT-family substrate the paper applies OptiLog
//! to in §5: a three-phase (Propose / Write / Accept) protocol in the style
//! of BFT-SMaRt, extended with
//!
//! * **Wheat weighted voting** — some replicas carry a higher voting weight,
//!   so quorums form as soon as the *weighted* threshold is reached, letting
//!   well-placed replicas dominate latency;
//! * **probe-based latency measurement** — replicas periodically measure
//!   round-trip times and disseminate latency vectors through the ordered
//!   log (the sensor app of Fig 1);
//! * **Aware self-optimisation** — a deterministic `score(·)` that predicts
//!   a configuration's round latency from the latency matrix and picks the
//!   leader and weight assignment minimising it;
//! * a pluggable [`ReconfigPolicy`] so OptiAware (in the `optiaware` crate)
//!   can add suspicion monitoring and attack mitigation without forking the
//!   protocol.
//!
//! The protocol is written against the runtime-agnostic `runtime` node API,
//! so the same replicas run inside the discrete-event simulator or over real
//! sockets; clients are nodes issuing requests in a closed loop and measuring
//! end-to-end latency, which is what Fig 7 plots.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod messages;
pub mod policy;
pub mod replica;
pub mod score;
pub mod weights;

pub use messages::{PbftMessage, Phase};
pub use policy::{AwarePolicy, PbftRoundRecord, ReconfigPolicy, StaticPolicy};
pub use replica::{ClientState, DelayStage, PbftNode, ReplicaBehavior, ReplicaState};
pub use score::{predict_round_latency, predict_message_delays, weighted_quorum_time};
pub use weights::WeightConfig;
