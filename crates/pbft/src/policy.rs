//! Reconfiguration policies.
//!
//! The replica logic is identical for BFT-SMaRt, Aware, and OptiAware; what
//! differs is how committed measurements are interpreted and when the
//! configuration (leader + weights) changes. [`ReconfigPolicy`] captures that
//! difference:
//!
//! * [`StaticPolicy`] — BFT-SMaRt: never reconfigures, logs nothing.
//! * [`AwarePolicy`] — Aware: logs latency vectors, maintains the latency
//!   matrix, and deterministically re-optimises the configuration once the
//!   matrix is complete.
//! * `OptiAwarePolicy` (in the `optiaware` crate) — adds suspicion and
//!   misbehavior monitoring on top and excludes suspects from roles.
//!
//! Policies only ever see *committed* data (plus local sensor outputs they
//! may turn into measurement blobs), so identical logs yield identical
//! decisions at every replica.

use crate::score::{optimize_configuration, predict_round_latency};
use crate::weights::WeightConfig;
use runtime::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Everything a replica observed about one committed round; handed to the
/// policy so sensor-side logic (e.g. OptiAware's SuspicionSensor) can run.
#[derive(Debug, Clone)]
pub struct PbftRoundRecord {
    /// Consensus sequence number of the committed block.
    pub seq: u64,
    /// Configuration epoch the round was *proposed* under (carried by the
    /// proposal message). Policies judge the round against this epoch's
    /// timeouts, so rounds straddling a reconfiguration are not measured
    /// against a configuration that was not active when they ran.
    pub epoch: u64,
    /// The leader that proposed it.
    pub leader: usize,
    /// The leader's proposal timestamp.
    pub proposal_ts: SimTime,
    /// The previous committed block's proposal timestamp, if any.
    pub prev_proposal_ts: Option<SimTime>,
    /// The epoch the previous committed block was proposed under. The
    /// inter-proposal-gap condition is only meaningful when both rounds ran
    /// under the same configuration (`prev_epoch == Some(epoch)`).
    pub prev_epoch: Option<u64>,
    /// When this replica committed the block.
    pub commit_time: SimTime,
    /// Observed arrivals `(from, phase tag, arrival time)`.
    pub arrivals: Vec<(usize, u32, SimTime)>,
}

/// A measurement-driven reconfiguration policy.
pub trait ReconfigPolicy: Send {
    /// A completed local probe round produced a latency vector (RTT in ms,
    /// ∞ for unreachable replicas). Returns measurement blobs to replicate.
    fn on_latency_vector(&mut self, reporter: usize, rtt_ms: &[f64]) -> Vec<Vec<u8>>;

    /// This replica committed a round and observed `record`. Returns
    /// measurement blobs to replicate (e.g. suspicions).
    fn on_round(&mut self, record: &PbftRoundRecord) -> Vec<Vec<u8>>;

    /// How long after a round's proposal timestamp the replica must hold the
    /// round record before handing it to [`Self::on_round`]. Policies that
    /// judge per-message deadlines need the hold to cover their slowest
    /// deadline: with pipelined rounds, commits can outpace the stragglers'
    /// messages, and evaluating too early reports on-time replicas as slow.
    fn observation_hold(&self) -> Duration {
        Duration::ZERO
    }

    /// A measurement blob committed in the log (same order at every replica).
    /// Returns follow-up blobs to replicate (e.g. reciprocation suspicions).
    fn on_committed_measurement(&mut self, replica_id: usize, blob: &[u8]) -> Vec<Vec<u8>>;

    /// Deterministic configuration decision. Called after each commit with
    /// the active epoch; returns a configuration with `epoch = current + 1`
    /// to trigger a reconfiguration, or `None` to keep the current one.
    fn decide(&mut self, current_epoch: u64, now: SimTime) -> Option<WeightConfig>;

    /// Short label for reports.
    fn name(&self) -> &'static str;
}

/// BFT-SMaRt: static configuration, no measurements.
#[derive(Debug, Default, Clone)]
pub struct StaticPolicy;

impl ReconfigPolicy for StaticPolicy {
    fn on_latency_vector(&mut self, _reporter: usize, _rtt_ms: &[f64]) -> Vec<Vec<u8>> {
        Vec::new()
    }

    fn on_round(&mut self, _record: &PbftRoundRecord) -> Vec<Vec<u8>> {
        Vec::new()
    }

    fn on_committed_measurement(&mut self, _replica_id: usize, _blob: &[u8]) -> Vec<Vec<u8>> {
        Vec::new()
    }

    fn decide(&mut self, _current_epoch: u64, _now: SimTime) -> Option<WeightConfig> {
        None
    }

    fn name(&self) -> &'static str {
        "bft-smart"
    }
}

/// The latency-vector blob Aware replicates through the log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyBlob {
    /// Reporting replica.
    pub reporter: usize,
    /// Round-trip times in milliseconds (∞ encoded as a large sentinel).
    pub rtt_ms: Vec<f64>,
}

/// Encode a latency blob (sentinel-encodes ∞ so JSON stays valid).
pub fn encode_latency_blob(reporter: usize, rtt_ms: &[f64]) -> Vec<u8> {
    let safe: Vec<f64> = rtt_ms
        .iter()
        .map(|&x| if x.is_finite() { x } else { 1.0e9 })
        .collect();
    serde_json::to_vec(&LatencyBlob {
        reporter,
        rtt_ms: safe,
    })
    .expect("latency blob serializes")
}

/// Decode a latency blob if the bytes are one.
pub fn decode_latency_blob(blob: &[u8]) -> Option<LatencyBlob> {
    serde_json::from_slice(blob).ok()
}

/// Aware: optimise the configuration from the shared latency matrix.
#[derive(Debug, Clone)]
pub struct AwarePolicy {
    n: usize,
    f: usize,
    /// Symmetric RTT matrix built from committed latency vectors
    /// (max of the two directions, §4.2.1).
    matrix: Vec<f64>,
    recorded: Vec<f64>,
    /// Do not reconfigure before this time (models Aware's initial
    /// measurement period; Fig 7 optimises at t ≈ 40 s).
    optimize_after: SimTime,
    /// Require at least this relative improvement to reconfigure again.
    improvement_factor: f64,
    current_score: f64,
}

impl AwarePolicy {
    /// Create an Aware policy for an `n`-replica system.
    pub fn new(n: usize, f: usize, optimize_after: SimTime) -> Self {
        let mut matrix = vec![f64::INFINITY; n * n];
        let mut recorded = vec![f64::INFINITY; n * n];
        for i in 0..n {
            matrix[i * n + i] = 0.0;
            recorded[i * n + i] = 0.0;
        }
        AwarePolicy {
            n,
            f,
            matrix,
            recorded,
            optimize_after,
            improvement_factor: 0.9,
            current_score: f64::INFINITY,
        }
    }

    /// True once every pair of replicas has a known latency.
    pub fn matrix_complete(&self) -> bool {
        self.matrix.iter().all(|x| x.is_finite())
    }

    /// The current symmetric RTT matrix (ms).
    pub fn matrix(&self) -> &[f64] {
        &self.matrix
    }

    fn apply_vector(&mut self, reporter: usize, rtt_ms: &[f64]) {
        if reporter >= self.n || rtt_ms.len() != self.n {
            return;
        }
        for (b, &reported) in rtt_ms.iter().enumerate() {
            if b == reporter {
                continue;
            }
            self.recorded[reporter * self.n + b] = reported;
            let ab = reported;
            let ba = self.recorded[b * self.n + reporter];
            let sym = match (ab.is_finite(), ba.is_finite()) {
                (true, true) => ab.max(ba),
                (true, false) => ab,
                (false, true) => ba,
                (false, false) => f64::INFINITY,
            };
            self.matrix[reporter * self.n + b] = sym;
            self.matrix[b * self.n + reporter] = sym;
        }
    }
}

impl ReconfigPolicy for AwarePolicy {
    fn on_latency_vector(&mut self, reporter: usize, rtt_ms: &[f64]) -> Vec<Vec<u8>> {
        vec![encode_latency_blob(reporter, rtt_ms)]
    }

    fn on_round(&mut self, _record: &PbftRoundRecord) -> Vec<Vec<u8>> {
        Vec::new()
    }

    fn on_committed_measurement(&mut self, _replica_id: usize, blob: &[u8]) -> Vec<Vec<u8>> {
        if let Some(lb) = decode_latency_blob(blob) {
            self.apply_vector(lb.reporter, &lb.rtt_ms);
        }
        Vec::new()
    }

    fn decide(&mut self, current_epoch: u64, now: SimTime) -> Option<WeightConfig> {
        if now < self.optimize_after || !self.matrix_complete() {
            return None;
        }
        let candidates: Vec<usize> = (0..self.n).collect();
        let (config, score) = optimize_configuration(
            &self.matrix,
            self.n,
            self.f,
            &candidates,
            &[],
            current_epoch + 1,
        );
        if score < self.current_score * self.improvement_factor {
            self.current_score = score;
            Some(config)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "aware"
    }
}

/// Score a configuration the same way [`AwarePolicy`] would — exposed so
/// other policies (OptiAware) and harnesses can reuse it.
pub fn score_config(matrix: &[f64], n: usize, f: usize, config: &WeightConfig) -> f64 {
    predict_round_latency(matrix, n, f, config, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, fast: &[usize], fast_ms: f64, slow_ms: f64) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let both_fast = fast.contains(&a) && fast.contains(&b);
                m[a * n + b] = if both_fast { fast_ms } else { slow_ms };
            }
        }
        m
    }

    #[test]
    fn static_policy_never_reconfigures() {
        let mut p = StaticPolicy;
        assert!(p.on_latency_vector(0, &[0.0, 1.0]).is_empty());
        assert!(p.decide(0, SimTime::from_secs(1000)).is_none());
        assert_eq!(p.name(), "bft-smart");
    }

    #[test]
    fn latency_blob_roundtrip_with_infinity() {
        let blob = encode_latency_blob(2, &[0.0, 10.0, f64::INFINITY]);
        let decoded = decode_latency_blob(&blob).expect("decodes");
        assert_eq!(decoded.reporter, 2);
        assert_eq!(decoded.rtt_ms[1], 10.0);
        assert!(decoded.rtt_ms[2] >= 1.0e9);
        assert!(decode_latency_blob(b"not json").is_none());
    }

    #[test]
    fn aware_waits_for_complete_matrix_and_time() {
        let n = 4;
        let mut p = AwarePolicy::new(n, 1, SimTime::from_secs(40));
        let full = clustered(n, &[0, 1, 2], 10.0, 200.0);
        // Feed only two rows: the (2,3) pair is still unknown.
        for r in 0..2 {
            let row: Vec<f64> = (0..n).map(|b| full[r * n + b]).collect();
            p.on_committed_measurement(0, &encode_latency_blob(r, &row));
        }
        assert!(!p.matrix_complete());
        assert!(p.decide(0, SimTime::from_secs(41)).is_none());
        // Feed the remaining rows: complete, but before optimize_after no decision.
        for r in 2..n {
            let row: Vec<f64> = (0..n).map(|b| full[r * n + b]).collect();
            p.on_committed_measurement(0, &encode_latency_blob(r, &row));
        }
        assert!(p.matrix_complete());
        assert!(p.decide(0, SimTime::from_secs(10)).is_none());
        // After the measurement period the policy optimises.
        let cfg = p.decide(0, SimTime::from_secs(41)).expect("optimises");
        assert_eq!(cfg.epoch, 1);
        assert!([0, 1, 2].contains(&cfg.leader), "leader in the fast cluster");
    }

    #[test]
    fn aware_does_not_thrash_once_optimal() {
        let n = 4;
        let mut p = AwarePolicy::new(n, 1, SimTime::ZERO);
        let full = clustered(n, &[0, 1], 5.0, 100.0);
        for r in 0..n {
            let row: Vec<f64> = (0..n).map(|b| full[r * n + b]).collect();
            p.on_committed_measurement(0, &encode_latency_blob(r, &row));
        }
        let first = p.decide(0, SimTime::from_secs(1));
        assert!(first.is_some());
        // Same matrix again: no further reconfiguration (improvement below threshold).
        let second = p.decide(1, SimTime::from_secs(2));
        assert!(second.is_none());
    }

    #[test]
    fn identical_committed_measurements_give_identical_decisions() {
        let n = 4;
        let full = clustered(n, &[1, 2, 3], 8.0, 150.0);
        let feed = |p: &mut AwarePolicy| {
            for r in 0..n {
                let row: Vec<f64> = (0..n).map(|b| full[r * n + b]).collect();
                p.on_committed_measurement(0, &encode_latency_blob(r, &row));
            }
            p.decide(0, SimTime::from_secs(100))
        };
        let mut a = AwarePolicy::new(n, 1, SimTime::ZERO);
        let mut b = AwarePolicy::new(n, 1, SimTime::ZERO);
        assert_eq!(feed(&mut a), feed(&mut b));
    }
}
