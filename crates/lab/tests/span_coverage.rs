//! Span-coverage audit: every substrate family must emit every trace stage
//! its commit path is expected to cross, under an attacked run where the
//! full instrumentation surface (holds, reconfigurations) is reachable.
//!
//! The audit iterates `telemetry::Stage::ALL`, so adding a new `Stage`
//! variant fails these tests until each family's expectation says whether
//! the new span applies to it — silent instrumentation gaps (a substrate
//! whose refactor dropped a `span()` call) are what this file exists to
//! catch, and a stage asserted *absent* going missing means the family
//! either grew coverage (good: move it to expected) or mislabels spans.

use lab::{
    AdversaryScript, Attack, Deployment, ProtocolScenario, ScenarioKind, ScenarioSpec, Substrate,
    Target, TracedCell, Topology,
};
use netsim::{Duration, SimTime};
use telemetry::Stage;

/// Run one attacked cell of `substrate` with the default traced load and
/// return its trace (the adversary holds proposals mid-run so `hold` and
/// any reconfiguration machinery appear).
fn traced(substrate: Substrate, target: Target, run_secs: u64) -> TracedCell {
    let mut scenario = ProtocolScenario::new(
        vec![substrate],
        vec![Topology::with_n(Deployment::Europe21, 7)],
    )
    .with_adversaries(vec![AdversaryScript::named("audit-delay").during(
        // Starts before the optimize gate below opens, so holds are on the
        // record first and the policies then reconfigure in response.
        SimTime::from_secs(run_secs / 6),
        SimTime::from_secs(run_secs * 2 / 3),
        // Overt: long enough to trip every substrate's staleness detector
        // (the Fig 7 escalation value), so reconfiguration spans appear
        // wherever the substrate has them.
        Attack::DelayProposals {
            target,
            delay: Duration::from_millis(2_500),
        },
    )])
    .run_for(Duration::from_secs(run_secs));
    // Let measurement-driven policies reconfigure as soon as the attack
    // starts (the default 40 s gate outlasts these short audit runs).
    scenario.optimize_after = SimTime::from_secs(run_secs / 3);
    ScenarioSpec::new("unit_span_audit", vec![0], ScenarioKind::Protocol(scenario))
        .run_cell_traced()
        .expect("protocol scenarios trace")
}

/// Assert the family's trace covers exactly `Stage::ALL` minus `absent`.
fn audit(family: &str, cell: &TracedCell, absent: &[Stage]) {
    for stage in Stage::ALL {
        let count = cell.stage_counts.get(stage.name()).copied().unwrap_or(0);
        if absent.contains(&stage) {
            assert_eq!(
                count, 0,
                "{family}: stage {:?} was expected absent but appeared {count} times — \
                 update this family's expectation: {:?}",
                stage, cell.stage_counts
            );
        } else {
            assert!(
                count > 0,
                "{family}: stage {:?} missing from the trace (instrumentation gap?): {:?}",
                stage, cell.stage_counts
            );
        }
    }
}

#[test]
fn tree_family_covers_every_stage() {
    // A delaying root exercises hold + the staleness-driven reconfiguration
    // on top of the full dissemination pipeline: nothing may be absent.
    let cell = traced(Substrate::Kauri, Target::Root, 30);
    audit("kauri", &cell, &[]);
}

#[test]
fn hotstuff_family_covers_every_star_stage() {
    // Star topology with a fixed leader: votes go straight to the leader
    // (no aggregation tree) and no role reassignment exists.
    let cell = traced(Substrate::HotStuffFixed, Target::Root, 15);
    audit("hotstuff", &cell, &[Stage::Aggregate, Stage::Reconfigure]);
}

#[test]
fn pbft_family_covers_every_stage_incl_reconfigure() {
    // OptiAware runs the §5 suspicion pipeline: the delaying leader is
    // reconfigured away, so `reconfigure` must appear; PBFT quorums have no
    // vote-aggregation tree.
    let cell = traced(Substrate::OptiAware, Target::Root, 30);
    audit("pbft", &cell, &[Stage::Aggregate]);
}
