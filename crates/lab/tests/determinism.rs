//! The sweep runner's determinism contract: the same `ScenarioSpec` and
//! seeds must produce a byte-identical `BENCH_*.json` regardless of how many
//! worker threads execute the sweep. This is the regression net for
//! cross-thread RNG leakage (a cell reading another cell's RNG stream) and
//! for ordering bugs in result collection.

use lab::{
    run_sweep, AdversaryScript, Attack, Deployment, LatencyWindow, ProtocolScenario, ScenarioKind,
    ScenarioSpec, Substrate, SweepOptions, Target, Topology,
};
use netsim::{Duration, SimTime};

/// A phased-adversary scenario over a seed-dependent topology: every part of
/// the pipeline that could leak cross-thread state is on the path — per-seed
/// city sampling, per-cell policy seeding, phased faults, window metrics.
fn spec() -> ScenarioSpec {
    let mut scenario = ProtocolScenario::new(
        vec![Substrate::BftSmart, Substrate::OptiAware],
        vec![Topology::with_n(Deployment::WorldDistinct, 5)],
    )
    .with_adversaries(vec![AdversaryScript::named("phased")
        .during(
            SimTime::from_secs(6),
            SimTime::from_secs(10),
            Attack::DelayProposals {
                target: Target::OptimizedLeader,
                delay: Duration::from_millis(300),
            },
        )
        .during(
            SimTime::from_secs(10),
            SimTime::from_secs(12),
            Attack::Crash {
                target: Target::Replica(1),
            },
        )])
    .run_for(Duration::from_secs(15));
    scenario.optimize_after = SimTime::from_secs(3);
    scenario.windows = vec![
        LatencyWindow::new("clean", 1.0, 6.0),
        LatencyWindow::new("attacked", 6.0, 10.0),
    ];
    ScenarioSpec::new("determinism_probe", vec![3, 11, 42], ScenarioKind::Protocol(scenario))
}

/// The tree-substrate analogue: the protocol-level root-delay attack, the
/// staleness-driven reconfiguration it triggers, and the per-commit latency
/// timelines are all on the deterministic path.
fn tree_spec() -> ScenarioSpec {
    let mut scenario = ProtocolScenario::new(
        vec![Substrate::Kauri, Substrate::OptiTree, Substrate::HotStuffRr],
        vec![Topology::with_n(Deployment::Europe21, 13)],
    )
    .with_adversaries(vec![AdversaryScript::named("root-delay").during(
        SimTime::from_secs(6),
        SimTime::from_secs(12),
        Attack::DelayProposals {
            target: Target::Root,
            delay: Duration::from_millis(2_500),
        },
    )])
    .run_for(Duration::from_secs(15));
    scenario.windows = vec![
        LatencyWindow::new("clean", 1.0, 6.0),
        LatencyWindow::new("attacked", 6.0, 12.0),
    ];
    ScenarioSpec::new("tree_determinism_probe", vec![0, 7], ScenarioKind::Protocol(scenario))
}

#[test]
fn json_is_byte_identical_across_worker_counts() {
    let spec = spec();
    let serial = run_sweep(&spec, &SweepOptions::serial()).to_json();
    for threads in [2, 4, 8] {
        let parallel = run_sweep(&spec, &SweepOptions::serial().with_threads(threads)).to_json();
        assert_eq!(
            serial, parallel,
            "JSON diverged between 1 and {threads} worker threads"
        );
    }
    // And the whole thing is reproducible run-to-run, not just race-free.
    let again = run_sweep(&spec, &SweepOptions::serial()).to_json();
    assert_eq!(serial, again);
}

#[test]
fn tree_delay_scenario_is_byte_identical_across_worker_counts() {
    let spec = tree_spec();
    let serial = run_sweep(&spec, &SweepOptions::serial()).to_json();
    for threads in [2, 4, 8] {
        let parallel = run_sweep(&spec, &SweepOptions::serial().with_threads(threads)).to_json();
        assert_eq!(
            serial, parallel,
            "tree-delay JSON diverged between 1 and {threads} worker threads"
        );
    }
    let again = run_sweep(&spec, &SweepOptions::serial()).to_json();
    assert_eq!(serial, again);
    // The protocol-level attack actually ran: windows are populated on every
    // substrate (the HotStuff/tree timelines used to be PBFT-only).
    let report = run_sweep(&spec, &SweepOptions::serial());
    for p in &report.points {
        assert!(p.metric("lat_clean_ms") > 0.0, "{}: clean window empty", p.label);
        assert!(p.metric("lat_attacked_ms") > 0.0, "{}: attacked window empty", p.label);
    }
}

#[test]
fn seeds_actually_vary_the_cells() {
    let report = run_sweep(&spec(), &SweepOptions::serial());
    let p = &report.points[0];
    let latencies: Vec<f64> = p
        .cells
        .iter()
        .map(|c| c.metrics.values["latency_ms"])
        .collect();
    assert_eq!(latencies.len(), 3);
    assert!(
        latencies.windows(2).any(|w| w[0] != w[1]),
        "World(distinct) seeds should produce different geographies: {latencies:?}"
    );
}

#[test]
fn phased_attack_shows_up_in_window_metrics() {
    let report = run_sweep(&spec(), &SweepOptions::serial());
    // The static substrate cannot react: while the delay attack is on, its
    // optimised-path clients pay the 300 ms proposal delay.
    let bft = report
        .points
        .iter()
        .find(|p| p.params["substrate"] == "BFT-SMaRt")
        .expect("BFT-SMaRt point");
    let clean = bft.metric("lat_clean_ms");
    let attacked = bft.metric("lat_attacked_ms");
    assert!(clean > 0.0);
    assert!(
        attacked > clean,
        "delay stage should inflate latency: clean={clean:.1} attacked={attacked:.1}"
    );
}
