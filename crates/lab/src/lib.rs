//! # lab — declarative scenarios, phased adversaries, parallel sweeps
//!
//! The experiment subsystem of the OptiLog reproduction. The paper's
//! evaluation (§7) is a matrix of substrates × topologies × adversary
//! behaviours × seeds; this crate makes each cell of that matrix a value
//! instead of a hand-written binary:
//!
//! * [`ScenarioSpec`] — a named, seeded, declarative description of an
//!   experiment: either a [`ProtocolScenario`] (simulation runs over
//!   substrate / topology / adversary axes) or one of the analytic scenario
//!   kinds reproducing the non-simulation figures.
//! * [`AdversaryScript`] — a time-phased fault script (clean warmup →
//!   δ-inflation → crash → recovery …) with symbolic targets, compiled down
//!   to netsim's windowed [`netsim::FaultPlan`] plus protocol-level delay
//!   attacks.
//! * [`run_sweep`] — a multi-threaded sweep runner fanning the seed ×
//!   parameter grid across `std::thread` workers with deterministic per-cell
//!   seeding: the report is byte-identical for any `--threads` value.
//! * [`ScenarioReport`] — percentile aggregates per grid point, rendered as
//!   a fixed-width table and written to `BENCH_<scenario>.json`.
//!
//! ```no_run
//! use lab::*;
//! use netsim::{Duration, SimTime};
//!
//! let scenario = ProtocolScenario::new(
//!     vec![Substrate::BftSmart, Substrate::OptiAware],
//!     vec![Topology::of(Deployment::Europe21)],
//! )
//! .with_adversaries(vec![AdversaryScript::named("delay-attack").during(
//!     SimTime::from_secs(80),
//!     SimTime::from_secs(120),
//!     Attack::DelayProposals {
//!         target: Target::OptimizedLeader,
//!         delay: Duration::from_millis(600),
//!     },
//! )])
//! .run_for(Duration::from_secs(180));
//! let spec = ScenarioSpec::new("my_experiment", vec![0, 1, 2], ScenarioKind::Protocol(scenario));
//! let report = run_sweep(&spec, &SweepOptions::default());
//! report.write_bench_json(std::path::Path::new(".")).unwrap();
//! ```

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod adversary;
pub mod harness;
pub mod results;
pub mod runner;
pub mod scenario;
pub mod topology;

pub use adversary::{AdversaryScript, Attack, CompileContext, CompiledAdversary, DelayAttack, Stage, Target};
pub use harness::{
    run_hotstuff, run_kauri, HotStuffReport, KauriReport, PbftHarness, PbftHarnessConfig,
    PbftRunReport,
};
pub use results::{
    ci95, mean, timeline_mean, CellMetrics, CellReport, MetricSummary, PointReport, ScenarioReport,
};
pub use runner::{export_trace, run_and_report, run_sweep, LabArgs, SweepOptions};
pub use scenario::{
    append_breakdown_metrics, mix_seed, sample_seeds, CandidateTimingScenario, LatencyWindow,
    OverprovisionScenario, Point, ProposalSizeScenario, ProtocolScenario, ScenarioKind,
    ScenarioSpec, Substrate, SuspicionAttackScenario, TracedCell, TreeSearchScenario,
};
pub use topology::{Deployment, Topology};

// The offered-load surface scenario authors need alongside the axes.
pub use rsm::{ArrivalProcess, BatchingPolicy, TrafficSpec};
pub use traffic::TrafficReport;
