//! Time-phased adversary scripts.
//!
//! A scenario's adversary is a *script*: an ordered list of [`Stage`]s, each
//! active in a window of virtual time — e.g. clean warmup → δ-inflation delay
//! attack → crash → recovery. Scripts are declarative; [`AdversaryScript::compile`]
//! lowers them onto the concrete run: network-level stages become windowed
//! faults in netsim's [`FaultPlan`], and protocol-level stages (the
//! proposal-delay attack) become replica behaviours every substrate runner
//! installs. Targets may be symbolic (`OptimizedLeader`, tree intermediates,
//! the sequence of tree roots) and are resolved against the scenario's
//! topology at compile time, exactly the way the hand-written figure
//! harnesses used to probe them.

use crate::scenario::Substrate;
use netsim::{Duration, FaultPlan, FaultWindow, NodeFault, SimTime};
use rsm::SystemConfig;

/// Who a stage applies to. Symbolic targets are resolved at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A concrete replica id.
    Replica(usize),
    /// The replica the latency optimisation elects as leader over the
    /// scenario topology (the Fig 7 attacker: hit the optimised path).
    OptimizedLeader,
    /// The run's initial proposer: the tree policy's first root on the tree
    /// substrates, the leader of the first view elsewhere (replica 0 for
    /// the fixed HotStuff leader and the initial PBFT leader, replica
    /// `1 % n` for round-robin HotStuff, whose first proposed view is 1).
    /// The Fig 7 attacker for substrates that do not elect an optimised
    /// leader.
    Root,
    /// The first `count` intermediate nodes of the tree the scenario's tree
    /// policy selects (the Fig 11 victims).
    TreeIntermediates {
        /// How many intermediates to target.
        count: usize,
    },
}

/// What a stage does while its window is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attack {
    /// The proposal-delay attack: the target delays its own proposals (and,
    /// on the tree substrates, its forwarded payloads) by `delay` while it
    /// holds the leader/root role. Protocol-level on every substrate; a
    /// substrate without the hook fails compilation instead of degrading to
    /// a network fault.
    DelayProposals {
        /// The attacking replica.
        target: Target,
        /// Extra delay per proposal.
        delay: Duration,
    },
    /// δ-inflation: all of the target's outgoing latency multiplied (§7.6).
    InflateOutgoing {
        /// The attacking replica.
        target: Target,
        /// The multiplier δ.
        factor: f64,
    },
    /// A fixed extra delay on all of the target's outgoing messages.
    DelayOutgoing {
        /// The attacking replica.
        target: Target,
        /// The extra delay.
        extra: Duration,
    },
    /// The target drops all outgoing messages (omission) while active.
    Silence {
        /// The silent replica.
        target: Target,
    },
    /// The target crashes at the stage start and recovers at the stage end
    /// (if the stage is bounded).
    Crash {
        /// The crashing replica.
        target: Target,
    },
    /// Messages on one directed link are dropped.
    DropLink {
        /// Sender side of the link.
        from: usize,
        /// Receiver side of the link.
        to: usize,
    },
    /// Crash the current tree root every `interval`, following the tree
    /// policy's reconfiguration sequence (Fig 15). Tree substrates only.
    CrashRoots {
        /// Time between successive root crashes.
        interval: Duration,
    },
}

/// One phase of the adversary script.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// First instant the stage is active.
    pub from: SimTime,
    /// First instant it is inactive again (`None` = until the end).
    pub until: Option<SimTime>,
    /// The behaviour during the stage.
    pub attack: Attack,
}

/// A named, time-phased adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryScript {
    /// Label used in point names and JSON params.
    pub label: String,
    /// The phases, in script order.
    pub stages: Vec<Stage>,
}

impl AdversaryScript {
    /// The empty script: every replica is correct.
    pub fn clean() -> Self {
        AdversaryScript {
            label: "clean".to_string(),
            stages: Vec::new(),
        }
    }

    /// An empty script with a label, ready for [`AdversaryScript::at`] /
    /// [`AdversaryScript::during`] stages.
    pub fn named(label: impl Into<String>) -> Self {
        AdversaryScript {
            label: label.into(),
            stages: Vec::new(),
        }
    }

    /// Add an open-ended stage starting at `from`.
    pub fn at(mut self, from: SimTime, attack: Attack) -> Self {
        self.stages.push(Stage {
            from,
            until: None,
            attack,
        });
        self
    }

    /// Add a bounded stage active in `[from, until)`.
    pub fn during(mut self, from: SimTime, until: SimTime, attack: Attack) -> Self {
        assert!(from <= until, "stage ends before it starts");
        self.stages.push(Stage {
            from,
            until: Some(until),
            attack,
        });
        self
    }

    /// True if no stage ever activates.
    pub fn is_clean(&self) -> bool {
        self.stages.is_empty()
    }

    /// Lower the script onto a concrete run.
    pub fn compile(&self, ctx: &CompileContext) -> CompiledAdversary {
        let mut out = CompiledAdversary {
            faults: FaultPlan::none(),
            delay_attacks: Vec::new(),
        };
        for stage in &self.stages {
            let window = match stage.until {
                Some(u) => FaultWindow::between(stage.from, u),
                None => FaultWindow::starting(stage.from),
            };
            match stage.attack {
                Attack::DelayProposals { target, delay } => {
                    // Protocol-level on every substrate: the attacker holds
                    // its own proposals (and, on the trees, its forwarded
                    // payloads) while its other messages flow normally. A
                    // network-level outgoing delay is NOT an acceptable
                    // stand-in — it also slows votes and heartbeats, and a
                    // substrate gap hidden that way would masquerade as a
                    // measured result. A substrate without the hook must
                    // fail compilation loudly instead.
                    assert!(
                        ctx.substrate.protocol_delay_supported(),
                        "substrate {} has no protocol-level proposal-delay hook; \
                         wire rsm::MisbehaviorPlan through its runner (see \
                         hotstuff::node / kauri::node) or script an explicit \
                         network-level Attack::DelayOutgoing instead",
                        ctx.substrate.label()
                    );
                    for r in ctx.resolve(target) {
                        out.delay_attacks.push(DelayAttack {
                            replica: r,
                            delay,
                            from: stage.from,
                            until: stage.until.unwrap_or(SimTime::MAX),
                        });
                    }
                }
                Attack::InflateOutgoing { target, factor } => {
                    for r in ctx.resolve(target) {
                        out.faults.add_node_fault_during(
                            r,
                            NodeFault::OutgoingInflation(factor),
                            window,
                        );
                    }
                }
                Attack::DelayOutgoing { target, extra } => {
                    for r in ctx.resolve(target) {
                        out.faults
                            .add_node_fault_during(r, NodeFault::OutgoingDelay(extra), window);
                    }
                }
                Attack::Silence { target } => {
                    for r in ctx.resolve(target) {
                        out.faults.add_node_fault_during(r, NodeFault::Silent, window);
                    }
                }
                Attack::Crash { target } => {
                    for r in ctx.resolve(target) {
                        match stage.until {
                            Some(u) => {
                                out.faults.crash_between(r, stage.from, u);
                            }
                            None => {
                                out.faults.crash(r, stage.from);
                            }
                        }
                    }
                }
                Attack::DropLink { from, to } => {
                    out.faults
                        .add_link_fault_during(from, to, netsim::LinkFault::Drop, window);
                }
                Attack::CrashRoots { interval } => {
                    let end = stage.until.unwrap_or(ctx.horizon).min(ctx.horizon);
                    for (root, at) in ctx.root_sequence(stage.from, end, interval) {
                        out.faults.crash(root, at);
                    }
                }
            }
        }
        out
    }
}

/// The concrete faults a script lowers to for one run.
#[derive(Debug, Clone, Default)]
pub struct CompiledAdversary {
    /// Network-level faults, handed to the simulator.
    pub faults: FaultPlan,
    /// Protocol-level delay attacks, installed as replica behaviours by the
    /// substrate runner (PBFT behaviours, `rsm::MisbehaviorPlan` elsewhere).
    pub delay_attacks: Vec<DelayAttack>,
}

/// A protocol-level proposal-delay attack, consumed by the substrate runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayAttack {
    /// The attacking replica.
    pub replica: usize,
    /// Extra delay per proposal.
    pub delay: Duration,
    /// Attack start.
    pub from: SimTime,
    /// Attack end (`SimTime::MAX` when open-ended).
    pub until: SimTime,
}

/// Everything target resolution needs about the run being compiled.
pub struct CompileContext<'a> {
    /// Number of replicas.
    pub n: usize,
    /// Fault threshold.
    pub f: usize,
    /// The topology's RTT matrix (n × n, ms).
    pub rtt: &'a [f64],
    /// The run horizon (bounds open-ended `CrashRoots` stages).
    pub horizon: SimTime,
    /// The substrate the scenario runs on.
    pub substrate: Substrate,
    /// The seed the scenario uses for its policies, so probes reproduce the
    /// exact trees the run will build.
    pub policy_seed: u64,
}

impl CompileContext<'_> {
    fn resolve(&self, target: Target) -> Vec<usize> {
        match target {
            Target::Replica(r) => {
                assert!(r < self.n, "target replica {r} out of range (n = {})", self.n);
                vec![r]
            }
            Target::OptimizedLeader => {
                let all: Vec<usize> = (0..self.n).collect();
                vec![
                    pbft::score::optimize_configuration(self.rtt, self.n, self.f, &all, &[], 1)
                        .0
                        .leader,
                ]
            }
            Target::Root => {
                if self.substrate.is_tree() {
                    vec![self.probe_tree().root]
                } else if self.substrate == Substrate::HotStuffRr {
                    // Round-robin proposes view 1 first: leader(1) = 1 % n.
                    vec![1 % self.n]
                } else {
                    // The fixed HotStuff leader and the initial PBFT leader
                    // are both replica 0 by construction.
                    vec![0]
                }
            }
            Target::TreeIntermediates { count } => {
                self.probe_tree().intermediates.into_iter().take(count).collect()
            }
        }
    }

    /// The first tree the scenario's tree policy elects (tree substrates
    /// only): targets are resolved against the exact tree the run will build.
    fn probe_tree(&self) -> kauri::Tree {
        let mut policy = self
            .substrate
            .tree_policy(self.n, self.rtt.to_vec(), self.policy_seed);
        let system = SystemConfig::new(self.n);
        policy.next_tree(self.n, system.tree_branch_factor())
    }

    /// The sequence of roots the tree policy elects, with the time each gets
    /// crashed: the Fig 15 probe. Stops when a root repeats (the policy
    /// cycled) or the window ends.
    fn root_sequence(&self, from: SimTime, end: SimTime, interval: Duration) -> Vec<(usize, SimTime)> {
        assert!(
            !self.substrate.is_pbft(),
            "CrashRoots requires a tree substrate, got {}",
            self.substrate.label()
        );
        let mut policy = self
            .substrate
            .tree_policy(self.n, self.rtt.to_vec(), self.policy_seed);
        let system = SystemConfig::new(self.n);
        let branch = system.tree_branch_factor();
        let mut crashed = Vec::new();
        let mut at = from;
        while at < end {
            let tree = policy.next_tree(self.n, branch);
            if crashed.iter().any(|&(r, _)| r == tree.root) {
                break;
            }
            crashed.push((tree.root, at));
            policy.on_view_failure(&[tree.root]);
            at += interval;
        }
        crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Deployment, Topology};

    fn ctx(rtt: &[f64], n: usize, substrate: Substrate) -> CompileContext<'_> {
        CompileContext {
            n,
            f: (n - 1) / 3,
            rtt,
            horizon: SimTime::from_secs(60),
            substrate,
            policy_seed: 7,
        }
    }

    #[test]
    fn clean_script_compiles_to_nothing() {
        let rtt = Topology::of(Deployment::Europe21).rtt_matrix(0);
        let compiled = AdversaryScript::clean().compile(&ctx(&rtt, 21, Substrate::BftSmart));
        assert!(compiled.delay_attacks.is_empty());
        assert!(compiled
            .faults
            .effective_delay(SimTime::from_secs(30), 0, 1, Duration::from_millis(10))
            .is_some());
    }

    #[test]
    fn delay_attack_is_protocol_level_on_pbft() {
        let rtt = Topology::of(Deployment::Europe21).rtt_matrix(0);
        let script = AdversaryScript::named("delay").during(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            Attack::DelayProposals {
                target: Target::OptimizedLeader,
                delay: Duration::from_millis(600),
            },
        );
        let compiled = script.compile(&ctx(&rtt, 21, Substrate::OptiAware));
        assert_eq!(compiled.delay_attacks.len(), 1);
        let atk = compiled.delay_attacks[0];
        assert_eq!(atk.from, SimTime::from_secs(10));
        assert_eq!(atk.until, SimTime::from_secs(20));
        // The resolved attacker is the optimiser's leader pick.
        let expect = pbft::score::optimize_configuration(
            &rtt,
            21,
            6,
            &(0..21).collect::<Vec<_>>(),
            &[],
            1,
        )
        .0
        .leader;
        assert_eq!(atk.replica, expect);
        // No network-level fault was emitted for it.
        assert!(compiled
            .faults
            .effective_delay(SimTime::from_secs(15), atk.replica, 0, Duration::from_millis(5))
            .is_some());
    }

    /// The regression this PR exists for: `DelayProposals` must stay a
    /// protocol-level behaviour on the tree substrates, never a silent
    /// network-level approximation (which also slows votes and heartbeats
    /// and misrepresents the paper's adversary).
    #[test]
    fn delay_attack_is_protocol_level_on_tree_substrates() {
        let rtt = Topology::of(Deployment::Europe21).rtt_matrix(0);
        for substrate in [
            Substrate::Kauri,
            Substrate::KauriSa,
            Substrate::OptiTree,
            Substrate::OptiTreeNoPipeline,
            Substrate::HotStuffFixed,
            Substrate::HotStuffRr,
        ] {
            let script = AdversaryScript::named("delay").at(
                SimTime::from_secs(5),
                Attack::DelayProposals {
                    target: Target::Replica(3),
                    delay: Duration::from_millis(100),
                },
            );
            let compiled = script.compile(&ctx(&rtt, 21, substrate));
            assert_eq!(compiled.delay_attacks.len(), 1, "{}", substrate.label());
            let atk = compiled.delay_attacks[0];
            assert_eq!(atk.replica, 3);
            assert_eq!(atk.until, SimTime::MAX, "open-ended stage");
            // No network-level fault was emitted as a stand-in.
            let d = compiled
                .faults
                .effective_delay(SimTime::from_secs(6), 3, 0, Duration::from_millis(10))
                .unwrap();
            assert_eq!(d.as_millis(), 10, "{}", substrate.label());
        }
    }

    #[test]
    fn root_target_resolves_to_probe_tree_root_on_trees() {
        let rtt = Topology::of(Deployment::Europe21).rtt_matrix(0);
        let script = AdversaryScript::named("root-delay").at(
            SimTime::from_secs(5),
            Attack::DelayProposals {
                target: Target::Root,
                delay: Duration::from_millis(600),
            },
        );
        let compiled = script.compile(&ctx(&rtt, 21, Substrate::OptiTreeNoPipeline));
        // The attacker is the first tree's root, reproduced via the same
        // seeded policy the run will use.
        let mut policy = Substrate::OptiTreeNoPipeline.tree_policy(21, rtt.to_vec(), 7);
        let expect = policy.next_tree(21, SystemConfig::new(21).tree_branch_factor()).root;
        assert_eq!(compiled.delay_attacks[0].replica, expect);
        // On non-tree substrates the initial proposer is the first view's
        // leader: replica 0 for the fixed pacemaker, 1 % n for round-robin.
        let hs = script.compile(&ctx(&rtt, 21, Substrate::HotStuffFixed));
        assert_eq!(hs.delay_attacks[0].replica, 0);
        let rr = script.compile(&ctx(&rtt, 21, Substrate::HotStuffRr));
        assert_eq!(rr.delay_attacks[0].replica, 1);
    }

    #[test]
    fn phased_inflation_and_crash_recovery_compile_to_windowed_faults() {
        let rtt = Topology::of(Deployment::Europe21).rtt_matrix(0);
        let script = AdversaryScript::named("phased")
            .during(
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                Attack::InflateOutgoing {
                    target: Target::Replica(2),
                    factor: 2.0,
                },
            )
            .during(
                SimTime::from_secs(30),
                SimTime::from_secs(40),
                Attack::Crash {
                    target: Target::Replica(2),
                },
            );
        let compiled = script.compile(&ctx(&rtt, 21, Substrate::Kauri));
        let base = Duration::from_millis(10);
        let f = &compiled.faults;
        assert_eq!(f.effective_delay(SimTime::from_secs(5), 2, 0, base).unwrap(), base);
        assert_eq!(
            f.effective_delay(SimTime::from_secs(15), 2, 0, base).unwrap().as_millis(),
            20
        );
        assert_eq!(f.effective_delay(SimTime::from_secs(25), 2, 0, base).unwrap(), base);
        assert!(f.is_crashed(2, SimTime::from_secs(35)));
        assert!(!f.is_crashed(2, SimTime::from_secs(40)));
        assert_eq!(f.effective_delay(SimTime::from_secs(45), 2, 0, base).unwrap(), base);
    }

    #[test]
    fn crash_roots_follows_policy_sequence() {
        let top = Topology::of(Deployment::Europe21);
        let rtt = top.rtt_matrix(0);
        let script = AdversaryScript::named("root-crashes").at(
            SimTime::from_secs(10),
            Attack::CrashRoots {
                interval: Duration::from_secs(10),
            },
        );
        let compiled = script.compile(&ctx(&rtt, 21, Substrate::OptiTreeNoPipeline));
        let schedule = compiled.faults.crash_schedule();
        assert!(!schedule.is_empty(), "at least the first root is crashed");
        // Crash times are spaced by the interval, within the horizon.
        for (i, &(_, t)) in schedule.iter().enumerate() {
            assert_eq!(t, SimTime::from_secs(10 + 10 * i as u64));
            assert!(t < SimTime::from_secs(60));
        }
        // No root is crashed twice.
        let mut roots: Vec<usize> = schedule.iter().map(|&(r, _)| r).collect();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots.len(), schedule.len());
    }

    #[test]
    fn tree_intermediates_resolve_against_probe_tree() {
        let top = Topology::of(Deployment::Europe21);
        let rtt = top.rtt_matrix(0);
        let script = AdversaryScript::named("inflate-intermediates").at(
            SimTime::ZERO,
            Attack::InflateOutgoing {
                target: Target::TreeIntermediates { count: 2 },
                factor: 1.4,
            },
        );
        let compiled = script.compile(&ctx(&rtt, 21, Substrate::OptiTreeNoPipeline));
        // Exactly two senders are inflated.
        let inflated: Vec<usize> = (0..21)
            .filter(|&r| {
                compiled
                    .faults
                    .effective_delay(SimTime::ZERO, r, (r + 1) % 21, Duration::from_millis(100))
                    .unwrap()
                    .as_millis()
                    > 100
            })
            .collect();
        assert_eq!(inflated.len(), 2);
    }
}
